//! Quickstart: train a user-specific SIFT model and classify genuine and
//! hijacked ECG windows.
//!
//! Run: `cargo run --release --example quickstart`

use physio_sim::dataset::windows;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::detector::Detector;
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::snippet::Snippet;
use sift::trainer::train_for_subject;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let subjects = bank();
    println!(
        "subject bank: {} synthetic subjects (ages {}..{})",
        subjects.len(),
        subjects.iter().map(|s| s.age).min().unwrap(),
        subjects.iter().map(|s| s.age).max().unwrap()
    );

    // Train a model for subject 0, using the other 11 as donors.
    // (2 minutes of training data keeps the example fast; the paper —
    // and the bench harness — use Δ = 20 minutes.)
    let config = SiftConfig {
        train_s: 120.0,
        ..SiftConfig::default()
    };
    println!(
        "training a {} model for {} on {:.0} s of data…",
        Version::Simplified,
        subjects[0].name,
        config.train_s
    );
    let model = train_for_subject(&subjects, 0, Version::Simplified, &config, 42)?;
    println!(
        "trained: w ∈ R^{}, deployed model footprint {} bytes",
        model.svm().dim(),
        model.embedded().footprint_bytes()
    );

    // Deploy with the Amulet's single-precision arithmetic.
    let detector = Detector::new(model, PlatformFlavor::Amulet, config.clone())?;

    // Genuine windows: the wearer's own (unseen) ECG + ABP.
    let own = Record::synthesize(&subjects[0], 30.0, 31337);
    let mut pass = 0;
    let own_windows = windows(&own, config.window_s)?;
    for w in &own_windows {
        let d = detector.classify(&Snippet::from_record(w)?)?;
        pass += usize::from(!d.is_alert());
    }
    println!(
        "genuine windows accepted: {pass}/{} (false positives: {})",
        own_windows.len(),
        own_windows.len() - pass
    );

    // Hijacked windows: the wearer's ABP paired with subject 7's ECG.
    let donor = Record::synthesize(&subjects[7], 30.0, 99999);
    let donor_windows = windows(&donor, config.window_s)?;
    let mut caught = 0;
    for (vw, dw) in own_windows.iter().zip(&donor_windows) {
        let hijacked = Snippet::new(
            dw.ecg.clone(),
            vw.abp.clone(),
            dw.r_peaks.clone(),
            vw.sys_peaks.clone(),
        )?;
        let d = detector.classify(&hijacked)?;
        caught += usize::from(d.is_alert());
        if d.is_alert() {
            println!(
                "  window hijacked -> ALERT (score {:+.2})",
                d.score
            );
        }
    }
    println!(
        "hijacked windows detected: {caught}/{}",
        donor_windows.len()
    );
    Ok(())
}
