//! Gallery of sensor-hijacking attacks (the paper's four vulnerability
//! classes, §I) staged against the deployed detector through the WIoT
//! environment.
//!
//! Run: `cargo run --release --example attack_gallery`

use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::features::Version;
use wiot::attacker::AttackMode;
use wiot::scenario::{run, AttackSpec, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let duration_s = 60.0;
    let donor = Record::synthesize(&bank()[5], duration_s, 2);
    let victim_history = Record::synthesize(&bank()[0], duration_s, 0xC0FFEE ^ 0x11FE);

    let gallery: Vec<(&str, &str, AttackMode)> = vec![
        (
            "substitution",
            "communication-channel compromise: another person's ECG is injected",
            AttackMode::Substitute { donor },
        ),
        (
            "replay",
            "firmware compromise: the wearer's own ECG from 15 s ago is replayed",
            AttackMode::Replay {
                offset_s: 15.0,
                source: victim_history,
            },
        ),
        (
            "freeze",
            "physical compromise: the sensor output is stuck at its last value",
            AttackMode::Freeze,
        ),
        (
            "noise injection",
            "sensory-channel attack: EMI-style interference rides on the waveform",
            AttackMode::NoiseInject { amplitude_mv: 0.6 },
        ),
    ];

    for (name, description, mode) in gallery {
        println!("=== {name} ===");
        println!("    {description}");
        let mut scenario = Scenario::new(0, Version::Simplified, duration_s);
        scenario.attack = Some(AttackSpec {
            mode,
            start_s: 24.0,
            end_s: 48.0,
        });
        let r = run(&scenario)?;
        let m = r.confusion;
        println!(
            "    attacked windows flagged : {}/{}",
            m.tp,
            m.tp + m.fn_
        );
        println!(
            "    clean windows passed     : {}/{}",
            m.tn,
            m.tn + m.fp
        );
        match r.detection_latency_ms {
            Some(l) => println!("    first alert              : {:.1} s after attack onset", l as f64 / 1000.0),
            None => println!("    first alert              : MISSED"),
        }
        println!();
    }
    Ok(())
}
