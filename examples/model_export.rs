//! Train a model, translate it to the embedded byte format, write it to
//! disk, and reload it — the offline half of the paper's deployment
//! workflow ("we then translate the prediction function of the trained
//! model into C code").
//!
//! Run: `cargo run --release --example model_export`

use ml::embedded::EmbeddedModel;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::Version;
use sift::trainer::train_for_subject;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let subjects = bank();
    let config = SiftConfig {
        train_s: 120.0,
        ..SiftConfig::default()
    };

    let out_dir = std::env::temp_dir().join("sift-models");
    fs::create_dir_all(&out_dir)?;

    println!("training and exporting all three versions for {}…\n", subjects[0].name);
    for version in Version::ALL {
        let model = train_for_subject(&subjects, 0, version, &config, 7)?;
        let embedded = model.embedded();
        let bytes = embedded.encode();
        let path = out_dir.join(format!("{}-{version}.siftmdl", subjects[0].name));
        fs::write(&path, &bytes)?;
        println!(
            "{version:<11} -> {} ({} bytes: {} features, scaler + hyperplane)",
            path.display(),
            bytes.len(),
            embedded.dim()
        );

        // Reload and verify bit-exactness — what the firmware build does
        // before flashing.
        let reloaded = EmbeddedModel::decode(&fs::read(&path)?)?;
        assert_eq!(&reloaded, embedded);
        println!("             reload verified: models identical");

        // Demonstrate tamper detection on the stored artifact.
        let mut corrupted = bytes.clone();
        corrupted[9] ^= 0xFF;
        match EmbeddedModel::decode(&corrupted) {
            Err(e) => println!("             corrupted copy rejected: {e}"),
            Ok(_) => println!("             corrupted copy decoded (header untouched)"),
        }
        println!();
    }
    Ok(())
}
