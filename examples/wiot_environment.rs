//! The full WIoT environment of the paper's Fig. 1, end to end: body
//! sensors stream over a lossy wireless link to the Amulet base station;
//! mid-session an adversary hijacks the ECG channel and substitutes
//! another person's waveform; the SIFT app detects the alteration and
//! alerts; the sink archives everything.
//!
//! Run: `cargo run --release --example wiot_environment`
//!
//! With `--faults`, the session instead runs in a hostile environment:
//! Gilbert–Elliott burst loss, a timed fault plan (sensor dropout, a
//! stuck ABP cuff, a base-station brownout, ECG clock drift), ARQ on
//! the links, partial-window salvage, and the stream watchdog.
//!
//! Run: `cargo run --release --example wiot_environment -- --faults`
//!
//! `--no-persist` disables FRAM checkpointing: a brownout reboot then
//! loses the detector state instead of recovering it (the pre-
//! checkpointing behavior, kept as an escape hatch and for A/B runs).

use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::features::Version;
use wiot::attacker::AttackMode;
use wiot::channel::LossModel;
use wiot::device::Stream;
use wiot::faults::{FaultEvent, FaultKind, FaultPlan};
use wiot::scenario::{run, AttackSpec, LinkParams, Scenario, SimReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let faults_mode = std::env::args().any(|a| a == "--faults");
    let no_persist = std::env::args().any(|a| a == "--no-persist");
    let subjects = bank();
    let victim = 0;
    let donor_subject = 6;
    let duration_s = 120.0;

    println!("WIoT environment (Fig. 1 realized):");
    println!("  wearer      : {} (age {})", subjects[victim].name, subjects[victim].age);
    println!("  sensors     : ECG + ABP @ 360 Hz, 0.5 s packets");
    println!("  base station: Amulet (MSP430FR5989-class), SIFT simplified + heart-rate app");
    println!("  adversary   : substitutes {}'s ECG during t = 30 s … 90 s", subjects[donor_subject].name);

    let donor = Record::synthesize(&subjects[donor_subject], duration_s, 777);
    let mut scenario = Scenario::new(victim, Version::Simplified, duration_s);
    if no_persist {
        println!("  persistence : OFF (reboots lose detector state)");
        scenario.persist = false;
    }
    scenario.attack = Some(AttackSpec {
        mode: AttackMode::Substitute { donor },
        start_s: 30.0,
        end_s: 90.0,
    });

    if faults_mode {
        println!("  link        : Gilbert–Elliott burst loss (~10% mean), 5 ms ± 3 ms delay, ARQ on");
        println!("  faults      : ABP dropout 40–50 s, ABP stuck 60–70 s, brownout @ 75 s, ECG drift 80–100 s\n");
        scenario.link.loss = Some(LossModel::GilbertElliott {
            p_good_to_bad: 0.025,
            p_bad_to_good: 0.2,
            loss_good: 0.01,
            loss_bad: 0.8,
        });
        scenario.faults = FaultPlan::new()
            .with(FaultEvent {
                start_s: 40.0,
                end_s: 50.0,
                kind: FaultKind::SensorDropout { stream: Stream::Abp },
            })
            .with(FaultEvent {
                start_s: 60.0,
                end_s: 70.0,
                kind: FaultKind::SensorStuck { stream: Stream::Abp },
            })
            .with(FaultEvent {
                start_s: 75.0,
                end_s: 75.0,
                kind: FaultKind::DeviceReboot,
            })
            .with(FaultEvent {
                start_s: 80.0,
                end_s: 100.0,
                kind: FaultKind::ClockDrift { stream: Stream::Ecg, ppm: 20_000.0 },
            });
        scenario = scenario.with_reliability();
    } else {
        println!("  link        : 2% loss, 5 ms ± 3 ms delay\n");
        scenario.link = LinkParams {
            loss_prob: 0.02,
            base_delay_ms: 5,
            jitter_ms: 3,
            ..LinkParams::default()
        };
    }

    let report = run(&scenario)?;
    print_report(&report);
    if faults_mode {
        print_fault_sections(&report);
    }

    println!("\nsink archive ({} alerts):", report.sink.alerts().len());
    for a in report.sink.alerts().iter().take(8) {
        println!("  [{:>6} ms] {}: {}", a.at_ms, a.app, a.message);
    }
    if report.sink.alerts().len() > 8 {
        println!("  … and {} more", report.sink.alerts().len() - 8);
    }
    Ok(())
}

fn print_report(report: &SimReport) {
    println!("session complete:");
    println!("  windows scored        : {}", report.confusion.total());
    println!("  windows dropped (loss): {}", report.dropped_windows);
    println!("  windows salvaged      : {}", report.salvaged_windows);
    println!("  window recovery rate  : {:.1}%", report.window_recovery_rate * 100.0);
    println!("  partially-attacked    : {} (excluded from scoring)", report.ambiguous_windows);
    println!("  confusion             : {}", report.confusion);
    if let Some(acc) = report.confusion.accuracy() {
        println!("  accuracy              : {:.1}%", acc * 100.0);
    }
    match report.detection_latency_ms {
        Some(l) => println!("  detection latency     : {:.1} s after attack start", l as f64 / 1000.0),
        None => println!("  detection latency     : attack was never flagged!"),
    }
    println!("  battery remaining     : {:.3}%", report.battery_left * 100.0);
}

fn print_fault_sections(report: &SimReport) {
    let c = &report.channel;
    println!("\nchannel ({} sent):", c.sent);
    println!("  lost {} ({:.1}%), duplicated {}, reordered {}, corrupted {}",
        c.lost, report.channel_loss_rate * 100.0, c.duplicated, c.reordered, c.corrupted);
    if let Some(t) = &report.transport {
        println!("transport (ARQ):");
        println!("  retransmits {}, nacks {}, gap recoveries {}, give-ups {}, dup-discards {}",
            t.retransmits, t.nacks_sent, t.gap_recoveries, t.give_ups, t.duplicates_discarded);
    }
    let f = &report.faults;
    println!("faults injected:");
    println!("  dropout chunks {}, stuck chunks {}, reboots {}, degraded link {} ms, max clock skew {} ms",
        f.dropout_chunks, f.stuck_chunks, f.reboots, f.degraded_link_ms, f.max_clock_skew_ms);
    println!("checkpointing:");
    println!("  recoveries {}, rollbacks {}, torn commits {}, bit flips {}, refused {}",
        f.recoveries, f.rollbacks, f.torn_commits, f.bitrot_flips, f.recovery_failures);
    println!("  stream-stalled alerts : {}", report.stall_alerts);
}
