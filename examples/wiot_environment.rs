//! The full WIoT environment of the paper's Fig. 1, end to end: body
//! sensors stream over a lossy wireless link to the Amulet base station;
//! mid-session an adversary hijacks the ECG channel and substitutes
//! another person's waveform; the SIFT app detects the alteration and
//! alerts; the sink archives everything.
//!
//! Run: `cargo run --release --example wiot_environment`

use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::features::Version;
use wiot::attacker::AttackMode;
use wiot::scenario::{run, AttackSpec, LinkParams, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let subjects = bank();
    let victim = 0;
    let donor_subject = 6;
    let duration_s = 120.0;

    println!("WIoT environment (Fig. 1 realized):");
    println!("  wearer      : {} (age {})", subjects[victim].name, subjects[victim].age);
    println!("  sensors     : ECG + ABP @ 360 Hz, 0.5 s packets");
    println!("  base station: Amulet (MSP430FR5989-class), SIFT simplified + heart-rate app");
    println!("  adversary   : substitutes {}'s ECG during t = 30 s … 90 s", subjects[donor_subject].name);
    println!("  link        : 2% loss, 5 ms ± 3 ms delay\n");

    let donor = Record::synthesize(&subjects[donor_subject], duration_s, 777);
    let mut scenario = Scenario::new(victim, Version::Simplified, duration_s);
    scenario.link = LinkParams {
        loss_prob: 0.02,
        base_delay_ms: 5,
        jitter_ms: 3,
    };
    scenario.attack = Some(AttackSpec {
        mode: AttackMode::Substitute { donor },
        start_s: 30.0,
        end_s: 90.0,
    });

    let report = run(&scenario)?;

    println!("session complete:");
    println!("  windows scored        : {}", report.confusion.total());
    println!("  windows dropped (loss): {}", report.dropped_windows);
    println!("  partially-attacked    : {} (excluded from scoring)", report.ambiguous_windows);
    println!("  confusion             : {}", report.confusion);
    if let Some(acc) = report.confusion.accuracy() {
        println!("  accuracy              : {:.1}%", acc * 100.0);
    }
    match report.detection_latency_ms {
        Some(l) => println!("  detection latency     : {:.1} s after attack start", l as f64 / 1000.0),
        None => println!("  detection latency     : attack was never flagged!"),
    }
    println!("  battery remaining     : {:.3}%", report.battery_left * 100.0);

    println!("\nsink archive ({} alerts):", report.sink.alerts().len());
    for a in report.sink.alerts().iter().take(8) {
        println!("  [{:>6} ms] {}: {}", a.at_ms, a.app, a.message);
    }
    if report.sink.alerts().len() > 8 {
        println!("  … and {} more", report.sink.alerts().len() - 8);
    }
    Ok(())
}
