//! Fleet simulation in a few lines: enroll the subject bank once, shard
//! a dozen simulated devices across two worker threads, and show that
//! the aggregate report is identical at any thread count — including
//! with the per-device survival policy switched on and actively
//! degrading every device down the ladder.
//!
//! Run: `cargo run --release --example fleet_sim`

use physio_sim::subject::bank;
use sift::trainer::ModelBank;
use wiot::fleet::{run_fleet_with_bank, FleetSpec};
use wiot::survival::SurvivalConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = FleetSpec::new(12, 30.0).with_threads(2).with_seed(2024);

    // Enrollment happens once, on the main thread; every device wearing
    // subject `s` shares the same immutable model.
    let models = ModelBank::train(
        &bank(),
        spec.template.version,
        &spec.template.config,
        spec.seed,
    )?;
    println!("enrolled {} subjects", models.len());

    let report = run_fleet_with_bank(&spec, &models)?;
    println!(
        "{} devices, {:.0} simulated device-seconds",
        report.devices, report.simulated_device_s
    );
    println!(
        "windows: {} scored at the sink, {} dropped, recovery {:.3}",
        report.windows_scored, report.dropped_windows, report.mean_window_recovery
    );
    println!(
        "energy: mean battery left {:.4}, {} dispatches fleet-wide",
        report.usage.mean_battery_left(),
        report.usage.dispatched
    );
    for o in &report.outliers {
        println!(
            "outlier: device {} (subject {}): {} ({:.3})",
            o.device, o.victim, o.reason, o.value
        );
    }

    // Determinism under parallelism: same seed, eight threads — the
    // report digests match bit for bit.
    let wide = run_fleet_with_bank(&spec.clone().with_threads(8), &models)?;
    assert_eq!(report.digest(), wide.digest());
    println!("digest {:#018x} (identical at 2 and 8 threads)", report.digest());

    // Same fleet with the survival policy on and the batteries drained
    // 120 000x faster than real time: every device walks the
    // degradation ladder, and the digest is still thread-schedule-free.
    let mut surviving = spec.clone();
    surviving.template.survival = Some(SurvivalConfig {
        min_dwell_ticks: 5,
        drain_scale: 120_000,
        ..SurvivalConfig::default()
    });
    let stressed = run_fleet_with_bank(&surviving, &models)?;
    let again = run_fleet_with_bank(&surviving.clone().with_threads(8), &models)?;
    assert_eq!(stressed.digest(), again.digest());
    println!(
        "survival fleet: {} chunks duty-skipped, {} device-seconds under low battery, \
         digest {:#018x} (identical at 2 and 8 threads)",
        stressed.faults.duty_skipped_chunks,
        stressed.faults.low_battery_ticks,
        stressed.digest()
    );
    Ok(())
}
