//! The SIFT detector running as a QM state-machine app on the simulated
//! Amulet: firmware static checks, the three-state pipeline, the LED
//! display, and the ARP resource profile (paper §III + Fig. 3).
//!
//! Run: `cargo run --release --example amulet_app`

use amulet_sim::apps::{HeartRateApp, SiftApp};
use amulet_sim::event::AmuletEvent;
use amulet_sim::machine::App;
use amulet_sim::os::AmuletOs;
use amulet_sim::profiler::ResourceProfiler;
use amulet_sim::toolchain::FirmwareImage;
use physio_sim::dataset::windows;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::Version;
use sift::snippet::Snippet;
use sift::trainer::train_for_subject;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let subjects = bank();
    let config = SiftConfig {
        train_s: 120.0,
        ..SiftConfig::default()
    };

    // Offline training ("need not be done on amulet platform itself").
    let model = train_for_subject(&subjects, 0, Version::Original, &config, 2027)?;
    let detector = SiftApp::new(Version::Original, model.embedded().clone(), config.clone())?;
    let heartrate = HeartRateApp::with_sample_rate(config.fs);

    // Compile-time predictive analysis, then flash.
    let profiler = ResourceProfiler::default();
    let image = FirmwareImage::build(
        vec![detector.resource_spec(), heartrate.resource_spec()],
        &profiler,
    )?;
    println!("firmware static checks passed; predicted profile:");
    print!(
        "{}",
        profiler.arp_view(&[&detector.resource_spec(), &heartrate.resource_spec()])
    );

    let mut os = AmuletOs::new();
    os.install(&image, vec![Box::new(detector), Box::new(heartrate)])?;
    println!(
        "\nflashed: FRAM {:.1} KB used of 128 KB, SRAM {} B of 2048 B\n",
        os.memory().fram().used() as f64 / 1024.0,
        os.memory().sram().used()
    );

    // Stream 30 s of data: 21 s genuine, then hijacked windows.
    let own = Record::synthesize(&subjects[0], 30.0, 555);
    let donor = Record::synthesize(&subjects[9], 30.0, 556);
    let vw = windows(&own, config.window_s)?;
    let dw = windows(&donor, config.window_s)?;
    for (k, (v, d)) in vw.iter().zip(&dw).enumerate() {
        let snippet = if k < 7 {
            Snippet::from_record(v)?
        } else {
            // Sensor hijacked from window 7 on.
            Snippet::new(
                d.ecg.clone(),
                v.abp.clone(),
                d.r_peaks.clone(),
                v.sys_peaks.clone(),
            )?
        };
        os.post(AmuletEvent::SnippetReady(snippet));
        // Watch the state machine walk its three states.
        let mut states = vec![os.app_state("sift-original")?];
        while os.step()? {
            states.push(os.app_state("sift-original")?);
        }
        os.advance_time(3000);
        println!(
            "window {k:>2}: states {:?}",
            states
                .iter()
                .collect::<Vec<_>>()
        );
    }

    println!("\nLED display (last 12 lines):");
    let lines = os.display().lines();
    for l in lines.iter().rev().take(12).rev() {
        println!("  [{:>6} ms] {:<13} {:?} {}", l.at_ms, l.app, l.severity, l.text);
    }
    println!(
        "\nalerts: {}   battery used: {:.4} mAh   events dispatched: {}",
        os.alerts().len(),
        os.meter().consumed_mah(),
        os.dispatched()
    );
    Ok(())
}
