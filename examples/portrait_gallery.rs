//! Visualize what the detector actually sees: ASCII renderings of
//! ECG/ABP portraits — genuine vs. hijacked — plus the feature values
//! that separate them. (The paper's Insight #3 wishes for "a desktop
//! based simulator"; this is it, for the portrait stage.)
//!
//! Run: `cargo run --release --example portrait_gallery`

use physio_sim::dataset::windows;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::{extract, Version};
use sift::portrait::{GridMatrix, Portrait};
use sift::snippet::Snippet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let subjects = bank();
    let config = SiftConfig::default();
    let render_n = 32; // coarser than the detector's 50×50, for terminals

    let own = Record::synthesize(&subjects[0], 30.0, 1234);
    let donor = Record::synthesize(&subjects[8], 30.0, 5678);
    let vw = &windows(&own, config.window_s)?[3];
    let dw = &windows(&donor, config.window_s)?[3];

    let genuine = Snippet::from_record(vw)?;
    let hijacked = Snippet::new(
        dw.ecg.clone(),
        vw.abp.clone(),
        dw.r_peaks.clone(),
        vw.sys_peaks.clone(),
    )?;

    for (title, snippet) in [
        (format!("GENUINE: {}'s ECG x {}'s ABP", subjects[0].name, subjects[0].name), &genuine),
        (format!("HIJACKED: {}'s ECG x {}'s ABP", subjects[8].name, subjects[0].name), &hijacked),
    ] {
        println!("=== {title} ===");
        let portrait = Portrait::from_snippet(snippet)?;
        let grid = GridMatrix::from_portrait(&portrait, render_n)?;
        print!("{}", grid.to_ascii());
        println!(
            "peaks: {} R, {} systolic, {} paired",
            portrait.r_peak_points().len(),
            portrait.sys_peak_points().len(),
            portrait.paired_points().len()
        );
        let f = extract(Version::Simplified, snippet, &config)?;
        println!("simplified features: {:?}\n", f.iter().map(|x| (x * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    }
    println!(
        "(the hijacked portrait scatters: donor R peaks land at arbitrary ABP phases,\n\
         which is exactly the correlation loss the SVM separates on)"
    );
    Ok(())
}
