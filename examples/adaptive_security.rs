//! Adaptive security (paper Insight #4): a decision engine that watches
//! the battery drain and hot-swaps between the three detector versions,
//! instead of the paper's manual re-flashing.
//!
//! This fast-forwards a whole-battery deployment with
//! [`wiot::adaptive::simulate_adaptive_deployment`]: each simulated hour
//! drains the battery according to the active version's duty cycle, and
//! the engine switches when thresholds are crossed.
//!
//! Run: `cargo run --release --example adaptive_security`

use amulet_sim::profiler::{sift_app_spec, ResourceProfiler};
use sift::config::SiftConfig;
use sift::features::Version;
use wiot::adaptive::{requirements_from_profiler, simulate_adaptive_deployment, Policy};

fn main() {
    let config = SiftConfig::default();
    let profiler = ResourceProfiler::default();

    println!("per-version requirements (static constraints):");
    for r in requirements_from_profiler(&config) {
        println!(
            "  {:<11} FRAM {:>6.2} KB (incl. libraries), duty {:>5.2}%",
            r.version.to_string(),
            r.fram_bytes as f64 / 1024.0,
            r.duty_cycle * 100.0
        );
    }

    let report = simulate_adaptive_deployment(
        &config,
        Policy {
            min_dwell_ms: 6 * 3_600_000, // don't switch more than every 6 h
            ..Policy::default()
        },
    );

    println!("\nadaptive deployment phases:");
    for p in &report.phases {
        println!(
            "  day {:>5.1} .. {:>5.1}: {}",
            p.from_hour / 24.0,
            p.to_hour / 24.0,
            p.version
        );
    }
    println!(
        "\nbattery exhausted after {:.1} days with adaptive switching \
         (static original: {:.1} days, +{:.0}%)",
        report.lifetime_days,
        report.static_original_days,
        (report.lifetime_days / report.static_original_days - 1.0) * 100.0
    );

    println!("\nstatic deployments for reference:");
    for version in Version::ALL {
        let model_bytes = if version == Version::Reduced { 76 } else { 112 };
        let spec = sift_app_spec(version, &config, model_bytes);
        let p = profiler.profile(&[&spec]);
        println!("  {:<11} {:>5.1} days", version.to_string(), p.lifetime_days);
    }
}
