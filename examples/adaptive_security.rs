//! Adaptive security (paper Insight #4): a decision engine that watches
//! the battery drain and hot-swaps between the three detector versions,
//! instead of the paper's manual re-flashing.
//!
//! Two acts:
//!
//! 1. **Open loop** — fast-forward a whole-battery deployment with
//!    [`wiot::adaptive::simulate_adaptive_deployment`]: each simulated
//!    hour drains the battery according to the active version's duty
//!    cycle, and the engine switches when thresholds are crossed.
//! 2. **Closed loop** — run the full sample-level scenario with the
//!    [`wiot::survival`] policy engaged and an accelerated battery, and
//!    watch the policy walk the degradation ladder live: reflashing the
//!    detector, thinning the sensor duty cycle, and tightening the ARQ
//!    retry budget, every decision recorded in the report.
//!
//! Run: `cargo run --release --example adaptive_security`

use amulet_sim::profiler::{sift_app_spec, ResourceProfiler};
use sift::config::SiftConfig;
use sift::features::Version;
use wiot::adaptive::{requirements_from_profiler, simulate_adaptive_deployment, Policy};
use wiot::scenario::{run, Scenario};
use wiot::survival::{SurvivalAction, SurvivalConfig};

fn main() {
    let config = SiftConfig::default();
    let profiler = ResourceProfiler::default();

    println!("per-version requirements (static constraints):");
    for r in requirements_from_profiler(&config) {
        println!(
            "  {:<11} FRAM {:>6.2} KB (incl. libraries), duty {:>5.2}%",
            r.version.to_string(),
            r.fram_bytes as f64 / 1024.0,
            r.duty_cycle * 100.0
        );
    }

    let report = simulate_adaptive_deployment(
        &config,
        Policy {
            min_dwell_ms: 6 * 3_600_000, // don't switch more than every 6 h
            ..Policy::default()
        },
    );

    println!("\nadaptive deployment phases:");
    for p in &report.phases {
        println!(
            "  day {:>5.1} .. {:>5.1}: {}",
            p.from_hour / 24.0,
            p.to_hour / 24.0,
            p.version
        );
    }
    println!(
        "\nbattery exhausted after {:.1} days with adaptive switching \
         (static original: {:.1} days, +{:.0}%)",
        report.lifetime_days,
        report.static_original_days,
        (report.lifetime_days / report.static_original_days - 1.0) * 100.0
    );

    println!("\nstatic deployments for reference:");
    for version in Version::ALL {
        let model_bytes = if version == Version::Reduced { 76 } else { 112 };
        let spec = sift_app_spec(version, &config, model_bytes);
        let p = profiler.profile(&[&spec]);
        println!("  {:<11} {:>5.1} days", version.to_string(), p.lifetime_days);
    }

    closed_loop();
}

/// Act two: the survival policy closing the loop inside a live
/// scenario. The battery drain is accelerated 60 000× so a 60 s session
/// traverses the whole discharge curve — on the real device this arc
/// spans weeks.
fn closed_loop() {
    let mut scenario = Scenario::new(0, Version::Original, 60.0).with_reliability();
    scenario.survival = Some(SurvivalConfig {
        min_dwell_ticks: 5,
        drain_scale: 60_000,
        ..SurvivalConfig::default()
    });

    println!("\nclosed-loop survival policy (60 s session, 60 000x drain):");
    let report = run(&scenario).expect("scenario runs");
    let sr = report.survival.expect("survival enabled");
    for action in &sr.actions {
        match *action {
            SurvivalAction::SetVersion { at_tick, from, to } => {
                println!("  t={at_tick:>3}s reflash {from} -> {to}");
            }
            SurvivalAction::SetDuty { at_tick, skip, of } => {
                println!("  t={at_tick:>3}s duty cycle: keep {}/{of} windows", of - skip);
            }
            SurvivalAction::SetRetry {
                at_tick,
                max_retries,
                backoff_extra_shift,
            } => {
                println!(
                    "  t={at_tick:>3}s retry budget: {max_retries} tries, +{backoff_extra_shift} backoff doublings"
                );
            }
        }
    }
    println!(
        "  {} version switches, {} chunks duty-skipped, {} s under low battery",
        sr.version_switches, sr.duty_skipped_chunks, sr.low_battery_ticks
    );
    let names = ["original", "simplified", "reduced"];
    let occupancy: Vec<String> = names
        .iter()
        .zip(sr.occupancy_ticks)
        .map(|(n, t)| format!("{n} {t}s"))
        .collect();
    println!("  occupancy: {}", occupancy.join(", "));
    match sr.cutoff_at_ms {
        Some(ms) => println!(
            "  battery cutoff at t={:.0}s on {} ({} permille left)",
            ms as f64 / 1000.0,
            sr.final_version,
            sr.final_soc_permille
        ),
        None => println!(
            "  session ended on {} with {} permille left",
            sr.final_version, sr.final_soc_permille
        ),
    }
    println!(
        "  detection through it all: {} windows scored, {} dropped",
        report.confusion.total(),
        report.dropped_windows
    );
}
