#!/usr/bin/env bash
# Full verification gate: release build, tests (incl. golden traces and
# property suites), lint-clean clippy, and a fleet-bench baseline diff.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# The deterministic test harness, run explicitly so a filtered `cargo
# test` invocation can never silently skip it.
cargo test -q --test golden_traces
cargo test -q --test fleet_props
cargo test -q -p wiot --test transport_edges

cargo clippy --workspace -- -D warnings

# Fleet throughput check: regenerate BENCH_fleet.json with the baseline's
# parameters and diff against the committed numbers. Warn-only — the
# wall-clock fields legitimately move between machines and runs, but a
# digest change means the simulation itself changed and the golden suite
# above should already have caught it.
baseline=results/BENCH_fleet_baseline.json
if [[ -f "$baseline" ]]; then
  cargo run --release -q -p bench --bin fleet -- \
    --devices 100 --threads 8 --seed 61455 --duration 30 \
    --out BENCH_fleet.json >/dev/null
  if diff -u "$baseline" BENCH_fleet.json >/dev/null 2>&1; then
    echo "verify: fleet bench matches baseline exactly"
  else
    echo "verify: WARN fleet bench drifted from $baseline (expected for wall-clock fields):"
    diff -u "$baseline" BENCH_fleet.json || true
  fi
else
  echo "verify: WARN no fleet baseline at $baseline; skipping bench diff"
fi

echo "verify: OK"
