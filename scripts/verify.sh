#!/usr/bin/env bash
# Full verification gate: release build, tests, and lint-clean clippy.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
echo "verify: OK"
