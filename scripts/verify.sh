#!/usr/bin/env bash
# Full verification gate: release build, tests (incl. golden traces and
# property suites), lint-clean clippy, and a fleet-bench baseline diff.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# The deterministic test harness, run explicitly so a filtered `cargo
# test` invocation can never silently skip it.
cargo test -q --test golden_traces
cargo test -q --test fleet_props
cargo test -q --test recovery_props
cargo test -q --test survival_props
cargo test -q -p wiot --test transport_edges
cargo test -q --test resample_props

# Detector-zoo certification: the backend-parameterized conformance
# suite (runs every property against BackendKind::ALL) plus the
# Tsetlin backend's own clause-logic and codec-fuzz properties.
cargo test -q --test detector_conformance
cargo test -q -p ml --test tsetlin_props

cargo clippy --workspace -- -D warnings

# Workspace static analysis: embedded-profile, determinism, call-graph,
# and budget invariants, with warnings promoted to failures. Also
# regenerates results/ANALYZER_footprint.json — including the certified
# worst-case stack section, which is diffed against the committed copy
# below: a moved stack bound is a real behaviour change (new call edge,
# new frame) and must be reviewed like any other baseline.
footprint=results/ANALYZER_footprint.json
stack_before=""
if [[ -f "$footprint" ]]; then
  stack_before=$(sed -n '/"stack": {/,/^  }/p' "$footprint")
fi
cargo run -q -p analyzer -- --deny warnings
if [[ -n "$stack_before" ]]; then
  stack_after=$(sed -n '/"stack": {/,/^  }/p' "$footprint")
  if [[ "$stack_before" != "$stack_after" ]]; then
    echo "verify: FAIL certified worst-case stack drifted in $footprint:"
    diff -u <(printf '%s\n' "$stack_before") <(printf '%s\n' "$stack_after") || true
    echo "verify: review the new call chain; commit the regenerated footprint if intended"
    exit 1
  fi
  echo "verify: certified stack section matches committed footprint"
fi

# Crash-recovery soak: 50 devices x ~21 seeded random power cycles
# (brownout reboots, torn checkpoint commits, FRAM bit rot) — over 1000
# reboots fleet-wide. The bin exits nonzero unless every reboot
# recovered from its FRAM checkpoint, nothing was refused, every device
# is operational at exit, and the report digest is identical between
# the single-threaded and multi-threaded runs.
cargo run --release -q -p bench --bin recovery -- --threads 8

# Telemetry gates: the bin exits nonzero if enabling the sink perturbs
# the fleet digest at any thread count, if the merged fleet telemetry
# depends on the thread count, or if the observed per-stage span cycles
# disagree with the cost model. The disabled-sink overhead check prints
# a warning only (wall-clock noise). Also regenerates
# results/TELEMETRY_pipeline.json and results/TELEMETRY_trace.ndjson.
cargo run --release -q -p bench --bin telemetry

# Fleet throughput check: regenerate results/BENCH_fleet.json with the
# baseline's parameters and diff against the committed numbers. The
# report digest is a hard gate — it only moves when the simulation
# itself changed — while the wall-clock fields legitimately differ
# between machines and runs, so any other drift stays warn-only.
baseline=results/BENCH_fleet_baseline.json
fleet_out=results/BENCH_fleet.json
if [[ -f "$baseline" ]]; then
  cargo run --release -q -p bench --bin fleet -- \
    --devices 100 --threads 8 --seed 61455 --duration 30 \
    --out "$fleet_out" >/dev/null
  base_digest=$(grep -o '"digest": "[^"]*"' "$baseline" || true)
  new_digest=$(grep -o '"digest": "[^"]*"' "$fleet_out" || true)
  if [[ "$base_digest" != "$new_digest" ]]; then
    echo "verify: FAIL fleet report digest drifted: baseline $base_digest vs $new_digest"
    diff -u "$baseline" "$fleet_out" || true
    exit 1
  fi
  if diff -u "$baseline" "$fleet_out" >/dev/null 2>&1; then
    echo "verify: fleet bench matches baseline exactly"
  else
    echo "verify: fleet digest matches baseline ($base_digest)"
    echo "verify: WARN wall-clock fields drifted from $baseline (expected between runs):"
    diff -u "$baseline" "$fleet_out" || true
  fi
else
  echo "verify: WARN no fleet baseline at $baseline; skipping bench diff"
fi

# Slab streaming engine gate: re-run the 100k-device fleet_xl bench with
# the baseline's parameters. The bin itself exits nonzero if the slab
# digest differs between 1, 2, and 8 worker threads or if the reorder
# window overflows its bound; on top of that, the digest must match the
# committed baseline byte-for-byte — it is a pure function of the seed,
# device count, and duration. Throughput against the 10x target is
# warn-only: wall-clock speedup is machine-dependent.
xl_baseline=results/BENCH_fleet_xl.json
if [[ -f "$xl_baseline" ]]; then
  cargo run --release -q -p bench --bin fleet_xl -- \
    --devices 100000 --threads 8 --seed 61455 --duration 30 \
    --out /tmp/BENCH_fleet_xl.verify.json >/dev/null
  base_digest=$(grep -o '"slab_digest": "[^"]*"' "$xl_baseline" || true)
  new_digest=$(grep -o '"slab_digest": "[^"]*"' /tmp/BENCH_fleet_xl.verify.json || true)
  if [[ "$base_digest" != "$new_digest" ]]; then
    echo "verify: FAIL fleet_xl slab digest drifted: baseline $base_digest vs $new_digest"
    diff -u "$xl_baseline" /tmp/BENCH_fleet_xl.verify.json || true
    exit 1
  fi
  echo "verify: fleet_xl slab digest matches baseline ($base_digest)"
  speedup=$(grep -o '"speedup_vs_resident_baseline": [0-9.]*' \
    /tmp/BENCH_fleet_xl.verify.json | grep -o '[0-9.]*$' || echo 0)
  if awk -v s="$speedup" 'BEGIN { exit !(s < 10.0) }'; then
    echo "verify: WARN fleet_xl speedup ${speedup}x below the 10x target (wall-clock, machine-dependent)"
  else
    echo "verify: fleet_xl speedup ${speedup}x meets the 10x target"
  fi
else
  echo "verify: WARN no fleet_xl baseline at $xl_baseline; skipping slab gate"
fi

# Survival-policy lifetime gate: regenerate results/BENCH_lifetime.json
# and compare against the committed baseline. The bin itself exits
# nonzero if the lifetime ordering breaks (adaptive < 1.5x Original,
# Reduced outside the ~2x band), the adaptive policy costs more than
# 2 pp of accuracy, a policy snapshot fails to round-trip, or the
# survival-enabled fleet digest moves with the thread count. On top of
# that, digest drift against the committed baseline is a hard failure
# here — every field of the JSON is deterministic, so any other drift
# is also worth a failing diff.
lifetime_baseline=results/BENCH_lifetime_baseline.json
if [[ -f "$lifetime_baseline" ]]; then
  cargo run --release -q -p bench --bin lifetime >/dev/null
  base_digest=$(grep -o '"digest": "[^"]*"' "$lifetime_baseline" || true)
  new_digest=$(grep -o '"digest": "[^"]*"' results/BENCH_lifetime.json || true)
  if [[ "$base_digest" != "$new_digest" ]]; then
    echo "verify: FAIL survival fleet digest drifted: baseline $base_digest vs $new_digest"
    diff -u "$lifetime_baseline" results/BENCH_lifetime.json || true
    exit 1
  fi
  if diff -u "$lifetime_baseline" results/BENCH_lifetime.json >/dev/null 2>&1; then
    echo "verify: lifetime bench matches baseline exactly"
  else
    echo "verify: FAIL lifetime bench drifted from $lifetime_baseline:"
    diff -u "$lifetime_baseline" results/BENCH_lifetime.json || true
    exit 1
  fi
else
  echo "verify: WARN no lifetime baseline at $lifetime_baseline; skipping bench diff"
fi

# Detector-zoo report gate: regenerate the backend x flavor comparison
# and diff against the committed report. Every field is derived from
# seeded training, the cost model, and the resource profiler — fully
# deterministic — so *any* drift is a hard failure. (The bin itself
# exits nonzero if the observed telemetry span cycles disagree with the
# cost model for either backend, or if a flavor ladder stops shrinking.)
zoo_baseline=results/DETECTOR_zoo.json
if [[ -f "$zoo_baseline" ]]; then
  cargo run --release -q -p bench --bin detector_zoo -- \
    --out /tmp/DETECTOR_zoo.verify.json >/dev/null
  if diff -u "$zoo_baseline" /tmp/DETECTOR_zoo.verify.json >/dev/null 2>&1; then
    echo "verify: detector zoo matches committed report exactly"
  else
    echo "verify: FAIL detector zoo drifted from $zoo_baseline:"
    diff -u "$zoo_baseline" /tmp/DETECTOR_zoo.verify.json || true
    exit 1
  fi
else
  echo "verify: WARN no zoo report at $zoo_baseline; skipping zoo diff"
fi

# Adversary-campaign gate: regenerate the per-attack-class detection
# matrix (population x backend cells, each digest-checked at 1/2/8
# threads inside the bin) and diff against the committed baseline.
# Every field — counts, permille rates, Wilson bounds, digests — is a
# pure function of the seeds, so any drift is a hard failure.
campaign_baseline=results/BENCH_campaign.json
if [[ -f "$campaign_baseline" ]]; then
  cargo run --release -q -p bench --bin campaign -- \
    --out /tmp/BENCH_campaign.verify.json >/dev/null
  if diff -u "$campaign_baseline" /tmp/BENCH_campaign.verify.json >/dev/null 2>&1; then
    echo "verify: campaign matrix matches committed baseline exactly"
  else
    echo "verify: FAIL campaign matrix drifted from $campaign_baseline:"
    diff -u "$campaign_baseline" /tmp/BENCH_campaign.verify.json || true
    exit 1
  fi
else
  echo "verify: WARN no campaign baseline at $campaign_baseline; skipping campaign diff"
fi

echo "verify: OK"
