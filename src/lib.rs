//! # sift-repro
//!
//! A from-scratch Rust reproduction of *"Deploying Data-Driven Security
//! Solutions on Resource-Constrained Wearable IoT Systems"* (Cai, Yun,
//! Hester, Venkatasubramanian — ICDCS 2017): the **SIFT** ECG
//! sensor-hijacking detector, the three resource-graded detector
//! versions, the simulated **Amulet** wearable platform they deploy on,
//! and the full WIoT environment around it.
//!
//! This crate is the workspace façade: it re-exports the member crates
//! and hosts the runnable examples and cross-crate integration tests.
//!
//! | Crate | Role |
//! |---|---|
//! | [`dsp`] | filters, statistics, normalization, libm-free math, Q16.16 |
//! | [`physio_sim`] | synthetic ECG/ABP subjects (Fantasia stand-in), peak detectors |
//! | [`ml`] | linear SVM, scalers, metrics, baselines, embedded model codec |
//! | [`sift`] | portraits, the three feature extractors, trainer, detector |
//! | [`amulet_sim`] | QM state machines, AmuletOS, memory/energy models, ARP |
//! | [`wiot`] | sensors, channel, attackers, base station, sink, adaptive security |
//!
//! # Quickstart
//!
//! ```
//! use physio_sim::subject::bank;
//! use sift::config::SiftConfig;
//! use sift::detector::Detector;
//! use sift::features::Version;
//! use sift::flavor::PlatformFlavor;
//! use sift::snippet::Snippet;
//! use sift::trainer::train_for_subject;
//!
//! # fn main() -> Result<(), sift::SiftError> {
//! let subjects = bank();
//! let config = SiftConfig { train_s: 60.0, ..SiftConfig::default() };
//! let model = train_for_subject(&subjects, 0, Version::Simplified, &config, 7)?;
//! let detector = Detector::new(model, PlatformFlavor::Amulet, config.clone())?;
//!
//! // Classify one 3-second window of live data.
//! let live = physio_sim::record::Record::synthesize(&subjects[0], 3.0, 99);
//! let window = Snippet::from_record(&live)?;
//! let detection = detector.classify(&window)?;
//! assert!(!detection.is_alert(), "the wearer's own ECG should pass");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use amulet_sim;
pub use dsp;
pub use ml;
pub use physio_sim;
pub use sift;
pub use wiot;
