//! Property-based tests for the platform simulation: memory invariants,
//! energy monotonicity, and event-queue behaviour.

use amulet_sim::energy::{EnergyMeter, EnergyModel};
use amulet_sim::event::{AmuletEvent, EventQueue};
use amulet_sim::memory::{Arena, MemoryModel, Region, MAX_ARRAY_ELEMS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn region_never_exceeds_capacity(ops in prop::collection::vec((any::<bool>(), 0usize..4096), 1..200)) {
        let mut r = Region::new("fram", 8192);
        for (is_alloc, bytes) in ops {
            if is_alloc {
                let _ = r.reserve(bytes);
            } else {
                r.release(bytes);
            }
            prop_assert!(r.used() <= r.capacity());
            prop_assert!(r.peak() <= r.capacity());
            prop_assert!(r.used() <= r.peak() || r.peak() == 0);
            prop_assert_eq!(r.available(), r.capacity() - r.used());
        }
    }

    #[test]
    fn arena_peak_is_monotone(allocs in prop::collection::vec(0usize..512, 1..100), resets in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut a = Arena::new(4096);
        let mut last_peak = 0;
        for (bytes, reset) in allocs.iter().zip(&resets) {
            let _ = a.alloc(*bytes);
            if *reset {
                a.reset();
            }
            prop_assert!(a.peak() >= last_peak, "peak decreased");
            prop_assert!(a.used() <= a.peak());
            last_peak = a.peak();
        }
    }

    #[test]
    fn array_limit_enforced_exactly(elems in 0usize..4000, elem_bytes in 1usize..8) {
        let mut m = MemoryModel::default();
        let result = m.alloc_array(elems, elem_bytes);
        if elems > MAX_ARRAY_ELEMS {
            prop_assert!(result.is_err());
            prop_assert_eq!(m.fram().used(), 0);
        } else {
            prop_assert!(result.is_ok());
            prop_assert_eq!(m.fram().used(), elems * elem_bytes);
        }
    }

    #[test]
    fn event_queue_fifo_and_bounded(capacity in 1usize..64, events in prop::collection::vec(0u32..1000, 0..128)) {
        let mut q = EventQueue::new(capacity);
        let mut accepted = Vec::new();
        for &code in &events {
            if q.post(AmuletEvent::Signal(code)) {
                accepted.push(code);
            }
        }
        prop_assert!(q.len() <= capacity);
        prop_assert_eq!(q.dropped() as usize, events.len() - accepted.len());
        // Drain preserves FIFO order of accepted events.
        let mut drained = Vec::new();
        while let Some(AmuletEvent::Signal(code)) = q.pop() {
            drained.push(code);
        }
        prop_assert_eq!(drained, accepted);
    }

    #[test]
    fn energy_meter_charge_is_additive(cycles in prop::collection::vec(0.0f64..1e7, 1..50)) {
        let model = EnergyModel::default();
        let mut one = EnergyMeter::new();
        for &c in &cycles {
            one.charge_cycles(c, &model);
        }
        let mut bulk = EnergyMeter::new();
        bulk.charge_cycles(cycles.iter().sum(), &model);
        prop_assert!((one.consumed_mah() - bulk.consumed_mah()).abs() < 1e-9);
        prop_assert!((one.active_cycles() - bulk.active_cycles()).abs() < 1e-6);
    }

    #[test]
    fn lifetime_monotone_in_current(i1 in 1.0f64..1e4, i2 in 1.0f64..1e4) {
        let m = EnergyModel::default();
        let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
        prop_assert!(m.lifetime_days(lo) >= m.lifetime_days(hi));
    }

    #[test]
    fn average_current_monotone_in_duty(a1 in 0.0f64..3.0, a2 in 0.0f64..3.0) {
        let m = EnergyModel::default();
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        prop_assert!(m.average_current_ua(lo, 3.0) <= m.average_current_ua(hi, 3.0));
    }

    #[test]
    fn battery_fraction_bounded(sleeps in prop::collection::vec(0.0f64..1e6, 0..30)) {
        let model = EnergyModel::default();
        let mut meter = EnergyMeter::new();
        for &s in &sleeps {
            meter.charge_sleep(s, &model);
            let f = meter.battery_fraction_left(&model);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
