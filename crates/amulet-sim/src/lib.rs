//! A behavioural simulation of the **Amulet** wearable platform
//! (Hester et al., SenSys'16) — the WIoT base station the paper deploys
//! SIFT on.
//!
//! The real Amulet is a wrist-worn MSP430FR5989 system (2 KB SRAM,
//! 128 KB FRAM, 110 mAh battery) running AmuletOS on the QM event-driven
//! framework: applications are state machines with run-to-completion
//! event handlers, no threads, no heap, and compile-time predictive
//! analysis of memory and energy (the Amulet Resource Profiler, ARP).
//! This crate models each of those pieces:
//!
//! * [`event`] / [`machine`] — the QM-style event and state-machine
//!   abstractions with run-to-completion semantics,
//! * [`memory`] — FRAM/SRAM accounting with the platform's array
//!   restrictions (paper Insight #1),
//! * [`energy`] — a parameterized current/battery model of the
//!   MSP430FR5989 and its peripherals,
//! * [`costs`] — a per-operation cycle-cost model of software floating
//!   point on the MSP430 (no FPU), from which per-version detector
//!   execution times are derived,
//! * [`profiler`] — the ARP analogue: static per-app resource profiles,
//!   battery-lifetime projection, and ARP-view-style reports with
//!   parameter "sliders" (Fig. 3),
//! * [`toolchain`] — firmware assembly with compile-time resource checks,
//! * [`display`] — the LED/display mock used for alerts and debugging
//!   (paper Insight #3),
//! * [`os`] — AmuletOS: app registry, event dispatch, clock and energy
//!   bookkeeping,
//! * [`nvram`] — a crash-consistent A/B checkpoint store in the
//!   nonvolatile FRAM, so detector state survives brownout-reboots,
//! * [`apps`] — applications, including the three-state SIFT detector app
//!   (*PeaksDataCheck → FeatureExtraction → MLClassifier*, paper §III)
//!   and a simple heart-rate display app demonstrating multi-app
//!   deployment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod costs;
pub mod display;
pub mod energy;
pub mod event;
pub mod machine;
pub mod memory;
pub mod nvram;
pub mod os;
pub mod profiler;
pub mod sensors;
pub mod toolchain;

mod error;

pub use error::AmuletError;

/// FRAM capacity of the MSP430FR5989, in bytes.
pub const FRAM_BYTES: usize = 128 * 1024;
/// SRAM capacity of the MSP430FR5989, in bytes.
pub const SRAM_BYTES: usize = 2 * 1024;
/// Battery capacity of the Amulet prototype, in mAh.
pub const BATTERY_MAH: f64 = 110.0;
/// MCU clock of the simulated device, in Hz (the MSP430FR5989 tops out
/// at 16 MHz).
pub const CPU_HZ: f64 = 16_000_000.0;
