//! Cycle-cost model of the detector on an MSP430-class MCU.
//!
//! The MSP430FR5989 has no floating-point unit: every `float` operation
//! is a software-library call costing tens to hundreds of cycles, and the
//! double-precision C math library's `sqrt`/`atan2` cost tens of
//! thousands. This module prices each pipeline stage of the three
//! detector versions from an operation inventory, so execution time —
//! and through it energy and battery lifetime (Table III) — is *derived*
//! rather than hard-coded.
//!
//! The three versions differ exactly as the paper describes:
//!
//! * **Original** — full `f32` pipeline plus C-math-library `sqrt`/`atan2`
//!   calls (double precision) for the angle/distance features and the
//!   column-average standard deviation.
//! * **Simplified** — the same `f32` pipeline with variance, slopes and
//!   squared distances: no math-library calls at all.
//! * **Reduced** — geometric features only, computed in Q16.16 fixed
//!   point over streamed peak coordinates (integer min/max pass instead
//!   of full float normalization); this is what shrinks its SRAM use to
//!   tens of bytes and roughly doubles battery life in Table III.
//!
//! The per-operation constants are calibrated to MSP430 software-float
//! runtime libraries; they are inputs to the model in the same way ARP's
//! per-component parameters are in the real toolchain.

use sift::config::SiftConfig;
use sift::features::Version;

/// Cycle prices for primitive operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCosts {
    /// f32 add/subtract (software float).
    pub f_add: f64,
    /// f32 multiply.
    pub f_mul: f64,
    /// f32 divide.
    pub f_div: f64,
    /// f32 compare / load-store bundle.
    pub f_cmp: f64,
    /// Double-precision C-library square root (original version only).
    pub f_sqrt: f64,
    /// Double-precision C-library `atan2` (original version only).
    pub f_atan2: f64,
    /// Q16.16 multiply (uses the 32-bit hardware multiplier).
    pub q_mul: f64,
    /// Q16.16 add.
    pub q_add: f64,
    /// 16-bit integer compare (streaming min/max in the reduced path).
    pub int_cmp: f64,
}

impl Default for OpCosts {
    fn default() -> Self {
        Self {
            f_add: 110.0,
            f_mul: 160.0,
            f_div: 380.0,
            f_cmp: 40.0,
            f_sqrt: 20_000.0,
            f_atan2: 22_000.0,
            q_mul: 14.0,
            q_add: 4.0,
            int_cmp: 8.0,
        }
    }
}

/// Cycle counts of one detector pass, broken down by pipeline state
/// (the three QM states of the app, paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageCycles {
    /// *PeaksDataCheck*: fetching/checking the snippet and updating the
    /// display.
    pub peaks_data_check: f64,
    /// *FeatureExtraction*: normalization, grid, matrix + geometric
    /// features.
    pub feature_extraction: f64,
    /// *MLClassifier*: standardization and the hyperplane dot product.
    pub ml_classifier: f64,
}

impl StageCycles {
    /// Total cycles of one detection pass.
    pub fn total(&self) -> f64 {
        self.peaks_data_check + self.feature_extraction + self.ml_classifier
    }

    /// Execution time of one pass at `cpu_hz`.
    pub fn execution_time_s(&self, cpu_hz: f64) -> f64 {
        self.total() / cpu_hz
    }
}

/// Price one detection pass of `version` under `config`.
///
/// `avg_peaks_per_window` is the expected number of R/systolic peaks in a
/// `w`-second window (≈ `w · HR / 60`; 4 at 80 bpm and w = 3 s).
pub fn detector_cycles(
    version: Version,
    config: &SiftConfig,
    costs: &OpCosts,
    avg_peaks_per_window: f64,
) -> StageCycles {
    let n = config.window_samples() as f64; // samples per channel
    let g = config.grid_n as f64;
    let cells = g * g;
    let peaks = avg_peaks_per_window.max(1.0);

    // --- PeaksDataCheck: fetch/validate both channels + display update.
    let peaks_data_check = 2.0 * n * costs.f_cmp + 15_000.0;

    let feature_extraction = match version {
        Version::Original | Version::Simplified => {
            // Min–max normalization of both channels: compare pass, one
            // reciprocal divide, then subtract+multiply per sample.
            let normalization =
                2.0 * (n * costs.f_cmp + costs.f_div + n * (costs.f_add + costs.f_mul));

            let geometric = if version == Version::Original {
                // Two angle means (atan2 each), two distance means
                // (mul, mul, add, sqrt each), one pair-distance mean.
                2.0 * peaks * costs.f_atan2
                    + 2.0 * peaks * (2.0 * costs.f_mul + costs.f_add + costs.f_sqrt)
                    + peaks * (2.0 * costs.f_mul + 3.0 * costs.f_add + costs.f_sqrt)
            } else {
                // Slopes (one divide), squared distances (no sqrt).
                2.0 * peaks * costs.f_div
                    + 2.0 * peaks * (2.0 * costs.f_mul + costs.f_add)
                    + peaks * (2.0 * costs.f_mul + 3.0 * costs.f_add)
            };

            // Matrix features: grid binning of every sample, SFI over all
            // cells, column averages, spread, AUC.
            let binning = n * (2.0 * costs.f_mul + 2.0 * costs.f_cmp);
            let sfi = cells * (costs.f_mul + costs.f_add);
            let col_avg = cells * costs.f_add + g * costs.f_div;
            let spread = g * (2.0 * costs.f_add + costs.f_mul)
                + costs.f_div
                + if version == Version::Original {
                    costs.f_sqrt
                } else {
                    0.0
                };
            let auc = g * (2.0 * costs.f_add) + costs.f_div;

            normalization + geometric + binning + sfi + col_avg + spread + auc
        }
        Version::Reduced => {
            // Streaming integer min/max over raw int16 samples; only the
            // peak coordinates are ever normalized (Q16.16).
            let min_max = 2.0 * n * costs.int_cmp;
            let peak_norm = 3.0 * peaks * (costs.q_add + costs.q_mul + 30.0);
            let geometric = 2.0 * peaks * (2.0 * costs.q_mul + costs.q_add + 60.0)
                + peaks * (2.0 * costs.q_mul + 3.0 * costs.q_add);
            min_max + peak_norm + geometric
        }
    };

    // --- MLClassifier: per-feature standardize + multiply-accumulate.
    let dim = version.feature_count() as f64;
    let ml_classifier = match version {
        Version::Reduced => dim * (costs.q_add + 2.0 * costs.q_mul) + 2_000.0,
        _ => dim * (costs.f_add + 2.0 * costs.f_mul) + 2_000.0,
    };

    StageCycles {
        peaks_data_check,
        feature_extraction,
        ml_classifier,
    }
}

/// Price the *MLClassifier* stage when the deployed backend is the
/// integer-only Tsetlin machine ([`ml::tsetlin`]).
///
/// The Tsetlin pass never touches the software-float library: it
/// booleanizes the feature vector with total-order-key compares
/// (`THRESHOLDS_PER_FEATURE` ordered compares per feature after a
/// shift/xor key transform) and evaluates `2 · pairs` clauses, each a
/// 64-bit include-mask AND + compare (eight 16-bit word ops on the
/// MSP430) followed by a vote accumulate.
pub fn tsetlin_classifier_cycles(dim: usize, pairs: usize, costs: &OpCosts) -> f64 {
    let thresholds = ml::tsetlin::THRESHOLDS_PER_FEATURE as f64;
    let dim = dim as f64;
    let clauses = 2.0 * pairs as f64;
    // Key transform (shift, xor, shift on a 32-bit word) + ordered
    // threshold compares, per feature.
    let booleanize = dim * (3.0 + thresholds) * costs.int_cmp;
    // Mask AND + compare over four 16-bit words each, plus the vote add.
    let clause_eval = clauses * (8.0 * costs.int_cmp + costs.q_add);
    // Final vote sign test + the same state-dispatch overhead the SVM
    // classifier stage carries.
    booleanize + clause_eval + costs.int_cmp + 2_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles(v: Version) -> StageCycles {
        detector_cycles(v, &SiftConfig::default(), &OpCosts::default(), 4.0)
    }

    #[test]
    fn ordering_original_gt_simplified_gt_reduced() {
        let o = cycles(Version::Original).total();
        let s = cycles(Version::Simplified).total();
        let r = cycles(Version::Reduced).total();
        assert!(o > s, "original {o} vs simplified {s}");
        assert!(s > r, "simplified {s} vs reduced {r}");
        // Reduced skips the float pipeline entirely, so the gap is large.
        assert!(r < s / 5.0, "reduced {r} not far below simplified {s}");
    }

    #[test]
    fn execution_times_are_plausible_for_msp430() {
        // Float-heavy versions take ~150–200 ms at 16 MHz; the reduced
        // fixed-point pass takes a few ms.
        let o = cycles(Version::Original).execution_time_s(crate::CPU_HZ);
        let s = cycles(Version::Simplified).execution_time_s(crate::CPU_HZ);
        let r = cycles(Version::Reduced).execution_time_s(crate::CPU_HZ);
        assert!((0.1..0.3).contains(&o), "original {o} s");
        assert!((0.08..0.2).contains(&s), "simplified {s} s");
        assert!((0.002..0.02).contains(&r), "reduced {r} s");
    }

    #[test]
    fn feature_extraction_dominates() {
        for v in [Version::Original, Version::Simplified] {
            let c = cycles(v);
            assert!(c.feature_extraction > c.peaks_data_check);
            assert!(c.feature_extraction > c.ml_classifier);
        }
    }

    #[test]
    fn classifier_cost_scales_with_dimension_and_arithmetic() {
        let c8 = cycles(Version::Simplified).ml_classifier;
        let c5 = cycles(Version::Reduced).ml_classifier;
        assert!(c8 > c5);
    }

    #[test]
    fn grid_size_drives_matrix_cost() {
        let at = |g: usize| {
            detector_cycles(
                Version::Original,
                &SiftConfig {
                    grid_n: g,
                    ..SiftConfig::default()
                },
                &OpCosts::default(),
                4.0,
            )
            .feature_extraction
        };
        assert!(at(100) > at(10) * 1.5);
    }

    #[test]
    fn reduced_is_insensitive_to_grid_size() {
        let at = |g: usize| {
            detector_cycles(
                Version::Reduced,
                &SiftConfig {
                    grid_n: g,
                    ..SiftConfig::default()
                },
                &OpCosts::default(),
                4.0,
            )
            .total()
        };
        assert_eq!(at(10), at(100));
    }

    #[test]
    fn tsetlin_classifier_scales_with_clause_count() {
        let costs = OpCosts::default();
        let wide = tsetlin_classifier_cycles(8, 32, &costs);
        let mid = tsetlin_classifier_cycles(8, 16, &costs);
        let narrow = tsetlin_classifier_cycles(5, 8, &costs);
        assert!(wide > mid && mid > narrow, "{wide} / {mid} / {narrow}");
    }

    #[test]
    fn tsetlin_classifier_never_pays_float_prices() {
        // Inflating every float price must not move the integer-only
        // classifier's cost.
        let base = OpCosts::default();
        let inflated = OpCosts {
            f_add: 1e9,
            f_mul: 1e9,
            f_div: 1e9,
            f_cmp: 1e9,
            f_sqrt: 1e9,
            f_atan2: 1e9,
            ..base
        };
        assert_eq!(
            tsetlin_classifier_cycles(8, 16, &base),
            tsetlin_classifier_cycles(8, 16, &inflated)
        );
    }

    #[test]
    fn total_is_sum_of_stages() {
        let c = cycles(Version::Original);
        assert!(
            (c.total() - (c.peaks_data_check + c.feature_extraction + c.ml_classifier)).abs()
                < 1e-9
        );
    }
}
