//! Events and the OS event queue.
//!
//! AmuletOS applications are event-driven: "there are no processes or
//! threads, all application code runs to completion" (paper §II-B).
//! Events are queued by the OS (timers, sensor pipeline, buttons) or by
//! apps themselves, and dispatched one at a time.

use sift::snippet::Snippet;
use std::collections::VecDeque;

/// A platform event delivered to application state machines.
#[derive(Debug, Clone, PartialEq)]
pub enum AmuletEvent {
    /// Periodic timer tick; `ms` is the OS uptime in milliseconds.
    Tick {
        /// OS uptime at the tick, in milliseconds.
        ms: u64,
    },
    /// The sensor pipeline assembled a full detection window of paired
    /// ECG/ABP data (with peak annotations, as pre-stored in the paper).
    SnippetReady(Snippet),
    /// A detection window together with its already-extracted feature
    /// vector. Posted instead of [`AmuletEvent::SnippetReady`] by a base
    /// station that extracted the window's features for the sink uplink:
    /// the detector reuses them instead of recomputing (its cycle
    /// accounting is unchanged — the real device would still run the
    /// extraction stage), while apps that only read the raw window (the
    /// heart-rate display) treat it exactly like `SnippetReady`. A
    /// detector whose version does not match the feature length falls
    /// back to extracting from the snippet itself.
    SnippetScored(Snippet, Vec<f32>),
    /// The wearer pressed the side button.
    ButtonPress,
    /// Battery state-of-charge notification, in `[0, 1]`.
    BatteryLevel(f64),
    /// App-defined signal (QM's user signals), carrying a small code.
    Signal(u32),
    /// A sensor stream the base station depends on has gone silent for
    /// longer than its watchdog tolerates (posted by the stream
    /// reassembly layer, consumed by the watchdog app).
    StreamStalled {
        /// Name of the silent stream (e.g. `"ecg"`).
        stream: String,
        /// How long the stream has been silent, ms.
        silent_ms: u64,
    },
}

impl AmuletEvent {
    /// Short name for logs and traces.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AmuletEvent::Tick { .. } => "tick",
            AmuletEvent::SnippetReady(_) => "snippet-ready",
            AmuletEvent::SnippetScored(..) => "snippet-scored",
            AmuletEvent::ButtonPress => "button-press",
            AmuletEvent::BatteryLevel(_) => "battery-level",
            AmuletEvent::Signal(_) => "signal",
            AmuletEvent::StreamStalled { .. } => "stream-stalled",
        }
    }
}

/// FIFO event queue with a bounded capacity (the real QM framework uses
/// fixed-size pools; overflow is a defined, observable condition).
#[derive(Debug, Clone)]
pub struct EventQueue {
    items: VecDeque<AmuletEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventQueue {
    /// Create a queue bounded at `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            dropped: 0,
        }
    }

    /// Enqueue an event; returns `false` (and counts a drop) when full.
    pub fn post(&mut self, event: AmuletEvent) -> bool {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.items.push_back(event);
        true
    }

    /// Dequeue the oldest event.
    pub fn pop(&mut self) -> Option<AmuletEvent> {
        self.items.pop_front()
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Events dropped due to overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = EventQueue::new(4);
        assert!(q.post(AmuletEvent::Tick { ms: 1 }));
        assert!(q.post(AmuletEvent::ButtonPress));
        assert_eq!(q.pop(), Some(AmuletEvent::Tick { ms: 1 }));
        assert_eq!(q.pop(), Some(AmuletEvent::ButtonPress));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = EventQueue::new(2);
        assert!(q.post(AmuletEvent::ButtonPress));
        assert!(q.post(AmuletEvent::ButtonPress));
        assert!(!q.post(AmuletEvent::ButtonPress));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn kind_names() {
        assert_eq!(AmuletEvent::Tick { ms: 0 }.kind_name(), "tick");
        assert_eq!(AmuletEvent::Signal(3).kind_name(), "signal");
        assert_eq!(AmuletEvent::BatteryLevel(0.5).kind_name(), "battery-level");
        assert_eq!(
            AmuletEvent::StreamStalled {
                stream: "ecg".into(),
                silent_ms: 4000
            }
            .kind_name(),
            "stream-stalled"
        );
    }

    #[test]
    fn default_capacity_nonzero() {
        let q = EventQueue::default();
        assert!(q.is_empty());
        assert!(q.capacity > 0);
    }
}
