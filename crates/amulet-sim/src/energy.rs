//! Energy model of the Amulet: component currents, duty cycles and
//! battery-lifetime projection.
//!
//! The real Amulet Resource Profiler "builds a parameterized model of the
//! app's energy consumption" (paper §IV-B); this module is that model.
//! Average current is the duty-cycle-weighted sum of component currents,
//! and expected lifetime is simply `battery capacity / average current`.

use crate::{AmuletError, BATTERY_MAH, CPU_HZ};

/// Quiescent and active current draws of the platform's components.
///
/// Defaults are calibrated to the MSP430FR5989 datasheet and the Amulet
/// prototype's peripherals (Sharp memory LCD, duty-cycled BLE receiver
/// for the body-area sensor network).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentCurrents {
    /// MCU fully active at [`CPU_HZ`], in mA.
    pub mcu_active_ma: f64,
    /// MCU in LPM3 sleep with RTC, in µA.
    pub mcu_sleep_ua: f64,
    /// Always-on display average, in µA.
    pub display_ua: f64,
    /// Duty-cycled radio receiving the sensor streams, average µA.
    pub radio_avg_ua: f64,
    /// Sensor-pipeline overhead (ADC, buffering), average µA.
    pub sensor_pipeline_ua: f64,
}

impl Default for ComponentCurrents {
    fn default() -> Self {
        Self {
            mcu_active_ma: 2.2,
            mcu_sleep_ua: 2.6,
            display_ua: 9.0,
            // Receiving two continuous 360 Hz biosignal streams keeps the
            // radio's duty cycle — and its average draw — substantial.
            radio_avg_ua: 58.0,
            sensor_pipeline_ua: 8.0,
        }
    }
}

impl ComponentCurrents {
    /// Baseline (system) current with the MCU asleep, in µA — what the
    /// device draws between detection windows.
    pub fn baseline_ua(&self) -> f64 {
        self.mcu_sleep_ua + self.display_ua + self.radio_avg_ua + self.sensor_pipeline_ua
    }
}

/// The platform energy model: currents plus battery capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Component current parameters.
    pub currents: ComponentCurrents,
    /// Battery capacity in mAh.
    pub battery_mah: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            currents: ComponentCurrents::default(),
            battery_mah: BATTERY_MAH,
        }
    }
}

impl EnergyModel {
    /// Average current in µA for an app that keeps the MCU active for
    /// `active_s` seconds out of every `period_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_s <= 0` or `active_s` is negative.
    pub fn average_current_ua(&self, active_s: f64, period_s: f64) -> f64 {
        assert!(period_s > 0.0, "period must be positive");
        assert!(active_s >= 0.0, "active time cannot be negative");
        let duty = (active_s / period_s).min(1.0);
        self.currents.baseline_ua() + duty * self.currents.mcu_active_ma * 1000.0
    }

    /// Average current for a periodic task costing `cycles` per period.
    pub fn average_current_for_cycles_ua(&self, cycles: f64, period_s: f64) -> f64 {
        self.average_current_ua(cycles / CPU_HZ, period_s)
    }

    /// Expected battery lifetime in days at `avg_current_ua`.
    ///
    /// # Panics
    ///
    /// Panics if `avg_current_ua <= 0`.
    pub fn lifetime_days(&self, avg_current_ua: f64) -> f64 {
        assert!(avg_current_ua > 0.0, "current must be positive");
        self.battery_mah * 1000.0 / avg_current_ua / 24.0
    }
}

/// Microamp-milliseconds per microamp-hour (60 × 60 × 1000).
const UA_MS_PER_UAH: u64 = 3_600_000;

/// Tick-integrated battery state-of-charge in pure integer arithmetic.
///
/// The survival policy layer (`wiot::survival`) runs on the device side
/// of the simulation, where the embedded profile forbids floating point.
/// `BatteryState` therefore accounts charge in µA·ms (`u64`): a 110 mAh
/// battery is ~3.96 × 10¹¹ µA·ms, far inside `u64` range, and a drain of
/// `current_ua × dt_ms` per tick is exact. The only float conversion is
/// in the constructor, host-side, when the capacity is derived from the
/// [`EnergyModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatteryState {
    capacity_ua_ms: u64,
    consumed_ua_ms: u64,
}

impl BatteryState {
    /// Full battery with `capacity_uah` µAh of charge (min 1 µAh).
    pub fn with_capacity_uah(capacity_uah: u64) -> Self {
        Self {
            capacity_ua_ms: capacity_uah.max(1).saturating_mul(UA_MS_PER_UAH),
            consumed_ua_ms: 0,
        }
    }

    /// Full battery sized from `model.battery_mah` (the one f64→u64
    /// conversion, done once at setup).
    pub fn from_model(model: &EnergyModel) -> Self {
        let uah = (model.battery_mah * 1000.0).max(1.0) as u64;
        Self::with_capacity_uah(uah)
    }

    /// Same capacity, but starting from `permille`/1000 state of charge.
    pub fn with_initial_permille(mut self, permille: u16) -> Self {
        let p = u64::from(permille.min(1000));
        self.consumed_ua_ms = self.capacity_ua_ms / 1000 * (1000 - p);
        self
    }

    /// Integrate one tick: `current_ua` µA flowing for `dt_ms` ms.
    pub fn drain(&mut self, current_ua: u64, dt_ms: u64) {
        let delta = current_ua.saturating_mul(dt_ms);
        self.consumed_ua_ms = self
            .consumed_ua_ms
            .saturating_add(delta)
            .min(self.capacity_ua_ms);
    }

    /// Remaining state of charge in permille (0..=1000).
    pub fn soc_permille(&self) -> u16 {
        let left = self.capacity_ua_ms - self.consumed_ua_ms;
        // capacity is at least UA_MS_PER_UAH, so the division is safe and
        // the quotient is at most 1000.
        ((left.saturating_mul(1000)) / self.capacity_ua_ms) as u16
    }

    /// True once every µA·ms of capacity has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.consumed_ua_ms >= self.capacity_ua_ms
    }

    /// Total capacity in µA·ms.
    pub fn capacity_ua_ms(&self) -> u64 {
        self.capacity_ua_ms
    }

    /// Charge consumed so far in µA·ms.
    pub fn consumed_ua_ms(&self) -> u64 {
        self.consumed_ua_ms
    }
}

/// Runtime energy meter: integrates the charge actually consumed by a
/// simulated run (the OS charges it per dispatched event).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    active_cycles: f64,
    sleep_s: f64,
    consumed_mah: f64,
}

impl EnergyMeter {
    /// Fresh meter with nothing consumed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge for `cycles` of active CPU under `model`.
    pub fn charge_cycles(&mut self, cycles: f64, model: &EnergyModel) {
        let seconds = cycles / CPU_HZ;
        self.active_cycles += cycles;
        self.consumed_mah += model.currents.mcu_active_ma * seconds / 3600.0;
    }

    /// Charge for `seconds` of baseline (sleep) current under `model`.
    pub fn charge_sleep(&mut self, seconds: f64, model: &EnergyModel) {
        self.sleep_s += seconds;
        self.consumed_mah += model.currents.baseline_ua() / 1000.0 * seconds / 3600.0;
    }

    /// Total charge consumed so far, in mAh.
    pub fn consumed_mah(&self) -> f64 {
        self.consumed_mah
    }

    /// Total active CPU cycles charged.
    pub fn active_cycles(&self) -> f64 {
        self.active_cycles
    }

    /// Remaining battery fraction under `model`, clamped to `[0, 1]`.
    pub fn battery_fraction_left(&self, model: &EnergyModel) -> f64 {
        (1.0 - self.consumed_mah / model.battery_mah).clamp(0.0, 1.0)
    }

    /// Fail if the battery is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::BatteryExhausted`] once consumption exceeds
    /// capacity.
    pub fn check_battery(&self, model: &EnergyModel) -> Result<(), AmuletError> {
        if self.consumed_mah >= model.battery_mah {
            Err(AmuletError::BatteryExhausted)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{detector_cycles, OpCosts};
    use sift::config::SiftConfig;
    use sift::features::Version;

    #[test]
    fn baseline_is_sum_of_components() {
        let c = ComponentCurrents::default();
        assert!((c.baseline_ua() - (2.6 + 9.0 + 58.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_duty_draws_baseline() {
        let m = EnergyModel::default();
        assert!(
            (m.average_current_ua(0.0, 3.0) - m.currents.baseline_ua()).abs() < 1e-12
        );
    }

    #[test]
    fn full_duty_draws_active_current() {
        let m = EnergyModel::default();
        let i = m.average_current_ua(3.0, 3.0);
        assert!((i - (m.currents.baseline_ua() + 2200.0)).abs() < 1e-9);
    }

    #[test]
    fn lifetime_inversely_proportional_to_current() {
        let m = EnergyModel::default();
        let l1 = m.lifetime_days(100.0);
        let l2 = m.lifetime_days(200.0);
        assert!((l1 / l2 - 2.0).abs() < 1e-9);
        // 110 mAh at 100 µA ≈ 45.8 days.
        assert!((l1 - 110_000.0 / 100.0 / 24.0).abs() < 1e-9);
    }

    /// The Table III reproduction: per-version lifetimes derived from the
    /// cycle model land in the paper's ballpark and preserve its shape.
    #[test]
    fn table3_lifetime_shape() {
        let m = EnergyModel::default();
        let cfg = SiftConfig::default();
        let costs = OpCosts::default();
        let lifetime = |v: Version| {
            let c = detector_cycles(v, &cfg, &costs, 4.0);
            m.lifetime_days(m.average_current_for_cycles_ua(c.total(), cfg.window_s))
        };
        let original = lifetime(Version::Original);
        let simplified = lifetime(Version::Simplified);
        let reduced = lifetime(Version::Reduced);
        assert!(original < simplified, "{original} vs {simplified}");
        assert!(simplified < reduced, "{simplified} vs {reduced}");
        // Paper: 23 / 26 / 55 days.
        assert!((20.0..27.0).contains(&original), "original {original}");
        assert!((22.0..30.0).contains(&simplified), "simplified {simplified}");
        assert!((45.0..65.0).contains(&reduced), "reduced {reduced}");
        assert!(reduced / original > 1.9, "reduced should roughly double lifetime");
    }

    #[test]
    fn meter_integrates_charge() {
        let m = EnergyModel::default();
        let mut meter = EnergyMeter::new();
        meter.charge_sleep(3600.0, &m); // 1 h of baseline
        let expect = m.currents.baseline_ua() / 1000.0 / 1.0;
        assert!((meter.consumed_mah() - expect).abs() < 1e-9);
        meter.charge_cycles(CPU_HZ, &m); // 1 s active
        assert!(meter.consumed_mah() > expect);
        assert_eq!(meter.active_cycles(), CPU_HZ);
    }

    #[test]
    fn battery_exhaustion_detected() {
        let m = EnergyModel {
            battery_mah: 0.001,
            ..EnergyModel::default()
        };
        let mut meter = EnergyMeter::new();
        meter.check_battery(&m).unwrap();
        meter.charge_sleep(1e6, &m);
        assert_eq!(meter.check_battery(&m), Err(AmuletError::BatteryExhausted));
        assert_eq!(meter.battery_fraction_left(&m), 0.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn bad_period_panics() {
        EnergyModel::default().average_current_ua(1.0, 0.0);
    }

    #[test]
    fn battery_state_integrates_exactly() {
        let mut b = BatteryState::with_capacity_uah(1); // 3_600_000 µA·ms
        assert_eq!(b.soc_permille(), 1000);
        b.drain(100, 18_000); // 1.8e6 µA·ms = half the capacity
        assert_eq!(b.soc_permille(), 500);
        assert!(!b.is_exhausted());
        b.drain(100, 18_000);
        assert_eq!(b.soc_permille(), 0);
        assert!(b.is_exhausted());
        // Further drain saturates instead of wrapping.
        b.drain(u64::MAX, u64::MAX);
        assert_eq!(b.consumed_ua_ms(), b.capacity_ua_ms());
    }

    #[test]
    fn battery_state_matches_float_lifetime_projection() {
        let m = EnergyModel::default();
        let mut b = BatteryState::from_model(&m);
        // 110 mAh at a constant 100 µA lasts 1100 h; drain hour by hour.
        let mut hours = 0u64;
        while !b.is_exhausted() && hours < 2000 {
            b.drain(100, 3_600_000);
            hours += 1;
        }
        assert_eq!(hours, 1100);
        let float_days = m.lifetime_days(100.0);
        assert!((hours as f64 / 24.0 - float_days).abs() < 0.05);
    }

    #[test]
    fn battery_state_initial_permille_and_monotonicity() {
        let b = BatteryState::with_capacity_uah(110_000).with_initial_permille(250);
        assert_eq!(b.soc_permille(), 250);
        let full = BatteryState::with_capacity_uah(110_000).with_initial_permille(1000);
        assert_eq!(full.soc_permille(), 1000);
        let mut prev = full;
        let mut soc = prev.soc_permille();
        for _ in 0..100 {
            prev.drain(500, 3_600_000);
            let next = prev.soc_permille();
            assert!(next <= soc, "SoC must be monotone non-increasing");
            soc = next;
        }
    }
}
