//! AmuletOS: the application container and event dispatcher.
//!
//! The OS owns the device's display, battery meter, memory model and
//! event queue. Apps are installed from a statically checked
//! [`FirmwareImage`] and then receive events one at a time,
//! run-to-completion, in installation order — exactly the concurrency
//! model of the real platform (no threads, no preemption).

use crate::display::Display;
use crate::energy::{EnergyMeter, EnergyModel};
use crate::event::{AmuletEvent, EventQueue};
use crate::machine::{Alert, App, AppContext};
use crate::memory::MemoryModel;
use crate::toolchain::FirmwareImage;
use crate::AmuletError;
use telemetry::Telemetry;

/// The operating system instance for one simulated device.
pub struct AmuletOs {
    clock_ms: u64,
    apps: Vec<Box<dyn App>>,
    queue: EventQueue,
    display: Display,
    meter: EnergyMeter,
    energy_model: EnergyModel,
    memory: MemoryModel,
    alerts: Vec<Alert>,
    dispatched: u64,
    telemetry: Telemetry,
}

impl std::fmt::Debug for AmuletOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmuletOs")
            .field("clock_ms", &self.clock_ms)
            .field("apps", &self.apps.iter().map(|a| a.name().to_string()).collect::<Vec<_>>())
            .field("queued", &self.queue.len())
            .field("dispatched", &self.dispatched)
            .finish()
    }
}

impl AmuletOs {
    /// Boot an OS with the default energy model and device memory.
    pub fn new() -> Self {
        Self::with_energy_model(EnergyModel::default())
    }

    /// Boot with an explicit energy model.
    pub fn with_energy_model(energy_model: EnergyModel) -> Self {
        Self {
            clock_ms: 0,
            apps: Vec::new(),
            queue: EventQueue::default(),
            display: Display::new(),
            meter: EnergyMeter::new(),
            energy_model,
            memory: MemoryModel::default(),
            alerts: Vec::new(),
            dispatched: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry sink; handlers dispatched from now on record
    /// stage spans through [`AppContext::charge_stage`]. Defaults to
    /// disabled, in which case dispatch constructs contexts without a
    /// sink and recording is a no-op.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The OS telemetry sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access to the OS telemetry sink (for recording
    /// OS-adjacent events such as transport faults).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Install a statically checked firmware image together with the app
    /// instances implementing it.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::StaticCheckFailed`] if the image's specs do
    /// not match the provided apps, [`AmuletError::DuplicateApp`] for a
    /// name collision with an installed app, and memory errors from
    /// flashing.
    pub fn install(
        &mut self,
        image: &FirmwareImage,
        apps: Vec<Box<dyn App>>,
    ) -> Result<(), AmuletError> {
        self.check_install(image, &apps)?;
        image.flash(&mut self.memory)?;
        self.apps.extend(apps);
        Ok(())
    }

    /// Install an add-on image next to an already-installed base image.
    /// Same static checks as [`AmuletOs::install`], but only the apps'
    /// own footprint is charged — the system image is already resident.
    ///
    /// # Errors
    ///
    /// Same as [`AmuletOs::install`].
    pub fn install_addon(
        &mut self,
        image: &FirmwareImage,
        apps: Vec<Box<dyn App>>,
    ) -> Result<(), AmuletError> {
        self.check_install(image, &apps)?;
        image.flash_addon(&mut self.memory)?;
        self.apps.extend(apps);
        Ok(())
    }

    fn check_install(
        &self,
        image: &FirmwareImage,
        apps: &[Box<dyn App>],
    ) -> Result<(), AmuletError> {
        if image.specs().len() != apps.len()
            || !image
                .specs()
                .iter()
                .zip(apps)
                .all(|(s, a)| s.name == a.name())
        {
            return Err(AmuletError::StaticCheckFailed {
                reason: "firmware image does not match the provided app instances".to_string(),
            });
        }
        for a in apps {
            if self.apps.iter().any(|b| b.name() == a.name()) {
                return Err(AmuletError::DuplicateApp {
                    name: a.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Queue an event for dispatch. Returns `false` if the queue is full
    /// (the event is dropped, as on the device).
    pub fn post(&mut self, event: AmuletEvent) -> bool {
        self.queue.post(event)
    }

    /// Dispatch one queued event to every app, run-to-completion.
    /// Returns `Ok(true)` if an event was processed.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::BatteryExhausted`] once the battery is
    /// empty.
    pub fn step(&mut self) -> Result<bool, AmuletError> {
        self.meter.check_battery(&self.energy_model)?;
        let Some(event) = self.queue.pop() else {
            return Ok(false);
        };
        self.dispatched += 1;
        let mut followups = Vec::new();
        for app in &mut self.apps {
            let mut ctx = AppContext::new(
                self.clock_ms,
                app.name(),
                &mut self.display,
                &mut self.meter,
                &self.energy_model,
                &mut self.alerts,
            )
            .with_telemetry(&mut self.telemetry);
            app.handle(&event, &mut ctx);
            followups.extend(ctx.take_posted());
        }
        for e in followups {
            self.queue.post(e);
        }
        Ok(true)
    }

    /// Dispatch until the queue drains; returns the number of events
    /// processed.
    ///
    /// # Errors
    ///
    /// Propagates [`AmuletError::BatteryExhausted`].
    pub fn run_until_idle(&mut self) -> Result<usize, AmuletError> {
        let mut n = 0;
        while self.step()? {
            n += 1;
        }
        Ok(n)
    }

    /// Advance the wall clock by `ms`, charging baseline (sleep) current.
    pub fn advance_time(&mut self, ms: u64) {
        self.clock_ms += ms;
        self.meter
            .charge_sleep(ms as f64 / 1000.0, &self.energy_model);
    }

    /// OS uptime in ms.
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The screen.
    pub fn display(&self) -> &Display {
        &self.display
    }

    /// The battery meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// The memory model (post-flash usage).
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    /// Total events dispatched.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// A mergeable usage snapshot of this device's dynamic meters (see
    /// [`crate::profiler::UsageSnapshot`]); the fleet engine folds one
    /// per device into an aggregate.
    pub fn usage_snapshot(&self) -> crate::profiler::UsageSnapshot {
        crate::profiler::UsageSnapshot::single(
            self.meter.active_cycles(),
            self.meter.consumed_mah(),
            self.meter.battery_fraction_left(&self.energy_model),
            self.dispatched,
        )
    }

    /// Names of installed apps, in dispatch order.
    pub fn app_names(&self) -> Vec<&str> {
        self.apps.iter().map(|a| a.name()).collect()
    }

    /// Current state of a named app.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::UnknownApp`] if no app has that name.
    pub fn app_state(&self, name: &str) -> Result<&'static str, AmuletError> {
        self.apps
            .iter()
            .find(|a| a.name() == name)
            .map(|a| a.current_state())
            .ok_or_else(|| AmuletError::UnknownApp {
                name: name.to_string(),
            })
    }

    /// Replace the entire firmware image — the real Amulet's only way to
    /// change the app set ("the Amulet device has to be flashed every
    /// time when switching to another version of SIFT is needed",
    /// Insight #4). Device state (clock, battery meter, display
    /// scrollback, alert log) persists across the reflash; memory
    /// reservations are rebuilt from the new image.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::StaticCheckFailed`] if the image does not
    /// match the provided apps, and propagates flash errors (leaving the
    /// previous installation untouched in that case).
    pub fn reflash(
        &mut self,
        image: &FirmwareImage,
        apps: Vec<Box<dyn App>>,
    ) -> Result<(), AmuletError> {
        if image.specs().len() != apps.len()
            || !image
                .specs()
                .iter()
                .zip(&apps)
                .all(|(s, a)| s.name == a.name())
        {
            return Err(AmuletError::StaticCheckFailed {
                reason: "firmware image does not match the provided app instances".to_string(),
            });
        }
        let mut fresh = MemoryModel::new(
            self.memory.fram().capacity(),
            self.memory.sram().capacity(),
        );
        image.flash(&mut fresh)?;
        self.memory = fresh;
        self.apps = apps;
        self.queue = EventQueue::default();
        Ok(())
    }

    /// Replace the in-memory instance of an installed app with a fresh
    /// one of the same name — the recovery path after a power cycle:
    /// the firmware (and therefore the memory map, reservations, and
    /// meters) is unchanged in FRAM, but the app's volatile state
    /// machine is rebuilt from its checkpoint. Touches neither the
    /// memory model, the energy meter, nor the event queue.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::StaticCheckFailed`] if `app` is not named
    /// `name`, or [`AmuletError::UnknownApp`] if no app has that name.
    pub fn replace_app(&mut self, name: &str, app: Box<dyn App>) -> Result<(), AmuletError> {
        if app.name() != name {
            return Err(AmuletError::StaticCheckFailed {
                reason: "replacement app instance does not match the installed name".to_string(),
            });
        }
        let slot = self
            .apps
            .iter_mut()
            .find(|a| a.name() == name)
            .ok_or_else(|| AmuletError::UnknownApp {
                name: name.to_string(),
            })?;
        *slot = app;
        Ok(())
    }

    /// Reserve the nonvolatile checkpoint region in FRAM. The region is
    /// static firmware real estate (like the slots' headers on the real
    /// device), so it is charged to the memory model once, up front.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::OutOfMemory`] if the firmware image left
    /// less than `bytes` of FRAM free.
    pub fn reserve_checkpoint_region(&mut self, bytes: usize) -> Result<(), AmuletError> {
        self.memory.fram_mut().reserve(bytes)
    }

    /// Remove an installed app from the registry. Note that this does
    /// *not* reclaim flash — apps are baked into the firmware image on
    /// the real device; use [`AmuletOs::reflash`] to actually change the
    /// deployed set.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::UnknownApp`] if no app has that name.
    pub fn uninstall(&mut self, name: &str) -> Result<Box<dyn App>, AmuletError> {
        let idx = self
            .apps
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| AmuletError::UnknownApp {
                name: name.to_string(),
            })?;
        Ok(self.apps.remove(idx))
    }
}

impl Default for AmuletOs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{AppResourceSpec, ResourceProfiler};
    use crate::display::Severity;

    struct EchoApp;

    impl App for EchoApp {
        fn name(&self) -> &str {
            "echo"
        }
        fn resource_spec(&self) -> AppResourceSpec {
            AppResourceSpec {
                name: "echo".into(),
                fram_code_bytes: 64,
                fram_data_bytes: 0,
                sram_peak_bytes: 8,
                cycles_per_period: 100.0,
                period_s: 1.0,
                libs: vec![],
            }
        }
        fn current_state(&self) -> &'static str {
            "idle"
        }
        fn handle(&mut self, event: &AmuletEvent, ctx: &mut AppContext<'_>) {
            ctx.display(Severity::Info, event.kind_name());
            ctx.charge_cycles(100.0);
        }
    }

    fn os_with_echo() -> AmuletOs {
        let mut os = AmuletOs::new();
        let image = FirmwareImage::build(vec![EchoApp.resource_spec()], &ResourceProfiler::default())
            .unwrap();
        os.install(&image, vec![Box::new(EchoApp)]).unwrap();
        os
    }

    #[test]
    fn install_and_dispatch() {
        let mut os = os_with_echo();
        assert_eq!(os.app_names(), vec!["echo"]);
        os.post(AmuletEvent::ButtonPress);
        os.post(AmuletEvent::Tick { ms: 0 });
        assert_eq!(os.run_until_idle().unwrap(), 2);
        assert_eq!(os.display().lines().len(), 2);
        assert_eq!(os.dispatched(), 2);
    }

    #[test]
    fn step_on_empty_queue_is_noop() {
        let mut os = os_with_echo();
        assert!(!os.step().unwrap());
    }

    #[test]
    fn mismatched_image_rejected() {
        let mut os = AmuletOs::new();
        let image = FirmwareImage::build(vec![EchoApp.resource_spec()], &ResourceProfiler::default())
            .unwrap();
        assert!(matches!(
            os.install(&image, vec![]),
            Err(AmuletError::StaticCheckFailed { .. })
        ));
    }

    #[test]
    fn duplicate_install_rejected() {
        let mut os = os_with_echo();
        let image = FirmwareImage::build(vec![EchoApp.resource_spec()], &ResourceProfiler::default())
            .unwrap();
        assert!(matches!(
            os.install(&image, vec![Box::new(EchoApp)]),
            Err(AmuletError::DuplicateApp { .. })
        ));
    }

    #[test]
    fn advance_time_charges_sleep() {
        let mut os = os_with_echo();
        let before = os.meter().consumed_mah();
        os.advance_time(3_600_000); // one hour
        assert!(os.meter().consumed_mah() > before);
        assert_eq!(os.now_ms(), 3_600_000);
    }

    #[test]
    fn battery_exhaustion_stops_dispatch() {
        let mut os = AmuletOs::with_energy_model(EnergyModel {
            battery_mah: 1e-9,
            ..EnergyModel::default()
        });
        let image = FirmwareImage::build(vec![EchoApp.resource_spec()], &ResourceProfiler::default())
            .unwrap();
        os.install(&image, vec![Box::new(EchoApp)]).unwrap();
        os.advance_time(10_000);
        os.post(AmuletEvent::ButtonPress);
        assert_eq!(os.step(), Err(AmuletError::BatteryExhausted));
    }

    #[test]
    fn app_state_lookup() {
        let os = os_with_echo();
        assert_eq!(os.app_state("echo").unwrap(), "idle");
        assert!(matches!(
            os.app_state("nope"),
            Err(AmuletError::UnknownApp { .. })
        ));
    }

    #[test]
    fn uninstall_removes_app() {
        let mut os = os_with_echo();
        let app = os.uninstall("echo").unwrap();
        assert_eq!(app.name(), "echo");
        assert!(os.app_names().is_empty());
        assert!(os.uninstall("echo").is_err());
    }

    #[test]
    fn replace_app_swaps_instance_without_touching_meters() {
        let mut os = os_with_echo();
        os.post(AmuletEvent::ButtonPress);
        os.run_until_idle().unwrap();
        let fram_used = os.memory().fram().used();
        let consumed = os.meter().consumed_mah();
        let dispatched = os.dispatched();
        os.replace_app("echo", Box::new(EchoApp)).unwrap();
        assert_eq!(os.app_names(), vec!["echo"]);
        assert_eq!(os.memory().fram().used(), fram_used);
        assert_eq!(os.meter().consumed_mah(), consumed);
        assert_eq!(os.dispatched(), dispatched);
    }

    #[test]
    fn replace_app_rejects_wrong_or_unknown_name() {
        let mut os = os_with_echo();
        assert!(matches!(
            os.replace_app("other", Box::new(EchoApp)),
            Err(AmuletError::StaticCheckFailed { .. })
        ));
        os.uninstall("echo").unwrap();
        assert!(matches!(
            os.replace_app("echo", Box::new(EchoApp)),
            Err(AmuletError::UnknownApp { .. })
        ));
    }

    #[test]
    fn checkpoint_region_is_charged_to_fram() {
        let mut os = os_with_echo();
        let before = os.memory().fram().used();
        os.reserve_checkpoint_region(crate::nvram::NVRAM_BYTES).unwrap();
        assert_eq!(os.memory().fram().used(), before + crate::nvram::NVRAM_BYTES);
        // A second reservation beyond capacity fails loudly.
        let free = os.memory().fram().available();
        assert!(os.reserve_checkpoint_region(free + 1).is_err());
    }

    #[test]
    fn memory_reflects_flash() {
        let os = os_with_echo();
        assert!(os.memory().fram().used() > 0);
    }

    #[test]
    fn whole_device_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<AmuletOs>();
    }

    #[test]
    fn usage_snapshot_reflects_meters() {
        let mut os = os_with_echo();
        os.post(AmuletEvent::ButtonPress);
        os.run_until_idle().unwrap();
        os.advance_time(1_000);
        let snap = os.usage_snapshot();
        assert_eq!(snap.devices, 1);
        assert!(snap.active_cycles > 0.0);
        assert!(snap.consumed_mah > 0.0);
        assert_eq!(snap.min_battery_left, snap.battery_left_sum);
        assert_eq!(snap.dispatched, os.dispatched());
    }
}
