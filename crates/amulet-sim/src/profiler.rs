//! The Amulet Resource Profiler (ARP) analogue.
//!
//! ARP "captures information about each app's code space and memory
//! requirements, using a combination of compiler tools and static
//! analysis" and "builds a parameterized model of the app's energy
//! consumption"; ARP-view renders that profile with "sliders that allow
//! \[developers\] to see the battery-life impact when they adjust
//! application parameters" (paper §IV-B, Fig. 3). This module provides
//! all three: static resource specs, derived profiles, and the textual
//! ARP-view report with parameter sweeps.

use crate::costs::{detector_cycles, OpCosts};
use crate::energy::EnergyModel;
use crate::CPU_HZ;
use sift::config::SiftConfig;
use sift::features::Version;

/// Libraries an app can pull into the system image. Their footprints are
/// charged to the *system* FRAM row, which is why Table III's system
/// memory differs across detector versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemLib {
    /// Single-precision software floating point runtime.
    SoftFloat,
    /// Double-precision C math library (`sqrt`, `atan2`, …).
    CMathDouble,
}

impl SystemLib {
    /// FRAM footprint of the library, in bytes.
    pub fn fram_bytes(self) -> usize {
        match self {
            // Calibrated to the deltas in the paper's Table III:
            // system(simplified) − system(reduced) = 15.29 KB,
            // system(original) − system(simplified) = 5.45 KB.
            SystemLib::SoftFloat => 15_657,
            SystemLib::CMathDouble => 5_581,
        }
    }
}

/// Static, compile-time resource declaration of one app (what ARP
/// extracts with its compiler tooling).
#[derive(Debug, Clone, PartialEq)]
pub struct AppResourceSpec {
    /// App name.
    pub name: String,
    /// App code in FRAM, bytes.
    pub fram_code_bytes: usize,
    /// App constants + buffers in FRAM, bytes.
    pub fram_data_bytes: usize,
    /// Peak SRAM (stack + locals), bytes.
    pub sram_peak_bytes: usize,
    /// Active CPU cycles per wake period.
    pub cycles_per_period: f64,
    /// Wake period in seconds.
    pub period_s: f64,
    /// System libraries this app links.
    pub libs: Vec<SystemLib>,
}

impl AppResourceSpec {
    /// Total app FRAM (code + data), bytes.
    pub fn fram_total_bytes(&self) -> usize {
        self.fram_code_bytes + self.fram_data_bytes
    }

    /// Duty cycle of the MCU for this app alone.
    pub fn duty_cycle(&self) -> f64 {
        (self.cycles_per_period / CPU_HZ / self.period_s).min(1.0)
    }
}

/// Resource spec of the SIFT detector app for a given version — the
/// static-analysis result ARP would produce from the generated C.
///
/// Footprints are composed from the pieces the app actually owns:
/// QM state-machine scaffolding and handlers (code), the translated model
/// constants, and the window buffers (int16 for both channels; the
/// reduced version streams and keeps only peak coordinates).
pub fn sift_app_spec(version: Version, config: &SiftConfig, model_bytes: usize) -> AppResourceSpec {
    let window = config.window_samples();
    // Raw ADC samples are 12-bit; the generated C stores them packed
    // (1.5 bytes per sample). One packed channel of w·fs samples:
    let packed_channel = window * 3 / 2;
    // Peak-index arrays: two u16[40] tables per window pair.
    let peak_arrays = 160;
    // Handler + state-machine code, from counting generated-C functions.
    // The original's angle/distance handlers and math-library shims make
    // it the largest; the reduced version inlines its streaming min/max
    // and Q16.16 helpers, so it carries more code than the simplified
    // one despite the smaller pipeline.
    let (code, libs): (usize, Vec<SystemLib>) = match version {
        Version::Original => (
            1_393,
            vec![SystemLib::SoftFloat, SystemLib::CMathDouble],
        ),
        Version::Simplified => (604, vec![SystemLib::SoftFloat]),
        Version::Reduced => (765, vec![]),
    };
    // Buffers: both packed channels, except the reduced version which
    // streams the ABP reference and buffers only the ECG channel.
    let buffers = match version {
        Version::Original | Version::Simplified => 2 * packed_channel + peak_arrays,
        Version::Reduced => packed_channel + peak_arrays,
    };
    let data = buffers + model_bytes;
    let sram = match version {
        // Float locals: normalization state, grid accumulators, feature
        // vector, soft-float workspace.
        Version::Original | Version::Simplified => 259,
        // Fixed-point locals only.
        Version::Reduced => 69,
    };
    let cycles = detector_cycles(version, config, &OpCosts::default(), 4.0).total();
    AppResourceSpec {
        name: format!("sift-{version}"),
        fram_code_bytes: code,
        fram_data_bytes: data,
        sram_peak_bytes: sram,
        cycles_per_period: cycles,
        period_s: config.window_s,
        libs,
    }
}

/// Baseline AmuletOS image (kernel, drivers, QM runtime, display stack)
/// before any app libraries: calibrated to Table III's reduced-version
/// system row (56.29 KB FRAM, 694 B SRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemBaseline {
    /// OS FRAM footprint, bytes.
    pub fram_bytes: usize,
    /// OS SRAM peak, bytes.
    pub sram_bytes: usize,
}

impl Default for SystemBaseline {
    fn default() -> Self {
        Self {
            fram_bytes: 57_641, // 56.29 KB
            sram_bytes: 694,
        }
    }
}

/// A complete derived profile for a firmware image: system + apps.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceProfile {
    /// System FRAM including app-pulled libraries, bytes.
    pub system_fram_bytes: usize,
    /// Sum of app FRAM (code + data), bytes.
    pub app_fram_bytes: usize,
    /// System SRAM peak, bytes.
    pub system_sram_bytes: usize,
    /// Max app SRAM peak (run-to-completion: apps never run
    /// concurrently), bytes.
    pub app_sram_bytes: usize,
    /// Average current including app duty cycles, µA.
    pub avg_current_ua: f64,
    /// Projected battery lifetime, days.
    pub lifetime_days: f64,
}

/// A point-in-time usage snapshot of one (or, after merging, many)
/// simulated devices: the dynamic counterpart of the static
/// [`ResourceProfile`]. Snapshots are designed to be **mergeable** so a
/// fleet of devices sharded across worker threads can be folded into
/// one aggregate — merge is commutative and associative over the
/// counters, and the battery fields keep the fleet-wide extremes and
/// totals rather than an order-dependent average.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageSnapshot {
    /// Devices folded into this snapshot.
    pub devices: u64,
    /// Total active CPU cycles across devices.
    pub active_cycles: f64,
    /// Total charge consumed across devices, mAh.
    pub consumed_mah: f64,
    /// Worst (lowest) battery fraction left across devices.
    pub min_battery_left: f64,
    /// Sum of battery fractions left (divide by `devices` for the mean).
    pub battery_left_sum: f64,
    /// Total events dispatched across devices.
    pub dispatched: u64,
}

impl UsageSnapshot {
    /// Snapshot of a single device from its raw meters.
    pub fn single(
        active_cycles: f64,
        consumed_mah: f64,
        battery_left: f64,
        dispatched: u64,
    ) -> Self {
        Self {
            devices: 1,
            active_cycles,
            consumed_mah,
            min_battery_left: battery_left,
            battery_left_sum: battery_left,
            dispatched,
        }
    }

    /// Fold `other` into `self`. An empty (default) snapshot is the
    /// identity, so shard-local accumulators start from `default()`.
    pub fn merge(&mut self, other: &UsageSnapshot) {
        if other.devices == 0 {
            return;
        }
        self.min_battery_left = if self.devices == 0 {
            other.min_battery_left
        } else {
            self.min_battery_left.min(other.min_battery_left)
        };
        self.devices += other.devices;
        self.active_cycles += other.active_cycles;
        self.consumed_mah += other.consumed_mah;
        self.battery_left_sum += other.battery_left_sum;
        self.dispatched += other.dispatched;
    }

    /// Mean battery fraction left across devices (1.0 for an empty
    /// snapshot).
    pub fn mean_battery_left(&self) -> f64 {
        if self.devices == 0 {
            1.0
        } else {
            self.battery_left_sum / self.devices as f64
        }
    }
}

/// The profiler itself.
///
/// # Examples
///
/// ```
/// use amulet_sim::profiler::{sift_app_spec, ResourceProfiler};
/// use sift::{config::SiftConfig, features::Version};
///
/// let profiler = ResourceProfiler::default();
/// let spec = sift_app_spec(Version::Reduced, &SiftConfig::default(), 80);
/// let profile = profiler.profile(&[&spec]);
/// assert!(profile.lifetime_days > 50.0); // the paper's 55-day row
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceProfiler {
    baseline: SystemBaseline,
    energy: EnergyModel,
}

impl ResourceProfiler {
    /// Profiler with explicit baseline and energy model.
    pub fn new(baseline: SystemBaseline, energy: EnergyModel) -> Self {
        Self { baseline, energy }
    }

    /// Profile a firmware image containing `apps`.
    pub fn profile(&self, apps: &[&AppResourceSpec]) -> ResourceProfile {
        // System image: baseline + union of linked libraries.
        let mut libs: Vec<SystemLib> = apps.iter().flat_map(|a| a.libs.iter().copied()).collect();
        libs.sort_by_key(|l| l.fram_bytes());
        libs.dedup();
        let system_fram =
            self.baseline.fram_bytes + libs.iter().map(|l| l.fram_bytes()).sum::<usize>();
        let app_fram: usize = apps.iter().map(|a| a.fram_total_bytes()).sum();
        let app_sram = apps.iter().map(|a| a.sram_peak_bytes).max().unwrap_or(0);
        // Energy: baseline + Σ app duty cycles at active current.
        let total_active: f64 = apps
            .iter()
            .map(|a| a.cycles_per_period / CPU_HZ / a.period_s)
            .sum();
        let avg_current_ua = self.energy.currents.baseline_ua()
            + total_active.min(1.0) * self.energy.currents.mcu_active_ma * 1000.0;
        let lifetime_days = self.energy.lifetime_days(avg_current_ua);
        ResourceProfile {
            system_fram_bytes: system_fram,
            app_fram_bytes: app_fram,
            system_sram_bytes: self.baseline.sram_bytes,
            app_sram_bytes: app_sram,
            avg_current_ua,
            lifetime_days,
        }
    }

    /// ARP-view "slider": sweep the detector wake period and return
    /// `(period_s, lifetime_days)` pairs — the battery-life impact of a
    /// parameter change, as in Fig. 3.
    pub fn lifetime_vs_period(
        &self,
        spec: &AppResourceSpec,
        periods_s: &[f64],
    ) -> Vec<(f64, f64)> {
        periods_s
            .iter()
            .map(|&p| {
                let mut s = spec.clone();
                s.period_s = p;
                (p, self.profile(&[&s]).lifetime_days)
            })
            .collect()
    }

    /// Render the ARP-view textual report for an image (the Fig. 3
    /// snapshot).
    pub fn arp_view(&self, apps: &[&AppResourceSpec]) -> String {
        use std::fmt::Write;
        let p = self.profile(apps);
        let mut out = String::new();
        let _ = writeln!(out, "=== ARP-view: resource profile ===");
        let _ = writeln!(
            out,
            "system : FRAM {:>8.2} KB | SRAM {:>5} B",
            p.system_fram_bytes as f64 / 1024.0,
            p.system_sram_bytes
        );
        for a in apps {
            let _ = writeln!(
                out,
                "{:<22}: FRAM {:>8.2} KB | SRAM {:>5} B | {:>7.1} ms / {:>4.1} s",
                a.name,
                a.fram_total_bytes() as f64 / 1024.0,
                a.sram_peak_bytes,
                a.cycles_per_period / CPU_HZ * 1000.0,
                a.period_s,
            );
        }
        let _ = writeln!(
            out,
            "energy : {:.1} uA avg -> expected lifetime {:.0} days",
            p.avg_current_ua, p.lifetime_days
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(v: Version) -> AppResourceSpec {
        // 8-feature model: 12 header + 4·25 + 4 crc = 116 bytes;
        // 5-feature: 12 + 4·16 + 4 = 80.
        let model_bytes = match v {
            Version::Reduced => 80,
            _ => 116,
        };
        sift_app_spec(v, &SiftConfig::default(), model_bytes)
    }

    /// Table III, memory rows: compare against the paper's numbers.
    #[test]
    fn table3_memory_shape() {
        let profiler = ResourceProfiler::default();
        let kb = |b: usize| b as f64 / 1024.0;

        let o = profiler.profile(&[&spec(Version::Original)]);
        let s = profiler.profile(&[&spec(Version::Simplified)]);
        let r = profiler.profile(&[&spec(Version::Reduced)]);

        // Paper: system FRAM 77.03 / 71.58 / 56.29 KB.
        assert!((kb(o.system_fram_bytes) - 77.03).abs() < 1.5, "{}", kb(o.system_fram_bytes));
        assert!((kb(s.system_fram_bytes) - 71.58).abs() < 1.5, "{}", kb(s.system_fram_bytes));
        assert!((kb(r.system_fram_bytes) - 56.29).abs() < 0.1, "{}", kb(r.system_fram_bytes));

        // Paper: detector FRAM 4.79 / 4.02 / 2.56 KB.
        assert!((kb(o.app_fram_bytes) - 4.79).abs() < 0.1, "{}", kb(o.app_fram_bytes));
        assert!((kb(s.app_fram_bytes) - 4.02).abs() < 0.1, "{}", kb(s.app_fram_bytes));
        assert!((kb(r.app_fram_bytes) - 2.56).abs() < 0.1, "{}", kb(r.app_fram_bytes));
        assert!(o.app_fram_bytes > s.app_fram_bytes);
        assert!(s.app_fram_bytes > r.app_fram_bytes);

        // Paper: detector SRAM 259 / 259 / 69 B (exact by construction).
        assert_eq!(o.app_sram_bytes, 259);
        assert_eq!(s.app_sram_bytes, 259);
        assert_eq!(r.app_sram_bytes, 69);
        assert_eq!(o.system_sram_bytes, 694);
    }

    /// Table III, lifetime row: 23 / 26 / 55 days.
    #[test]
    fn table3_lifetime_from_profile() {
        let profiler = ResourceProfiler::default();
        let days = |v: Version| profiler.profile(&[&spec(v)]).lifetime_days;
        let (o, s, r) = (
            days(Version::Original),
            days(Version::Simplified),
            days(Version::Reduced),
        );
        assert!((o - 23.0).abs() < 3.0, "original {o}");
        assert!((s - 26.0).abs() < 3.0, "simplified {s}");
        assert!((r - 55.0).abs() < 5.0, "reduced {r}");
    }

    #[test]
    fn shared_libraries_counted_once() {
        let profiler = ResourceProfiler::default();
        let a = spec(Version::Simplified);
        let mut b = spec(Version::Simplified);
        b.name = "sift-simplified-2".into();
        let single = profiler.profile(&[&a]);
        let double = profiler.profile(&[&a, &b]);
        // SoftFloat linked once; only the app footprint doubles.
        assert_eq!(double.system_fram_bytes, single.system_fram_bytes);
        assert_eq!(double.app_fram_bytes, 2 * single.app_fram_bytes);
    }

    #[test]
    fn sram_is_max_not_sum() {
        let profiler = ResourceProfiler::default();
        let o = spec(Version::Original);
        let r = spec(Version::Reduced);
        let p = profiler.profile(&[&o, &r]);
        assert_eq!(p.app_sram_bytes, 259);
    }

    #[test]
    fn longer_period_extends_lifetime() {
        let profiler = ResourceProfiler::default();
        let s = spec(Version::Original);
        let sweep = profiler.lifetime_vs_period(&s, &[1.0, 3.0, 10.0, 30.0]);
        assert_eq!(sweep.len(), 4);
        assert!(sweep.windows(2).all(|w| w[1].1 > w[0].1));
    }

    #[test]
    fn arp_view_renders_all_sections() {
        let profiler = ResourceProfiler::default();
        let s = spec(Version::Original);
        let view = profiler.arp_view(&[&s]);
        assert!(view.contains("ARP-view"));
        assert!(view.contains("sift-original"));
        assert!(view.contains("lifetime"));
    }

    #[test]
    fn duty_cycle_bounded() {
        let s = spec(Version::Original);
        assert!(s.duty_cycle() > 0.0 && s.duty_cycle() < 0.2);
    }

    #[test]
    fn usage_snapshot_merge_is_order_independent() {
        let a = UsageSnapshot::single(1e6, 0.5, 0.99, 10);
        let b = UsageSnapshot::single(2e6, 0.25, 0.95, 20);
        let c = UsageSnapshot::single(4e6, 1.0, 0.90, 5);
        let fold = |xs: &[&UsageSnapshot]| {
            let mut acc = UsageSnapshot::default();
            for x in xs {
                acc.merge(x);
            }
            acc
        };
        let abc = fold(&[&a, &b, &c]);
        let cab = fold(&[&c, &a, &b]);
        assert_eq!(abc.devices, 3);
        assert_eq!(abc.devices, cab.devices);
        assert_eq!(abc.min_battery_left, cab.min_battery_left);
        assert_eq!(abc.min_battery_left, 0.90);
        assert!((abc.battery_left_sum - cab.battery_left_sum).abs() < 1e-12);
        assert_eq!(abc.dispatched, 35);
        assert!((abc.mean_battery_left() - (0.99 + 0.95 + 0.90) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let a = UsageSnapshot::single(1e6, 0.5, 0.7, 10);
        let mut acc = UsageSnapshot::default();
        acc.merge(&a);
        acc.merge(&UsageSnapshot::default());
        assert_eq!(acc, a);
        assert_eq!(UsageSnapshot::default().mean_battery_left(), 1.0);
    }

    #[test]
    fn empty_image_profiles_baseline_only() {
        let profiler = ResourceProfiler::default();
        let p = profiler.profile(&[]);
        assert_eq!(p.app_fram_bytes, 0);
        assert_eq!(p.app_sram_bytes, 0);
        assert!((p.avg_current_ua - EnergyModel::default().currents.baseline_ua()).abs() < 1e-9);
    }
}
