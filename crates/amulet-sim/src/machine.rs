//! QM-style application state machines.
//!
//! "Each application is represented as a state machine with memory.
//! Therefore, there are no processes or threads, all application code
//! runs to completion without context-switching overhead" (paper §II-B).
//! An [`App`] receives events one at a time through [`App::handle`]; the
//! [`AppContext`] gives the handler its run-to-completion window into the
//! platform: display writes, energy charging, alert raising and event
//! posting. When the handler returns, the OS collects the posted events
//! and the context dies — no app can hold platform state across events.

use crate::display::{Display, Severity};
use crate::energy::{EnergyMeter, EnergyModel};
use crate::event::AmuletEvent;
use crate::profiler::AppResourceSpec;
use telemetry::{Stage, Telemetry};

/// A security or status alert raised by an app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// OS uptime when raised, ms.
    pub at_ms: u64,
    /// Raising app.
    pub app: String,
    /// Alert text.
    pub message: String,
}

/// The platform services available to a handler during one
/// run-to-completion step.
#[derive(Debug)]
pub struct AppContext<'a> {
    /// OS uptime, ms.
    pub now_ms: u64,
    display: &'a mut Display,
    energy: &'a mut EnergyMeter,
    energy_model: &'a EnergyModel,
    alerts: &'a mut Vec<Alert>,
    posted: Vec<AmuletEvent>,
    app_name: String,
    tele: Option<&'a mut Telemetry>,
}

impl<'a> AppContext<'a> {
    /// Assemble a context for dispatching to `app_name` (called by the
    /// OS).
    pub fn new(
        now_ms: u64,
        app_name: &str,
        display: &'a mut Display,
        energy: &'a mut EnergyMeter,
        energy_model: &'a EnergyModel,
        alerts: &'a mut Vec<Alert>,
    ) -> Self {
        Self {
            now_ms,
            display,
            energy,
            energy_model,
            alerts,
            posted: Vec::new(),
            app_name: app_name.to_string(),
            tele: None,
        }
    }

    /// Attach a telemetry sink for this run-to-completion step (called
    /// by the OS when its own sink is enabled). Purely observational:
    /// handlers cannot read it back, so telemetry can never change
    /// control flow.
    pub fn with_telemetry(mut self, tele: &'a mut Telemetry) -> Self {
        self.tele = Some(tele);
        self
    }

    /// Write a status line to the screen.
    pub fn display(&mut self, severity: Severity, text: impl Into<String>) {
        self.display
            .write(self.now_ms, &self.app_name, severity, text);
    }

    /// Charge `cycles` of active CPU to the battery.
    pub fn charge_cycles(&mut self, cycles: f64) {
        self.energy.charge_cycles(cycles, self.energy_model);
    }

    /// Charge `cycles` of active CPU to the battery *and* attribute them
    /// to a pipeline stage span. The energy charge is identical to
    /// [`AppContext::charge_cycles`]; the span is the paper-units hook —
    /// its units are the cost model's MSP430 cycles, so per-stage
    /// telemetry reads directly against the paper's Table III numbers.
    pub fn charge_stage(&mut self, stage: Stage, cycles: f64) {
        self.charge_cycles(cycles);
        if let Some(tele) = self.tele.as_deref_mut() {
            // Cost-model cycle counts are non-negative and far below
            // 2^53, so the cast is lossless.
            tele.span(self.now_ms, stage, cycles as u64);
        }
    }

    /// Raise an alert (also rendered on the display, as the paper's
    /// detector does).
    pub fn raise_alert(&mut self, message: impl Into<String>) {
        let message = message.into();
        self.display
            .write(self.now_ms, &self.app_name, Severity::Alert, &message);
        self.alerts.push(Alert {
            at_ms: self.now_ms,
            app: self.app_name.clone(),
            message,
        });
    }

    /// Post a follow-up event (delivered after this run-to-completion
    /// step finishes).
    pub fn post(&mut self, event: AmuletEvent) {
        self.posted.push(event);
    }

    /// Drain the events posted during this step (called by the OS).
    pub fn take_posted(&mut self) -> Vec<AmuletEvent> {
        std::mem::take(&mut self.posted)
    }
}

/// An AmuletOS application.
///
/// Apps are `Send` so whole simulated devices can be sharded across
/// worker threads by the fleet engine (`wiot::fleet`); on the device
/// itself there is still no concurrency — events are dispatched
/// run-to-completion on one logical core.
pub trait App: Send {
    /// Unique app name.
    fn name(&self) -> &str;

    /// Static resource declaration (what ARP extracts at compile time).
    fn resource_spec(&self) -> AppResourceSpec;

    /// Name of the current state (for traces and the paper's
    /// three-state description).
    fn current_state(&self) -> &'static str;

    /// Handle one event, run-to-completion.
    fn handle(&mut self, event: &AmuletEvent, ctx: &mut AppContext<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::SystemLib;

    struct CounterApp {
        ticks: u32,
    }

    impl App for CounterApp {
        fn name(&self) -> &str {
            "counter"
        }

        fn resource_spec(&self) -> AppResourceSpec {
            AppResourceSpec {
                name: "counter".into(),
                fram_code_bytes: 100,
                fram_data_bytes: 4,
                sram_peak_bytes: 16,
                cycles_per_period: 1000.0,
                period_s: 1.0,
                libs: vec![SystemLib::SoftFloat],
            }
        }

        fn current_state(&self) -> &'static str {
            "counting"
        }

        fn handle(&mut self, event: &AmuletEvent, ctx: &mut AppContext<'_>) {
            if let AmuletEvent::Tick { .. } = event {
                self.ticks += 1;
                ctx.charge_cycles(1000.0);
                ctx.display(Severity::Info, format!("ticks {}", self.ticks));
                if self.ticks == 3 {
                    ctx.raise_alert("three ticks!");
                    ctx.post(AmuletEvent::Signal(7));
                }
            }
        }
    }

    fn dispatch(app: &mut dyn App, event: AmuletEvent) -> (Display, Vec<Alert>, Vec<AmuletEvent>) {
        let mut display = Display::new();
        let mut meter = EnergyMeter::new();
        let model = EnergyModel::default();
        let mut alerts = Vec::new();
        let posted = {
            let mut ctx = AppContext::new(5, app.name(), &mut display, &mut meter, &model, &mut alerts);
            app.handle(&event, &mut ctx);
            ctx.take_posted()
        };
        (display, alerts, posted)
    }

    #[test]
    fn handler_uses_context_services() {
        let mut app = CounterApp { ticks: 0 };
        let (display, alerts, posted) = dispatch(&mut app, AmuletEvent::Tick { ms: 1 });
        assert_eq!(display.lines().len(), 1);
        assert!(alerts.is_empty());
        assert!(posted.is_empty());
        assert_eq!(app.ticks, 1);
    }

    #[test]
    fn alert_and_post_surface() {
        let mut app = CounterApp { ticks: 2 };
        let (display, alerts, posted) = dispatch(&mut app, AmuletEvent::Tick { ms: 3 });
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].message, "three ticks!");
        assert_eq!(posted, vec![AmuletEvent::Signal(7)]);
        assert_eq!(display.alert_count(), 1);
    }

    #[test]
    fn non_tick_events_ignored_by_this_app() {
        let mut app = CounterApp { ticks: 0 };
        let (_, alerts, posted) = dispatch(&mut app, AmuletEvent::ButtonPress);
        assert_eq!(app.ticks, 0);
        assert!(alerts.is_empty());
        assert!(posted.is_empty());
    }
}
