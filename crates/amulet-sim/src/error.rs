use std::error::Error;
use std::fmt;

/// Error type for the platform simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AmuletError {
    /// An allocation would exceed a memory region's capacity.
    OutOfMemory {
        /// Which region overflowed ("fram" or "sram").
        region: &'static str,
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// The platform rejects arrays above its element limit (the paper's
    /// Insight #1: "it does not allow large array size nor did it
    /// support 2D arrays").
    ArrayTooLarge {
        /// Elements requested.
        requested: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A firmware image failed compile-time predictive analysis.
    StaticCheckFailed {
        /// Human-readable description of the violated budget.
        reason: String,
    },
    /// An app name was not found in the OS registry.
    UnknownApp {
        /// The name that failed to resolve.
        name: String,
    },
    /// An app with the same name is already installed.
    DuplicateApp {
        /// The conflicting name.
        name: String,
    },
    /// The battery is exhausted; no further execution is possible.
    BatteryExhausted,
    /// A checkpoint payload exceeds the NVRAM slot capacity.
    CheckpointTooLarge {
        /// Payload bytes requested.
        requested: usize,
        /// Maximum payload one slot holds.
        max: usize,
    },
    /// An error from the SIFT pipeline running inside an app.
    Sift(sift::SiftError),
}

impl fmt::Display for AmuletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmuletError::OutOfMemory {
                region,
                requested,
                available,
            } => write!(
                f,
                "out of {region}: requested {requested} bytes, {available} available"
            ),
            AmuletError::ArrayTooLarge { requested, max } => {
                write!(f, "array of {requested} elements exceeds platform limit of {max}")
            }
            AmuletError::StaticCheckFailed { reason } => {
                write!(f, "firmware static check failed: {reason}")
            }
            AmuletError::UnknownApp { name } => write!(f, "unknown app `{name}`"),
            AmuletError::DuplicateApp { name } => write!(f, "app `{name}` already installed"),
            AmuletError::BatteryExhausted => write!(f, "battery exhausted"),
            AmuletError::CheckpointTooLarge { requested, max } => write!(
                f,
                "checkpoint payload of {requested} bytes exceeds the {max}-byte slot"
            ),
            AmuletError::Sift(e) => write!(f, "sift error: {e}"),
        }
    }
}

impl Error for AmuletError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AmuletError::Sift(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sift::SiftError> for AmuletError {
    fn from(e: sift::SiftError) -> Self {
        AmuletError::Sift(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AmuletError::OutOfMemory {
            region: "fram",
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("fram"));
        assert!(AmuletError::BatteryExhausted.to_string().contains("battery"));
        let e = AmuletError::CheckpointTooLarge {
            requested: 5000,
            max: 2032,
        };
        assert!(e.to_string().contains("5000"));
        assert!(e.to_string().contains("2032"));
    }

    #[test]
    fn sift_errors_chain() {
        let e = AmuletError::from(sift::SiftError::DegenerateSignal);
        assert!(e.source().is_some());
    }
}
