//! LED-display mock.
//!
//! The paper's detector "will generate an alert on the LED screen of the
//! Amulet platform", and — for want of a debugger — the authors also
//! debugged by printing variable values to this screen (Insight #3).
//! This mock records everything written so tests and the desktop
//! "simulator that emulates the screen writing" the paper wishes for can
//! assert on it.

/// Severity of a display line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Normal status output.
    Info,
    /// Security alert (rendered inverted/flashing on the device).
    Alert,
    /// Developer debug output (Insight #3's printf-on-screen).
    Debug,
}

/// One rendered line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisplayLine {
    /// OS uptime when written, in ms.
    pub at_ms: u64,
    /// Which app wrote it.
    pub app: String,
    /// Line severity.
    pub severity: Severity,
    /// The text shown.
    pub text: String,
}

/// The screen: a bounded scrollback of rendered lines.
#[derive(Debug, Clone, Default)]
pub struct Display {
    lines: Vec<DisplayLine>,
    writes: u64,
}

impl Display {
    /// Fresh, blank display.
    pub fn new() -> Self {
        Self::default()
    }

    /// Render one line.
    pub fn write(&mut self, at_ms: u64, app: &str, severity: Severity, text: impl Into<String>) {
        self.writes += 1;
        self.lines.push(DisplayLine {
            at_ms,
            app: app.to_string(),
            severity,
            text: text.into(),
        });
        // The physical screen shows a handful of lines; keep a generous
        // scrollback for assertions but bound memory.
        if self.lines.len() > 10_000 {
            self.lines.drain(..5_000);
        }
    }

    /// All retained lines, oldest first.
    pub fn lines(&self) -> &[DisplayLine] {
        &self.lines
    }

    /// Lines of a given severity.
    pub fn lines_with(&self, severity: Severity) -> impl Iterator<Item = &DisplayLine> + '_ {
        self.lines.iter().filter(move |l| l.severity == severity)
    }

    /// Total writes ever made (including scrolled-off lines).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of alert lines currently retained.
    pub fn alert_count(&self) -> usize {
        self.lines_with(Severity::Alert).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_filter() {
        let mut d = Display::new();
        d.write(10, "sift", Severity::Info, "hr 64");
        d.write(20, "sift", Severity::Alert, "ECG ALTERED");
        d.write(30, "hr", Severity::Debug, "x=1.5");
        assert_eq!(d.lines().len(), 3);
        assert_eq!(d.alert_count(), 1);
        assert_eq!(d.lines_with(Severity::Debug).count(), 1);
        assert_eq!(d.write_count(), 3);
    }

    #[test]
    fn scrollback_bounded() {
        let mut d = Display::new();
        for i in 0..10_001 {
            d.write(i, "app", Severity::Info, "line");
        }
        assert!(d.lines().len() <= 10_000);
        assert_eq!(d.write_count(), 10_001);
    }

    #[test]
    fn lines_keep_metadata() {
        let mut d = Display::new();
        d.write(42, "sift", Severity::Alert, "alert!");
        let l = &d.lines()[0];
        assert_eq!(l.at_ms, 42);
        assert_eq!(l.app, "sift");
        assert_eq!(l.text, "alert!");
    }
}
