//! The Amulet's internal sensors.
//!
//! The prototype carries "an Analog Devices ADMP510 microphone, an Avago
//! Tech APDS-9008 light sensor, a TI TMP20 temperature sensor, an
//! STMicroelectronics L3GD20H gyroscope and an AD ADXL362 accelerometer"
//! (paper §II-B). This module provides deterministic synthetic readings
//! for each, so on-device apps beyond the detector (fall detection,
//! activity tracking) have data to consume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which internal sensor a reading came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// ADXL362 accelerometer (vector magnitude, g).
    Accelerometer,
    /// L3GD20H gyroscope (angular rate magnitude, °/s).
    Gyroscope,
    /// TMP20 temperature (°C).
    Temperature,
    /// APDS-9008 ambient light (lux).
    Light,
    /// ADMP510 microphone (sound level, dB SPL).
    Microphone,
}

impl SensorKind {
    /// Typical active current draw of the sensor, µA (datasheet class).
    pub fn active_current_ua(self) -> f64 {
        match self {
            SensorKind::Accelerometer => 1.8,
            SensorKind::Gyroscope => 5_000.0,
            SensorKind::Temperature => 4.0,
            SensorKind::Light => 18.0,
            SensorKind::Microphone => 180.0,
        }
    }
}

impl std::fmt::Display for SensorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SensorKind::Accelerometer => "accelerometer",
            SensorKind::Gyroscope => "gyroscope",
            SensorKind::Temperature => "temperature",
            SensorKind::Light => "light",
            SensorKind::Microphone => "microphone",
        };
        write!(f, "{name}")
    }
}

/// One sensor reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// Originating sensor.
    pub sensor: SensorKind,
    /// Reading value in the sensor's natural unit.
    pub value: f64,
    /// Sample time, ms.
    pub at_ms: u64,
}

/// Wearer activity regime driving the accelerometer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// At rest: gravity plus sensor noise.
    Resting,
    /// Walking: periodic ~2 Hz step accents.
    Walking,
    /// A fall event: a large transient spike followed by stillness.
    Falling,
}

/// Deterministic synthetic accelerometer.
#[derive(Debug, Clone)]
pub struct Accelerometer {
    rng: StdRng,
    activity: Activity,
    fall_at_ms: Option<u64>,
}

impl Accelerometer {
    /// New accelerometer in the given regime.
    pub fn new(activity: Activity, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            activity,
            fall_at_ms: None,
        }
    }

    /// Change the wearer's activity; a switch to [`Activity::Falling`]
    /// schedules the impact transient at the next sample.
    pub fn set_activity(&mut self, activity: Activity, now_ms: u64) {
        self.activity = activity;
        if activity == Activity::Falling {
            self.fall_at_ms = Some(now_ms);
        }
    }

    /// Sample the vector magnitude at `now_ms`, in g.
    pub fn sample(&mut self, now_ms: u64) -> SensorReading {
        let noise = self.rng.gen_range(-0.02..0.02);
        let value = match self.activity {
            Activity::Resting => 1.0 + noise,
            Activity::Walking => {
                let phase = now_ms as f64 / 1000.0 * 2.0 * std::f64::consts::TAU;
                1.0 + 0.35 * phase.sin().max(0.0) + noise
            }
            Activity::Falling => {
                let dt = now_ms.saturating_sub(self.fall_at_ms.unwrap_or(now_ms));
                if dt < 300 {
                    // Impact transient.
                    4.5 + self.rng.gen_range(-0.5..0.5)
                } else {
                    // Post-fall stillness.
                    1.0 + noise * 0.2
                }
            }
        };
        SensorReading {
            sensor: SensorKind::Accelerometer,
            value,
            at_ms: now_ms,
        }
    }
}

/// Slow environmental sensors bundled into one deterministic source.
#[derive(Debug, Clone)]
pub struct EnvironmentSensors {
    rng: StdRng,
}

impl EnvironmentSensors {
    /// New environment-sensor bundle.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Skin-adjacent temperature, °C.
    pub fn temperature(&mut self, at_ms: u64) -> SensorReading {
        SensorReading {
            sensor: SensorKind::Temperature,
            value: 32.5 + self.rng.gen_range(-0.3..0.3),
            at_ms,
        }
    }

    /// Ambient light, lux (day/night cycle over 24 h).
    pub fn light(&mut self, at_ms: u64) -> SensorReading {
        let hour = (at_ms as f64 / 3_600_000.0) % 24.0;
        let daylight = ((hour - 6.0) / 12.0 * std::f64::consts::PI).sin().max(0.0);
        SensorReading {
            sensor: SensorKind::Light,
            value: 5.0 + 800.0 * daylight + self.rng.gen_range(0.0..20.0),
            at_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resting_magnitude_near_one_g() {
        let mut acc = Accelerometer::new(Activity::Resting, 1);
        for t in 0..100 {
            let r = acc.sample(t * 20);
            assert!((r.value - 1.0).abs() < 0.05, "{r:?}");
            assert_eq!(r.sensor, SensorKind::Accelerometer);
        }
    }

    #[test]
    fn walking_oscillates_above_rest() {
        let mut acc = Accelerometer::new(Activity::Walking, 2);
        let values: Vec<f64> = (0..200).map(|t| acc.sample(t * 20).value).collect();
        let hi = values.iter().cloned().fold(f64::MIN, f64::max);
        let lo = values.iter().cloned().fold(f64::MAX, f64::min);
        assert!(hi > 1.2, "hi {hi}");
        assert!(hi - lo > 0.2, "span {}", hi - lo);
    }

    #[test]
    fn fall_produces_spike_then_stillness() {
        let mut acc = Accelerometer::new(Activity::Resting, 3);
        acc.set_activity(Activity::Falling, 1000);
        let impact = acc.sample(1100);
        assert!(impact.value > 3.0, "{impact:?}");
        let after = acc.sample(2000);
        assert!((after.value - 1.0).abs() < 0.05, "{after:?}");
    }

    #[test]
    fn determinism() {
        let run = |seed| -> Vec<f64> {
            let mut a = Accelerometer::new(Activity::Walking, seed);
            (0..50).map(|t| a.sample(t * 20).value).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn environment_sensors_plausible() {
        let mut env = EnvironmentSensors::new(4);
        let t = env.temperature(0);
        assert!((30.0..35.0).contains(&t.value));
        let midnight = env.light(0).value;
        let noon = env.light(12 * 3_600_000).value;
        assert!(noon > midnight + 100.0, "noon {noon} midnight {midnight}");
    }

    #[test]
    fn sensor_metadata() {
        assert_eq!(SensorKind::Gyroscope.to_string(), "gyroscope");
        assert!(SensorKind::Gyroscope.active_current_ua() > SensorKind::Accelerometer.active_current_ua());
    }
}
