//! FRAM/SRAM accounting and the platform's array restrictions.
//!
//! The MSP430FR5989 unifies code and data in 128 KB of FRAM and has just
//! 2 KB of SRAM for the stack. AmuletOS additionally restricts arrays:
//! the paper's Insight #1 reports that large arrays and 2-D arrays are
//! rejected. [`MemoryModel`] tracks region usage for the firmware
//! toolchain's static checks; [`Arena`] provides a peak-tracking
//! allocator apps use to model their runtime buffers.

use crate::{AmuletError, FRAM_BYTES, SRAM_BYTES};

/// Maximum elements AmuletOS allows in a single array. The paper's
/// authors could not allocate beyond their two 1080-element float arrays;
/// the limit here gives exactly that much headroom.
pub const MAX_ARRAY_ELEMS: usize = 1100;

/// One memory region with a fixed capacity and a usage high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    name: &'static str,
    capacity: usize,
    used: usize,
    peak: usize,
}

impl Region {
    /// Create a region of `capacity` bytes.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        Self {
            name,
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Reserve `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::OutOfMemory`] when the region cannot fit
    /// the request.
    pub fn reserve(&mut self, bytes: usize) -> Result<(), AmuletError> {
        if self.used + bytes > self.capacity {
            return Err(AmuletError::OutOfMemory {
                region: self.name,
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Release `bytes` (saturating at zero).
    pub fn release(&mut self, bytes: usize) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark since creation.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }
}

/// The device's two memory regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryModel {
    fram: Region,
    sram: Region,
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self::new(FRAM_BYTES, SRAM_BYTES)
    }
}

impl MemoryModel {
    /// Create a model with explicit capacities (tests shrink them).
    pub fn new(fram_bytes: usize, sram_bytes: usize) -> Self {
        Self {
            fram: Region::new("fram", fram_bytes),
            sram: Region::new("sram", sram_bytes),
        }
    }

    /// The FRAM region.
    pub fn fram(&self) -> &Region {
        &self.fram
    }

    /// The FRAM region, mutably.
    pub fn fram_mut(&mut self) -> &mut Region {
        &mut self.fram
    }

    /// The SRAM region.
    pub fn sram(&self) -> &Region {
        &self.sram
    }

    /// The SRAM region, mutably.
    pub fn sram_mut(&mut self) -> &mut Region {
        &mut self.sram
    }

    /// Validate an array allocation request of `elems` elements of
    /// `elem_bytes` each against the platform's rules, then reserve it
    /// in FRAM (arrays live in FRAM; SRAM is stack only).
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::ArrayTooLarge`] beyond
    /// [`MAX_ARRAY_ELEMS`], or [`AmuletError::OutOfMemory`].
    pub fn alloc_array(&mut self, elems: usize, elem_bytes: usize) -> Result<(), AmuletError> {
        if elems > MAX_ARRAY_ELEMS {
            return Err(AmuletError::ArrayTooLarge {
                requested: elems,
                max: MAX_ARRAY_ELEMS,
            });
        }
        self.fram.reserve(elems * elem_bytes)
    }
}

/// A bump arena with peak tracking, modelling an app's scratch memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arena {
    capacity: usize,
    used: usize,
    peak: usize,
}

impl Arena {
    /// Create an arena of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Allocate `bytes`, returning the offset.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::OutOfMemory`] when full.
    pub fn alloc(&mut self, bytes: usize) -> Result<usize, AmuletError> {
        if self.used + bytes > self.capacity {
            return Err(AmuletError::OutOfMemory {
                region: "arena",
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        let offset = self.used;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(offset)
    }

    /// Reset the arena (end of a run-to-completion step); the peak
    /// persists.
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Current bytes in use.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark since creation.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_reserve_release_and_peak() {
        let mut r = Region::new("fram", 100);
        r.reserve(60).unwrap();
        r.release(20);
        assert_eq!(r.used(), 40);
        assert_eq!(r.peak(), 60);
        assert_eq!(r.available(), 60);
        r.reserve(60).unwrap();
        assert_eq!(r.peak(), 100);
    }

    #[test]
    fn region_overflow_errors_without_mutation() {
        let mut r = Region::new("sram", 10);
        r.reserve(8).unwrap();
        let err = r.reserve(3).unwrap_err();
        assert_eq!(
            err,
            AmuletError::OutOfMemory {
                region: "sram",
                requested: 3,
                available: 2
            }
        );
        assert_eq!(r.used(), 8);
    }

    #[test]
    fn release_saturates() {
        let mut r = Region::new("fram", 10);
        r.reserve(4).unwrap();
        r.release(100);
        assert_eq!(r.used(), 0);
    }

    #[test]
    fn default_model_has_device_capacities() {
        let m = MemoryModel::default();
        assert_eq!(m.fram().capacity(), 128 * 1024);
        assert_eq!(m.sram().capacity(), 2 * 1024);
    }

    #[test]
    fn papers_detector_arrays_fit_exactly() {
        // "the 3 seconds ECG and ABP data had to be stored into two
        // floating type arrays (each has a size of 1080)".
        let mut m = MemoryModel::default();
        m.alloc_array(1080, 4).unwrap();
        m.alloc_array(1080, 4).unwrap();
        assert_eq!(m.fram().used(), 2 * 1080 * 4);
    }

    #[test]
    fn oversized_array_rejected() {
        let mut m = MemoryModel::default();
        let err = m.alloc_array(MAX_ARRAY_ELEMS + 1, 4).unwrap_err();
        assert!(matches!(err, AmuletError::ArrayTooLarge { .. }));
    }

    #[test]
    fn arena_alloc_reset_peak() {
        let mut a = Arena::new(64);
        assert_eq!(a.alloc(16).unwrap(), 0);
        assert_eq!(a.alloc(16).unwrap(), 16);
        assert_eq!(a.peak(), 32);
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.peak(), 32, "peak survives reset");
        a.alloc(64).unwrap();
        assert_eq!(a.peak(), 64);
    }

    #[test]
    fn arena_overflow() {
        let mut a = Arena::new(8);
        a.alloc(8).unwrap();
        assert!(a.alloc(1).is_err());
        assert_eq!(a.capacity(), 8);
    }
}
