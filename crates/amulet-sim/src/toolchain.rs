//! The Amulet Firmware Toolchain's compile-time predictive analysis.
//!
//! On the real platform, applications "are merged together in a single QM
//! file, which is then converted to C … compiled and linked" and the
//! toolchain performs "compile-time predictive analysis of resource
//! usage, including energy and memory" (paper §II-B). [`FirmwareImage`]
//! models the result: assembling an image runs the static checks and
//! fails — before anything is "flashed" — if the apps cannot fit the
//! device.

use crate::memory::MemoryModel;
use crate::profiler::{AppResourceSpec, ResourceProfile, ResourceProfiler};
use crate::{AmuletError, FRAM_BYTES, SRAM_BYTES};

/// A validated firmware image ready to "flash" into the OS.
#[derive(Debug, Clone, PartialEq)]
pub struct FirmwareImage {
    specs: Vec<AppResourceSpec>,
    profile: ResourceProfile,
}

impl FirmwareImage {
    /// Assemble and statically check an image containing `specs`.
    ///
    /// Checks performed (all at "compile time"):
    ///
    /// 1. total FRAM (system + libraries + apps) fits the 128 KB part,
    /// 2. SRAM peak (system + deepest app) fits 2 KB,
    /// 3. app names are unique,
    /// 4. every app's duty cycle is feasible (`cycles_per_period` must
    ///    fit its period),
    /// 5. the predicted lifetime is positive.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::StaticCheckFailed`] naming the first
    /// violated budget, or [`AmuletError::DuplicateApp`].
    pub fn build(
        specs: Vec<AppResourceSpec>,
        profiler: &ResourceProfiler,
    ) -> Result<Self, AmuletError> {
        for (i, a) in specs.iter().enumerate() {
            if specs[..i].iter().any(|b| b.name == a.name) {
                return Err(AmuletError::DuplicateApp {
                    name: a.name.clone(),
                });
            }
        }
        let refs: Vec<&AppResourceSpec> = specs.iter().collect();
        let profile = profiler.profile(&refs);

        let fram_total = profile.system_fram_bytes + profile.app_fram_bytes;
        if fram_total > FRAM_BYTES {
            return Err(AmuletError::StaticCheckFailed {
                reason: format!(
                    "image needs {fram_total} B of FRAM but the device has {FRAM_BYTES} B"
                ),
            });
        }
        let sram_total = profile.system_sram_bytes + profile.app_sram_bytes;
        if sram_total > SRAM_BYTES {
            return Err(AmuletError::StaticCheckFailed {
                reason: format!(
                    "peak SRAM {sram_total} B exceeds the device's {SRAM_BYTES} B"
                ),
            });
        }
        for a in &specs {
            if a.cycles_per_period / crate::CPU_HZ > a.period_s {
                return Err(AmuletError::StaticCheckFailed {
                    reason: format!(
                        "app `{}` cannot finish its work within its {}s period",
                        a.name, a.period_s
                    ),
                });
            }
        }
        if !profile.lifetime_days.is_finite() || profile.lifetime_days <= 0.0 {
            return Err(AmuletError::StaticCheckFailed {
                reason: "predicted lifetime is not positive".to_string(),
            });
        }
        Ok(Self { specs, profile })
    }

    /// The specs baked into this image.
    pub fn specs(&self) -> &[AppResourceSpec] {
        &self.specs
    }

    /// The compile-time resource prediction.
    pub fn profile(&self) -> &ResourceProfile {
        &self.profile
    }

    /// Reserve the image's FRAM/SRAM in a memory model (the "flash"
    /// step).
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::OutOfMemory`] if the model cannot fit the
    /// image (possible when flashing onto a model with prior
    /// reservations).
    pub fn flash(&self, memory: &mut MemoryModel) -> Result<(), AmuletError> {
        memory
            .fram_mut()
            .reserve(self.profile.system_fram_bytes + self.profile.app_fram_bytes)?;
        memory
            .sram_mut()
            .reserve(self.profile.system_sram_bytes + self.profile.app_sram_bytes)?;
        Ok(())
    }

    /// Reserve only the image's app footprint, for add-on installs onto
    /// a device whose system image is already resident
    /// ([`crate::os::AmuletOs::install_addon`]).
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::OutOfMemory`] if the apps do not fit next
    /// to the existing reservations.
    pub fn flash_addon(&self, memory: &mut MemoryModel) -> Result<(), AmuletError> {
        memory.fram_mut().reserve(self.profile.app_fram_bytes)?;
        memory.sram_mut().reserve(self.profile.app_sram_bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{sift_app_spec, ResourceProfiler};
    use sift::config::SiftConfig;
    use sift::features::Version;

    fn spec(v: Version) -> AppResourceSpec {
        sift_app_spec(v, &SiftConfig::default(), 112)
    }

    #[test]
    fn sift_image_passes_static_checks() {
        let profiler = ResourceProfiler::default();
        for v in Version::ALL {
            let img = FirmwareImage::build(vec![spec(v)], &profiler).unwrap();
            assert_eq!(img.specs().len(), 1);
            assert!(img.profile().lifetime_days > 10.0);
        }
    }

    #[test]
    fn image_flashes_into_device_memory() {
        let profiler = ResourceProfiler::default();
        let img = FirmwareImage::build(vec![spec(Version::Original)], &profiler).unwrap();
        let mut mem = MemoryModel::default();
        img.flash(&mut mem).unwrap();
        assert!(mem.fram().used() > 70_000);
        assert!(mem.sram().used() < 2_048);
    }

    #[test]
    fn oversized_app_rejected_at_compile_time() {
        let profiler = ResourceProfiler::default();
        let mut big = spec(Version::Original);
        big.fram_data_bytes = 200_000;
        let err = FirmwareImage::build(vec![big], &profiler).unwrap_err();
        assert!(matches!(err, AmuletError::StaticCheckFailed { .. }));
    }

    #[test]
    fn sram_hog_rejected() {
        let profiler = ResourceProfiler::default();
        let mut hog = spec(Version::Original);
        hog.sram_peak_bytes = 4_096;
        assert!(matches!(
            FirmwareImage::build(vec![hog], &profiler),
            Err(AmuletError::StaticCheckFailed { .. })
        ));
    }

    #[test]
    fn infeasible_duty_cycle_rejected() {
        let profiler = ResourceProfiler::default();
        let mut busy = spec(Version::Original);
        busy.period_s = 0.01; // cannot run 150 ms of work every 10 ms
        assert!(matches!(
            FirmwareImage::build(vec![busy], &profiler),
            Err(AmuletError::StaticCheckFailed { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let profiler = ResourceProfiler::default();
        let a = spec(Version::Original);
        let b = spec(Version::Original);
        assert!(matches!(
            FirmwareImage::build(vec![a, b], &profiler),
            Err(AmuletError::DuplicateApp { .. })
        ));
    }

    #[test]
    fn multi_app_image_fits() {
        let profiler = ResourceProfiler::default();
        let a = spec(Version::Simplified);
        let mut b = spec(Version::Reduced);
        b.name = "sift-standby".into();
        let img = FirmwareImage::build(vec![a, b], &profiler).unwrap();
        assert_eq!(img.specs().len(), 2);
    }
}
