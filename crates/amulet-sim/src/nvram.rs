//! Crash-consistent checkpoint storage in simulated FRAM.
//!
//! The MSP430FR5989's FRAM is nonvolatile: a brownout wipes SRAM and
//! resets the QM state machines, but bytes written to FRAM survive the
//! power cycle. This module models a small reserved NVRAM region at the
//! top of the memory map holding an **A/B double-buffered,
//! generation-numbered, CRC-guarded** checkpoint, so the recovery path
//! can resume detection after a reboot without re-enrollment.
//!
//! Commit protocol (per slot, all integers little-endian):
//!
//! | offset | bytes | field |
//! |--------|-------|------------------------------------|
//! | 0      | 4     | magic `0x4B50_4331` (`"1CPK"`)     |
//! | 4      | 4     | generation number                  |
//! | 8      | 4     | payload length                     |
//! | 12     | 4     | CRC-32 over generation‖length‖payload |
//! | 16     | …     | payload                            |
//!
//! A commit targets the slot that does **not** hold the newest valid
//! generation and writes, in order: (1) zero the magic word, (2) the
//! payload, (3) the generation, (4) the length, (5) the CRC, (6) the
//! magic word last. Power loss at *any* byte offset of that sequence
//! leaves the slot either all-zero in the header (empty) or without a
//! complete magic word / with a failing CRC (invalid) — every magic
//! byte is nonzero, so a partially (re)written magic word can never
//! match — and the previous generation in the other slot stays intact.
//! [`CheckpointStore::restore`] therefore always returns the newest
//! checkpoint that passes its CRC, or reports corruption; it can never
//! return torn or bit-rotted bytes as valid.
//!
//! This module models code inside the power-fail window, so it follows
//! the embedded profile (no heap, no panics, no floats, no unchecked
//! indexing) — certified by the analyzer's `ckpt-embedded-profile`
//! rule.

use crate::AmuletError;

/// Size of the reserved checkpoint region, bytes (two slots).
pub const NVRAM_BYTES: usize = 4096;

/// Size of one checkpoint slot, bytes.
pub const SLOT_BYTES: usize = NVRAM_BYTES / 2;

/// Fixed per-slot header: magic + generation + length + CRC.
pub const HEADER_BYTES: usize = 16;

/// Largest payload one slot can hold.
pub const MAX_PAYLOAD_BYTES: usize = SLOT_BYTES - HEADER_BYTES;

/// Slot magic word (`"1CPK"` little-endian). Every byte is nonzero so
/// that a torn magic write — which proceeds low byte first over a
/// previously zeroed field — can never reconstruct a valid magic.
pub const MAGIC: u32 = 0x4B50_4331;

/// CRC-32 (IEEE, reflected, polynomial `0xEDB8_8320`) over a byte
/// iterator. Bitwise, table-free: the device would trade 1 KB of FRAM
/// for the lookup table; the simulator keeps the footprint honest.
pub fn crc32<'a, I>(bytes: I) -> u32
where
    I: IntoIterator<Item = &'a u8>,
{
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        let mut k = 0;
        while k < 8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
    }
    !crc
}

/// Read a little-endian `u32` at `at` (zero-padded past the end).
fn read_u32(region: &[u8], at: usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    for &b in region.iter().skip(at).take(4) {
        v |= u32::from(b) << shift;
        shift += 8;
    }
    v
}

/// Write `src` at `at`, consuming one unit of `budget` per byte and
/// stopping silently when the budget runs out — this is the torn-write
/// injection point: a power loss mid-commit is "the budget ran out".
fn write_bytes(region: &mut [u8], at: usize, src: &[u8], budget: &mut usize) {
    for (dst, &b) in region.iter_mut().skip(at).zip(src.iter()) {
        if *budget == 0 {
            return;
        }
        *dst = b;
        *budget -= 1;
    }
}

/// Classification of one slot's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Header is all zero: never written (or a commit died immediately).
    Empty,
    /// Header present but magic, length, or CRC does not check out.
    Invalid,
    /// Complete, CRC-verified checkpoint.
    Valid { generation: u32, len: usize },
}

/// Result of [`CheckpointStore::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Restore<'a> {
    /// No checkpoint was ever committed.
    Empty,
    /// Both slots are corrupt (or one corrupt, one never written):
    /// nothing trustworthy to resume from.
    Corrupt,
    /// The newest CRC-verified checkpoint.
    Valid {
        /// Generation number of the surviving checkpoint.
        generation: u32,
        /// Its payload bytes, exactly as committed.
        payload: &'a [u8],
        /// True when the *other* slot held a torn or bit-rotted commit
        /// that was detected and discarded — i.e. this restore is a
        /// rollback to the previous generation.
        rolled_back: bool,
    },
}

/// Running commit counters (diagnostics; not part of any digest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointStats {
    /// Commits attempted (complete and torn).
    pub commits: u64,
    /// Commits deliberately torn by fault injection.
    pub torn_commits: u64,
}

/// The A/B checkpoint store over the reserved FRAM region.
#[derive(Clone)]
pub struct CheckpointStore {
    region: [u8; NVRAM_BYTES],
    next_generation: u32,
    stats: CheckpointStats,
}

impl core::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("next_generation", &self.next_generation)
            .field("slot_a", &self.slot_state(0))
            .field("slot_b", &self.slot_state(1))
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for CheckpointStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CheckpointStore {
    /// A blank store (factory-fresh FRAM, both slots empty).
    pub fn new() -> Self {
        Self {
            region: [0; NVRAM_BYTES],
            next_generation: 1,
            stats: CheckpointStats::default(),
        }
    }

    /// Commit counters.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Total bytes written by a complete commit of `payload_len` bytes:
    /// 4 (magic zeroing) + payload + 12 (generation, length, CRC) + 4
    /// (magic). Torn-write injection cuts are offsets into this range.
    pub const fn commit_sequence_len(payload_len: usize) -> usize {
        payload_len + HEADER_BYTES + 4
    }

    /// Commit `payload` as the next generation, returning the
    /// generation number written.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::CheckpointTooLarge`] when the payload
    /// exceeds [`MAX_PAYLOAD_BYTES`]; nothing is written.
    pub fn commit(&mut self, payload: &[u8]) -> Result<u32, AmuletError> {
        self.commit_inner(payload, usize::MAX)
    }

    /// Commit `payload` but lose power after exactly `cut_after_bytes`
    /// bytes of the write sequence have reached FRAM (fault injection).
    /// The generation counter still advances: the device believed it
    /// was committing.
    ///
    /// # Errors
    ///
    /// Returns [`AmuletError::CheckpointTooLarge`] exactly as
    /// [`CheckpointStore::commit`] does.
    pub fn commit_torn(
        &mut self,
        payload: &[u8],
        cut_after_bytes: usize,
    ) -> Result<u32, AmuletError> {
        let gen = self.commit_inner(payload, cut_after_bytes)?;
        self.stats.torn_commits += 1;
        Ok(gen)
    }

    fn commit_inner(&mut self, payload: &[u8], mut budget: usize) -> Result<u32, AmuletError> {
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(AmuletError::CheckpointTooLarge {
                requested: payload.len(),
                max: MAX_PAYLOAD_BYTES,
            });
        }
        let generation = self.next_generation;
        self.next_generation = self.next_generation.wrapping_add(1);
        self.stats.commits += 1;
        let base = self.target_slot() * SLOT_BYTES;
        let gen_bytes = generation.to_le_bytes();
        let len_bytes = (payload.len() as u32).to_le_bytes();
        let crc = crc32(gen_bytes.iter().chain(len_bytes.iter()).chain(payload.iter()));
        // The ordered write sequence; see the module docs for why any
        // prefix of it leaves the slot detectably incomplete.
        write_bytes(&mut self.region, base, &[0; 4], &mut budget);
        write_bytes(&mut self.region, base + HEADER_BYTES, payload, &mut budget);
        write_bytes(&mut self.region, base + 4, &gen_bytes, &mut budget);
        write_bytes(&mut self.region, base + 8, &len_bytes, &mut budget);
        write_bytes(&mut self.region, base + 12, &crc.to_le_bytes(), &mut budget);
        write_bytes(&mut self.region, base, &MAGIC.to_le_bytes(), &mut budget);
        Ok(generation)
    }

    /// The newest checkpoint that passes its CRC, if any. Pure: restore
    /// never writes, so a failed recovery can be retried or abandoned
    /// without further state loss.
    pub fn restore(&self) -> Restore<'_> {
        let a = self.slot_state(0);
        let b = self.slot_state(1);
        let invalid = matches!(a, SlotState::Invalid) || matches!(b, SlotState::Invalid);
        let best = match (a, b) {
            (
                SlotState::Valid { generation: ga, len: la },
                SlotState::Valid { generation: gb, len: lb },
            ) => {
                if ga >= gb {
                    Some((0, ga, la))
                } else {
                    Some((1, gb, lb))
                }
            }
            (SlotState::Valid { generation, len }, _) => Some((0, generation, len)),
            (_, SlotState::Valid { generation, len }) => Some((1, generation, len)),
            _ => None,
        };
        match best {
            Some((slot, generation, len)) => {
                let start = slot * SLOT_BYTES + HEADER_BYTES;
                let payload = self.region.get(start..start + len).unwrap_or(&[]);
                Restore::Valid {
                    generation,
                    payload,
                    rolled_back: invalid,
                }
            }
            None if invalid => Restore::Corrupt,
            None => Restore::Empty,
        }
    }

    /// Flip one bit of the raw region (bit-rot fault injection).
    /// Out-of-range byte offsets are ignored; the bit index wraps
    /// modulo 8.
    pub fn flip_bit(&mut self, byte: usize, bit: u8) {
        if let Some(b) = self.region.get_mut(byte) {
            *b ^= 1u8 << (bit & 7);
        }
    }

    /// Which slot the next commit overwrites: the one *not* holding the
    /// newest valid generation, so the newest survivor is never put at
    /// risk by a commit.
    fn target_slot(&self) -> usize {
        match (self.slot_state(0), self.slot_state(1)) {
            (
                SlotState::Valid { generation: ga, .. },
                SlotState::Valid { generation: gb, .. },
            ) if ga >= gb => 1,
            (SlotState::Valid { .. }, SlotState::Valid { .. }) => 0,
            (SlotState::Valid { .. }, _) => 1,
            (_, SlotState::Valid { .. }) => 0,
            _ => 0,
        }
    }

    fn slot_state(&self, slot: usize) -> SlotState {
        let base = slot * SLOT_BYTES;
        let header_zero = self
            .region
            .iter()
            .skip(base)
            .take(HEADER_BYTES)
            .all(|&b| b == 0);
        if header_zero {
            return SlotState::Empty;
        }
        if read_u32(&self.region, base) != MAGIC {
            return SlotState::Invalid;
        }
        let generation = read_u32(&self.region, base + 4);
        let len = read_u32(&self.region, base + 8) as usize;
        if len > MAX_PAYLOAD_BYTES {
            return SlotState::Invalid;
        }
        let start = base + HEADER_BYTES;
        let payload = self.region.get(start..start + len).unwrap_or(&[]);
        let gen_bytes = generation.to_le_bytes();
        let len_bytes = (len as u32).to_le_bytes();
        let computed = crc32(gen_bytes.iter().chain(len_bytes.iter()).chain(payload.iter()));
        if computed != read_u32(&self.region, base + 12) {
            return SlotState::Invalid;
        }
        SlotState::Valid { generation, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| tag ^ (i as u8)).collect()
    }

    fn expect_valid(store: &CheckpointStore) -> (u32, Vec<u8>, bool) {
        match store.restore() {
            Restore::Valid {
                generation,
                payload,
                rolled_back,
            } => (generation, payload.to_vec(), rolled_back),
            other => panic!("expected a valid restore, got {other:?}"),
        }
    }

    #[test]
    fn fresh_store_is_empty() {
        let store = CheckpointStore::new();
        assert_eq!(store.restore(), Restore::Empty);
        assert_eq!(store.stats(), CheckpointStats::default());
    }

    #[test]
    fn commit_restore_round_trip() {
        let mut store = CheckpointStore::new();
        let p = payload(0xA5, 100);
        let gen = store.commit(&p).unwrap();
        assert_eq!(gen, 1);
        let (g, bytes, rolled_back) = expect_valid(&store);
        assert_eq!(g, 1);
        assert_eq!(bytes, p);
        assert!(!rolled_back);
    }

    #[test]
    fn commits_alternate_slots_and_keep_the_newest() {
        let mut store = CheckpointStore::new();
        for i in 0..5u8 {
            let p = payload(i, 64 + usize::from(i));
            let gen = store.commit(&p).unwrap();
            assert_eq!(gen, u32::from(i) + 1);
            let (g, bytes, _) = expect_valid(&store);
            assert_eq!(g, gen);
            assert_eq!(bytes, p);
        }
        assert_eq!(store.stats().commits, 5);
    }

    #[test]
    fn empty_payload_commits() {
        let mut store = CheckpointStore::new();
        store.commit(&[]).unwrap();
        let (g, bytes, _) = expect_valid(&store);
        assert_eq!(g, 1);
        assert!(bytes.is_empty());
    }

    #[test]
    fn oversized_payload_rejected_without_write() {
        let mut store = CheckpointStore::new();
        let p = payload(1, MAX_PAYLOAD_BYTES + 1);
        let err = store.commit(&p).unwrap_err();
        assert_eq!(
            err,
            AmuletError::CheckpointTooLarge {
                requested: MAX_PAYLOAD_BYTES + 1,
                max: MAX_PAYLOAD_BYTES
            }
        );
        assert_eq!(store.restore(), Restore::Empty);
        assert_eq!(store.stats().commits, 0);
    }

    #[test]
    fn max_payload_fits() {
        let mut store = CheckpointStore::new();
        let p = payload(7, MAX_PAYLOAD_BYTES);
        store.commit(&p).unwrap();
        let (_, bytes, _) = expect_valid(&store);
        assert_eq!(bytes, p);
    }

    /// The tentpole invariant, exhaustively: a commit torn at *every*
    /// byte offset of the write sequence either leaves the previous
    /// generation restorable or (only at the full length) completes.
    /// No cut point ever yields accepted-but-corrupt bytes.
    #[test]
    fn torn_commit_at_every_offset_rolls_back() {
        let old = payload(0x11, 96);
        let new = payload(0x22, 128);
        let seq = CheckpointStore::commit_sequence_len(new.len());
        for cut in 0..=seq {
            let mut store = CheckpointStore::new();
            store.commit(&old).unwrap();
            store.commit_torn(&new, cut).unwrap();
            let (g, bytes, rolled_back) = expect_valid(&store);
            if cut == seq {
                assert_eq!(g, 2, "cut {cut}: full sequence must commit");
                assert_eq!(bytes, new);
                assert!(!rolled_back);
            } else {
                assert_eq!(g, 1, "cut {cut}: must roll back to generation 1");
                assert_eq!(bytes, old, "cut {cut}: old payload must survive");
                // A cut inside the magic-zeroing or payload phase leaves
                // the target header all zero — indistinguishable from an
                // empty slot; once header bytes land, the slot is a
                // detected (rolled-back) torn commit.
                assert_eq!(rolled_back, cut > 4 + new.len(), "cut {cut}");
            }
        }
    }

    /// Same sweep with both slots populated: tearing generation 3 (which
    /// targets the slot holding generation 1) must always fall back to
    /// generation 2, never resurrect generation 1's bytes as newest.
    #[test]
    fn torn_third_commit_falls_back_to_second() {
        let a = payload(0x31, 80);
        let b = payload(0x32, 70);
        let c = payload(0x33, 90);
        let seq = CheckpointStore::commit_sequence_len(c.len());
        for cut in 0..=seq {
            let mut store = CheckpointStore::new();
            store.commit(&a).unwrap();
            store.commit(&b).unwrap();
            store.commit_torn(&c, cut).unwrap();
            let (g, bytes, _) = expect_valid(&store);
            if cut == seq {
                assert_eq!((g, &bytes), (3, &c), "cut {cut}");
            } else {
                assert_eq!((g, &bytes), (2, &b), "cut {cut}");
            }
        }
    }

    #[test]
    fn torn_first_commit_reports_corrupt_or_empty_never_valid() {
        let p = payload(0x44, 50);
        let seq = CheckpointStore::commit_sequence_len(p.len());
        for cut in 0..seq {
            let mut store = CheckpointStore::new();
            store.commit_torn(&p, cut).unwrap();
            match store.restore() {
                Restore::Empty | Restore::Corrupt => {}
                Restore::Valid { .. } => {
                    panic!("cut {cut}: torn first commit must never restore as valid")
                }
            }
        }
    }

    /// Bit-rot anywhere in the newest slot is detected by CRC and rolls
    /// back to the previous generation.
    #[test]
    fn bit_rot_in_newest_slot_rolls_back() {
        let old = payload(0x55, 64);
        let new = payload(0x66, 64);
        let mut store = CheckpointStore::new();
        store.commit(&old).unwrap(); // slot 0, gen 1
        store.commit(&new).unwrap(); // slot 1, gen 2
        // Flip a payload bit of the newest checkpoint (slot 1).
        store.flip_bit(SLOT_BYTES + HEADER_BYTES + 10, 3);
        let (g, bytes, rolled_back) = expect_valid(&store);
        assert_eq!(g, 1);
        assert_eq!(bytes, old);
        assert!(rolled_back);
    }

    #[test]
    fn bit_rot_in_both_slots_is_corrupt_not_garbage() {
        let mut store = CheckpointStore::new();
        store.commit(&payload(0x77, 32)).unwrap();
        store.commit(&payload(0x78, 32)).unwrap();
        store.flip_bit(HEADER_BYTES + 1, 0);
        store.flip_bit(SLOT_BYTES + HEADER_BYTES + 1, 0);
        assert_eq!(store.restore(), Restore::Corrupt);
    }

    #[test]
    fn bit_rot_out_of_range_is_ignored() {
        let mut store = CheckpointStore::new();
        store.commit(&payload(0x79, 16)).unwrap();
        store.flip_bit(NVRAM_BYTES + 100, 0);
        let (g, _, rolled_back) = expect_valid(&store);
        assert_eq!(g, 1);
        assert!(!rolled_back);
    }

    #[test]
    fn recommit_after_torn_commit_recovers_the_slot() {
        let mut store = CheckpointStore::new();
        store.commit(&payload(1, 40)).unwrap();
        // Cut mid-header (after the payload phase) so the tear is
        // detectable, not just an empty slot.
        store.commit_torn(&payload(2, 40), 4 + 40 + 6).unwrap();
        let (g, _, rolled_back) = expect_valid(&store);
        assert_eq!(g, 1);
        assert!(rolled_back);
        // The next commit reuses the torn slot (the valid survivor is
        // never the target) and succeeds.
        store.commit(&payload(3, 40)).unwrap();
        let (g, bytes, rolled_back) = expect_valid(&store);
        assert_eq!(g, 3);
        assert_eq!(bytes, payload(3, 40));
        assert!(!rolled_back);
        assert_eq!(store.stats().torn_commits, 1);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789".iter()), 0xCBF4_3926);
        assert_eq!(crc32([].iter()), 0);
    }
}
