//! The SIFT detector as an AmuletOS application.
//!
//! Paper §III: "each version of our detector consists of three states:
//! (1) *PeaksDataCheck state*; (2) *FeatureExtraction state*; (3) and
//! *MLClassifier state*." The states are genuine QM states here: each
//! stage runs in its own run-to-completion step, chained through
//! self-posted signals, exactly like the generated QM code on the
//! device. Every stage charges its cycle cost from [`crate::costs`] to
//! the battery meter.

use crate::costs::{detector_cycles, tsetlin_classifier_cycles, OpCosts, StageCycles};
use crate::display::Severity;
use crate::event::AmuletEvent;
use crate::machine::{App, AppContext};
use crate::profiler::{sift_app_spec, AppResourceSpec};
use ml::{BackendKind, DetectorBackend, DetectorModel, Label};
use sift::config::SiftConfig;
use sift::features::Version;
use sift::flavor::extract_amulet_f32;
use sift::snippet::Snippet;
use sift::SiftError;

/// Self-posted signal: snippet checked, run feature extraction.
pub const SIG_EXTRACT: u32 = 0x51F7_0010;
/// Self-posted signal: features ready, run the classifier.
pub const SIG_CLASSIFY: u32 = 0x51F7_0011;

/// Detector state (the three QM states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    PeaksDataCheck,
    FeatureExtraction,
    MlClassifier,
}

/// Running statistics of the detector app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiftAppStats {
    /// Windows fully processed.
    pub windows: u64,
    /// Alerts raised (positive classifications).
    pub alerts: u64,
    /// Windows rejected in PeaksDataCheck (malformed/degenerate).
    pub rejected: u64,
}

/// The detector application.
pub struct SiftApp {
    name: String,
    version: Version,
    model: DetectorModel,
    config: SiftConfig,
    costs: OpCosts,
    state: State,
    pending_snippet: Option<Snippet>,
    pending_features: Option<Vec<f32>>,
    pending_precomputed: Option<Vec<f32>>,
    stats: SiftAppStats,
}

impl std::fmt::Debug for SiftApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiftApp")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("state", &self.current_state())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SiftApp {
    /// Create the app from a deployed (translated) model of any
    /// registered backend family. SVM-backed apps keep the historical
    /// `sift-{version}` name; other backends register as
    /// `{backend}-{version}` so an SVM app and its replacement never
    /// collide in the OS app table.
    ///
    /// # Errors
    ///
    /// Returns [`SiftError::InvalidConfig`] if the model dimension does
    /// not match the version's feature count or the config is invalid.
    pub fn new(
        version: Version,
        model: impl Into<DetectorModel>,
        config: SiftConfig,
    ) -> Result<Self, SiftError> {
        config.validate()?;
        let model = model.into();
        if model.dim() != version.feature_count() {
            return Err(SiftError::InvalidConfig {
                reason: "model dimension does not match detector version",
            });
        }
        // lint:allow(embedded-no-heap-alloc, host-side app registration label)
        let name = match model.kind() {
            BackendKind::Svm => format!("sift-{version}"),
            BackendKind::Tsetlin => format!("tsetlin-{version}"),
        };
        Ok(Self {
            name,
            version,
            model,
            config,
            costs: OpCosts::default(),
            state: State::PeaksDataCheck,
            pending_snippet: None,
            pending_features: None,
            pending_precomputed: None,
            stats: SiftAppStats::default(),
        })
    }

    /// The detector version this app runs.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The deployed model's backend family.
    pub fn backend(&self) -> BackendKind {
        self.model.kind()
    }

    /// Running statistics.
    pub fn stats(&self) -> SiftAppStats {
        self.stats
    }

    fn stage_cycles(&self) -> StageCycles {
        let mut cycles = detector_cycles(self.version, &self.config, &self.costs, 4.0);
        if let Some(tm) = self.model.as_tsetlin() {
            cycles.ml_classifier = tsetlin_classifier_cycles(tm.dim(), tm.pairs(), &self.costs);
        }
        cycles
    }
}

impl App for SiftApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn resource_spec(&self) -> AppResourceSpec {
        let mut spec = sift_app_spec(self.version, &self.config, self.model.footprint_bytes());
        // Non-SVM backends keep the same pipeline spec but register
        // under their own name and carry their own classifier cycles.
        spec.name = self.name.clone();
        spec.cycles_per_period = self.stage_cycles().total();
        spec
    }

    fn current_state(&self) -> &'static str {
        match self.state {
            State::PeaksDataCheck => "PeaksDataCheck",
            State::FeatureExtraction => "FeatureExtraction",
            State::MlClassifier => "MLClassifier",
        }
    }

    // lint:allow(embedded-no-heap-alloc, display strings render on the host; device firmware writes a fixed screen buffer)
    fn handle(&mut self, event: &AmuletEvent, ctx: &mut AppContext<'_>) {
        match (self.state, event) {
            (
                State::PeaksDataCheck,
                AmuletEvent::SnippetReady(snippet) | AmuletEvent::SnippetScored(snippet, _),
            ) => {
                ctx.charge_stage(telemetry::Stage::PeakDetection, self.stage_cycles().peaks_data_check);
                if snippet.len() != self.config.window_samples() {
                    self.stats.rejected += 1;
                    ctx.display(Severity::Debug, "snippet length mismatch; dropped");
                    return;
                }
                ctx.display(
                    Severity::Info,
                    format!("ecg/abp window ({} samples)", snippet.len()),
                );
                // Reuse station-extracted features when their shape
                // matches this detector's version (bit-identical to
                // extracting here: same function, same input, same
                // config at the station). A mismatched shape — e.g. an
                // uplink version differing from a reflashed detector —
                // falls back to extracting from the snippet.
                self.pending_precomputed = match event {
                    AmuletEvent::SnippetScored(_, features)
                        if features.len() == self.version.feature_count() =>
                    {
                        Some(features.clone())
                    }
                    _ => None,
                };
                if self.pending_precomputed.is_some() {
                    self.pending_snippet = None;
                } else {
                    self.pending_snippet = Some(snippet.clone());
                }
                self.state = State::FeatureExtraction;
                ctx.post(AmuletEvent::Signal(SIG_EXTRACT));
            }
            (State::FeatureExtraction, AmuletEvent::Signal(sig)) if *sig == SIG_EXTRACT => {
                ctx.charge_stage(
                    telemetry::Stage::FeatureExtraction,
                    self.stage_cycles().feature_extraction,
                );
                // Station-extracted features short-circuit the
                // recomputation (the stage cycles above are still
                // charged — the real device would run the extraction).
                if let Some(features) = self.pending_precomputed.take() {
                    self.pending_features = Some(features);
                    self.state = State::MlClassifier;
                    ctx.post(AmuletEvent::Signal(SIG_CLASSIFY));
                    return;
                }
                // QM invariant: SIG_EXTRACT is only posted after the
                // snippet is latched. Should the state machine ever
                // desynchronize, recover to the idle state — on the
                // device a panic would be a watchdog reset.
                let Some(snippet) = self.pending_snippet.take() else {
                    self.stats.rejected += 1;
                    self.state = State::PeaksDataCheck;
                    return;
                };
                match extract_amulet_f32(self.version, &snippet, &self.config) {
                    Ok(features) => {
                        self.pending_features = Some(features);
                        self.state = State::MlClassifier;
                        ctx.post(AmuletEvent::Signal(SIG_CLASSIFY));
                    }
                    Err(SiftError::DegenerateSignal) => {
                        // A flat-lined channel cannot be genuine: alert
                        // directly and return to the idle state.
                        self.stats.windows += 1;
                        self.stats.alerts += 1;
                        ctx.raise_alert("ECG ALTERED (degenerate signal)");
                        self.state = State::PeaksDataCheck;
                    }
                    Err(_) => {
                        self.stats.rejected += 1;
                        ctx.display(Severity::Debug, "feature extraction failed; dropped");
                        self.state = State::PeaksDataCheck;
                    }
                }
            }
            (State::MlClassifier, AmuletEvent::Signal(sig)) if *sig == SIG_CLASSIFY => {
                ctx.charge_stage(telemetry::Stage::Svm, self.stage_cycles().ml_classifier);
                // Same recovery as FeatureExtraction: never panic over
                // a desynchronized state machine.
                let Some(features) = self.pending_features.take() else {
                    self.stats.rejected += 1;
                    self.state = State::PeaksDataCheck;
                    return;
                };
                let label = self.model.predict_f32(&features);
                self.stats.windows += 1;
                if label == Label::Positive {
                    self.stats.alerts += 1;
                    ctx.raise_alert("ECG ALTERED");
                } else {
                    ctx.display(Severity::Info, "ecg ok");
                }
                self.state = State::PeaksDataCheck;
            }
            // Snippets arriving mid-pipeline are dropped (the device
            // cannot buffer more than one window).
            (_, AmuletEvent::SnippetReady(_) | AmuletEvent::SnippetScored(..)) => {
                self.stats.rejected += 1;
                ctx.display(Severity::Debug, "busy; window dropped");
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::AmuletOs;
    use crate::profiler::ResourceProfiler;
    use crate::toolchain::FirmwareImage;
    use physio_sim::record::Record;
    use physio_sim::subject::bank;
    use sift::trainer::train_for_subject;

    fn quick_config() -> SiftConfig {
        SiftConfig {
            train_s: 60.0,
            max_positive_per_donor: Some(15),
            ..SiftConfig::default()
        }
    }

    fn make_app(version: Version) -> SiftApp {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, version, &cfg, 77).unwrap();
        SiftApp::new(version, model.embedded().clone(), cfg).unwrap()
    }

    fn os_with_app(app: SiftApp) -> AmuletOs {
        let mut os = AmuletOs::new();
        let image =
            FirmwareImage::build(vec![app.resource_spec()], &ResourceProfiler::default()).unwrap();
        os.install(&image, vec![Box::new(app)]).unwrap();
        os
    }

    fn snippets(subject: usize, seed: u64, secs: f64) -> Vec<Snippet> {
        let r = Record::synthesize(&bank()[subject], secs, seed);
        physio_sim::dataset::windows(&r, 3.0)
            .unwrap()
            .iter()
            .map(|w| Snippet::from_record(w).unwrap())
            .collect()
    }

    #[test]
    fn three_state_pipeline_processes_windows() {
        let mut os = os_with_app(make_app(Version::Simplified));
        for sn in snippets(0, 101, 15.0) {
            os.post(AmuletEvent::SnippetReady(sn));
            os.run_until_idle().unwrap();
            os.advance_time(3000);
        }
        // Each window = 3 dispatches (snippet + two signals).
        assert_eq!(os.dispatched(), 15);
        assert_eq!(os.app_state("sift-simplified").unwrap(), "PeaksDataCheck");
    }

    #[test]
    fn own_data_rarely_alerts_donor_data_usually_alerts() {
        let app = make_app(Version::Simplified);
        let mut os = os_with_app(app);
        // Genuine windows.
        for sn in snippets(0, 2024, 30.0) {
            os.post(AmuletEvent::SnippetReady(sn));
            os.run_until_idle().unwrap();
        }
        let genuine_alerts = os.alerts().len();
        assert!(genuine_alerts <= 3, "false alerts: {genuine_alerts}");

        // Altered windows: own ABP + donor ECG.
        let own = Record::synthesize(&bank()[0], 30.0, 2024);
        let donor = Record::synthesize(&bank()[4], 30.0, 4048);
        let vw = physio_sim::dataset::windows(&own, 3.0).unwrap();
        let dw = physio_sim::dataset::windows(&donor, 3.0).unwrap();
        for (v, d) in vw.iter().zip(&dw) {
            let sn = Snippet::new(
                d.ecg.clone(),
                v.abp.clone(),
                d.r_peaks.clone(),
                v.sys_peaks.clone(),
            )
            .unwrap();
            os.post(AmuletEvent::SnippetReady(sn));
            os.run_until_idle().unwrap();
        }
        let attack_alerts = os.alerts().len() - genuine_alerts;
        assert!(attack_alerts >= 7, "only {attack_alerts}/10 attacks caught");
    }

    #[test]
    fn busy_pipeline_drops_extra_snippets() {
        let app = make_app(Version::Reduced);
        let mut os = os_with_app(app);
        let sns = snippets(0, 5, 6.0);
        // Post two windows without draining — the second arrives while
        // the app is mid-pipeline.
        os.post(AmuletEvent::SnippetReady(sns[0].clone()));
        os.step().unwrap(); // PeaksDataCheck of window 0
        os.post(AmuletEvent::SnippetReady(sns[1].clone()));
        os.run_until_idle().unwrap();
        // One processed, one rejected — observable on the debug display.
        let dropped = os
            .display()
            .lines()
            .iter()
            .filter(|l| l.text.contains("busy"))
            .count();
        assert_eq!(dropped, 1);
    }

    #[test]
    fn degenerate_snippet_alerts() {
        let app = make_app(Version::Simplified);
        let mut os = os_with_app(app);
        let flat = Snippet::new(vec![0.5; 1080], vec![80.0; 1080], vec![], vec![]).unwrap();
        os.post(AmuletEvent::SnippetReady(flat));
        os.run_until_idle().unwrap();
        assert_eq!(os.alerts().len(), 1);
        assert!(os.alerts()[0].message.contains("degenerate"));
    }

    #[test]
    fn wrong_length_snippet_rejected() {
        let app = make_app(Version::Simplified);
        let mut os = os_with_app(app);
        let short = Snippet::new(vec![0.1, 0.9, 0.2], vec![70.0, 80.0, 75.0], vec![1], vec![1])
            .unwrap();
        os.post(AmuletEvent::SnippetReady(short));
        os.run_until_idle().unwrap();
        assert!(os.alerts().is_empty());
        assert_eq!(os.app_state("sift-simplified").unwrap(), "PeaksDataCheck");
    }

    #[test]
    fn tsetlin_backend_runs_the_same_three_state_pipeline() {
        let cfg = quick_config();
        let model = sift::zoo::train_backend_for_subject(
            &bank(),
            0,
            Version::Reduced,
            ml::BackendKind::Tsetlin,
            &cfg,
            77,
        )
        .unwrap();
        let app = SiftApp::new(Version::Reduced, model, cfg).unwrap();
        assert_eq!(app.name(), "tsetlin-reduced");
        assert_eq!(app.backend(), ml::BackendKind::Tsetlin);
        assert_eq!(app.resource_spec().name, "tsetlin-reduced");
        let mut os = os_with_app(app);
        for sn in snippets(0, 101, 9.0) {
            os.post(AmuletEvent::SnippetReady(sn));
            os.run_until_idle().unwrap();
            os.advance_time(3000);
        }
        // Three dispatches per window, back to idle between windows.
        assert_eq!(os.dispatched(), 9);
        assert_eq!(os.app_state("tsetlin-reduced").unwrap(), "PeaksDataCheck");
    }

    #[test]
    fn tsetlin_classifier_stage_uses_integer_cycle_model() {
        let cfg = quick_config();
        let model = sift::zoo::train_backend_for_subject(
            &bank(),
            0,
            Version::Simplified,
            ml::BackendKind::Tsetlin,
            &cfg,
            77,
        )
        .unwrap();
        let tm = model.as_tsetlin().unwrap().clone();
        let app = SiftApp::new(Version::Simplified, model, cfg.clone()).unwrap();
        let expected = tsetlin_classifier_cycles(tm.dim(), tm.pairs(), &OpCosts::default());
        assert_eq!(app.stage_cycles().ml_classifier, expected);
        // The other two stages keep the shared pipeline prices.
        let svm = detector_cycles(Version::Simplified, &cfg, &OpCosts::default(), 4.0);
        assert_eq!(app.stage_cycles().peaks_data_check, svm.peaks_data_check);
        assert_eq!(app.stage_cycles().feature_extraction, svm.feature_extraction);
    }

    #[test]
    fn model_dimension_checked_at_construction() {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Reduced, &cfg, 77).unwrap();
        // A 5-feature model cannot drive the 8-feature original app.
        assert!(SiftApp::new(Version::Original, model.embedded().clone(), cfg).is_err());
    }

    #[test]
    fn telemetry_spans_carry_cost_model_cycles() {
        use telemetry::{Stage, Telemetry};
        let app = make_app(Version::Reduced);
        let mut os = os_with_app(app);
        os.attach_telemetry(Telemetry::enabled());
        let sns = snippets(0, 101, 6.0); // two 3-second windows
        let n_windows = sns.len() as u64;
        for sn in sns {
            os.post(AmuletEvent::SnippetReady(sn));
            os.run_until_idle().unwrap();
        }
        let report = os.telemetry().report().unwrap();
        let cycles = detector_cycles(Version::Reduced, &quick_config(), &OpCosts::default(), 4.0);
        for (stage, expected) in [
            (Stage::PeakDetection, cycles.peaks_data_check),
            (Stage::FeatureExtraction, cycles.feature_extraction),
            (Stage::Svm, cycles.ml_classifier),
        ] {
            let s = report.stage(stage);
            assert_eq!(s.spans, n_windows, "{}", stage.name());
            assert_eq!(s.units, n_windows * expected as u64, "{}", stage.name());
        }
    }

    #[test]
    fn telemetry_does_not_change_energy_accounting() {
        use telemetry::Telemetry;
        let run = |telemetry: bool| {
            let mut os = os_with_app(make_app(Version::Simplified));
            if telemetry {
                os.attach_telemetry(Telemetry::enabled());
            }
            for sn in snippets(0, 77, 9.0) {
                os.post(AmuletEvent::SnippetReady(sn));
                os.run_until_idle().unwrap();
                os.advance_time(3000);
            }
            (
                os.meter().consumed_mah(),
                os.meter().active_cycles(),
                os.alerts().len(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn energy_is_charged_per_window() {
        let app = make_app(Version::Original);
        let mut os = os_with_app(app);
        let before = os.meter().consumed_mah();
        for sn in snippets(0, 6, 6.0) {
            os.post(AmuletEvent::SnippetReady(sn));
            os.run_until_idle().unwrap();
        }
        assert!(os.meter().consumed_mah() > before);
        assert!(os.meter().active_cycles() > 1e6);
    }
}
