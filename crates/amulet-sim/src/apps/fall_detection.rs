//! Fall-detection app — the paper's canonical example of a
//! "process the sensor data, give a decision to the user" app
//! (Insight #2 names "fall detection" explicitly).
//!
//! Classic threshold state machine: a high-g impact transient followed
//! by a stillness interval raises a fall alert.

use crate::display::Severity;
use crate::event::AmuletEvent;
use crate::machine::{App, AppContext};
use crate::profiler::AppResourceSpec;

/// Cycles per accelerometer sample (compare + state update).
const CYCLES_PER_SAMPLE: f64 = 400.0;

/// Detection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Watching for an impact transient.
    Monitoring,
    /// Impact seen; confirming post-impact stillness.
    ImpactSeen {
        /// When the impact was observed, ms.
        at_ms: u64,
    },
}

/// Configuration of the fall detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallConfig {
    /// Impact threshold, g.
    pub impact_g: f64,
    /// Stillness band around 1 g.
    pub stillness_band_g: f64,
    /// How long after the impact stillness must be observed, ms.
    pub confirm_after_ms: u64,
    /// Window in which the confirmation must happen, ms.
    pub confirm_window_ms: u64,
}

impl Default for FallConfig {
    fn default() -> Self {
        Self {
            impact_g: 2.5,
            stillness_band_g: 0.15,
            confirm_after_ms: 800,
            confirm_window_ms: 5_000,
        }
    }
}

/// The fall-detection app.
#[derive(Debug, Clone)]
pub struct FallDetectionApp {
    config: FallConfig,
    state: State,
    falls: u64,
    samples: u64,
}

impl FallDetectionApp {
    /// New app with the given thresholds.
    pub fn new(config: FallConfig) -> Self {
        Self {
            config,
            state: State::Monitoring,
            falls: 0,
            samples: 0,
        }
    }

    /// Falls detected so far.
    pub fn falls(&self) -> u64 {
        self.falls
    }

    /// Accelerometer samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for FallDetectionApp {
    fn default() -> Self {
        Self::new(FallConfig::default())
    }
}

impl App for FallDetectionApp {
    fn name(&self) -> &str {
        "fall-detection"
    }

    // lint:allow(embedded-no-heap-alloc, static resource declaration consumed by the host-side profiler)
    fn resource_spec(&self) -> AppResourceSpec {
        AppResourceSpec {
            name: "fall-detection".into(),
            fram_code_bytes: 610,
            fram_data_bytes: 24,
            sram_peak_bytes: 32,
            cycles_per_period: CYCLES_PER_SAMPLE * 50.0, // 50 Hz sampling
            period_s: 1.0,
            libs: vec![],
        }
    }

    fn current_state(&self) -> &'static str {
        match self.state {
            State::Monitoring => "Monitoring",
            State::ImpactSeen { .. } => "ImpactSeen",
        }
    }

    // lint:allow(embedded-no-heap-alloc, display strings render on the host; device firmware writes a fixed screen buffer)
    fn handle(&mut self, event: &AmuletEvent, ctx: &mut AppContext<'_>) {
        // Accelerometer magnitudes arrive as generic signals scaled by
        // 1000 (the QM framework passes small integers); see
        // `accel_signal`.
        let AmuletEvent::Signal(raw) = event else {
            return;
        };
        let Some(magnitude_g) = decode_accel_signal(*raw) else {
            return;
        };
        ctx.charge_cycles(CYCLES_PER_SAMPLE);
        self.samples += 1;
        let now = ctx.now_ms;
        match self.state {
            State::Monitoring => {
                if magnitude_g >= self.config.impact_g {
                    self.state = State::ImpactSeen { at_ms: now };
                    ctx.display(Severity::Debug, format!("impact {magnitude_g:.1} g"));
                }
            }
            State::ImpactSeen { at_ms } => {
                let dt = now.saturating_sub(at_ms);
                if dt > self.config.confirm_window_ms {
                    self.state = State::Monitoring;
                } else if dt >= self.config.confirm_after_ms
                    && (magnitude_g - 1.0).abs() <= self.config.stillness_band_g
                {
                    self.falls += 1;
                    ctx.raise_alert("FALL DETECTED");
                    self.state = State::Monitoring;
                }
            }
        }
    }
}

/// Encode an accelerometer magnitude (g) as a QM signal for dispatch.
pub fn accel_signal(magnitude_g: f64) -> AmuletEvent {
    AmuletEvent::Signal(0xACC0_0000 | ((magnitude_g.clamp(0.0, 16.0) * 1000.0) as u32 & 0xFFFF))
}

/// Decode a signal produced by [`accel_signal`].
fn decode_accel_signal(raw: u32) -> Option<f64> {
    if raw & 0xFFFF_0000 == 0xACC0_0000 {
        Some((raw & 0xFFFF) as f64 / 1000.0)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::Display;
    use crate::energy::{EnergyMeter, EnergyModel};
    use crate::machine::Alert;
    use crate::sensors::{Accelerometer, Activity};

    fn drive(app: &mut FallDetectionApp, samples: &[(u64, f64)]) -> Vec<Alert> {
        let mut display = Display::new();
        let mut meter = EnergyMeter::new();
        let model = EnergyModel::default();
        let mut alerts = Vec::new();
        for &(at_ms, g) in samples {
            let mut ctx = AppContext::new(
                at_ms,
                "fall-detection",
                &mut display,
                &mut meter,
                &model,
                &mut alerts,
            );
            app.handle(&accel_signal(g), &mut ctx);
        }
        alerts
    }

    #[test]
    fn fall_pattern_detected() {
        let mut app = FallDetectionApp::default();
        let mut samples = vec![(0, 1.0), (100, 1.01), (200, 4.5)];
        for i in 0..40 {
            samples.push((300 + i * 100, 1.02));
        }
        let alerts = drive(&mut app, &samples);
        assert_eq!(app.falls(), 1);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].message.contains("FALL"));
    }

    #[test]
    fn walking_bounce_is_not_a_fall() {
        let mut app = FallDetectionApp::default();
        // Oscillation up to 1.4 g, never crossing the impact threshold.
        let samples: Vec<(u64, f64)> = (0..200)
            .map(|i| (i * 20, 1.0 + 0.4 * ((i as f64) * 0.6).sin().max(0.0)))
            .collect();
        assert!(drive(&mut app, &samples).is_empty());
        assert_eq!(app.falls(), 0);
    }

    #[test]
    fn impact_without_stillness_times_out() {
        let mut app = FallDetectionApp::default();
        // Impact, then continued vigorous motion past the window.
        let mut samples = vec![(0, 4.0)];
        for i in 1..100 {
            samples.push((i * 100, 1.8));
        }
        assert!(drive(&mut app, &samples).is_empty());
        assert_eq!(app.current_state(), "Monitoring");
    }

    #[test]
    fn end_to_end_with_synthetic_accelerometer() {
        let mut app = FallDetectionApp::default();
        let mut acc = Accelerometer::new(Activity::Resting, 9);
        let mut samples = Vec::new();
        for t in 0..50 {
            samples.push((t * 20, acc.sample(t * 20).value));
        }
        acc.set_activity(Activity::Falling, 1000);
        for t in 50..300 {
            samples.push((t * 20, acc.sample(t * 20).value));
        }
        let alerts = drive(&mut app, &samples);
        assert_eq!(app.falls(), 1, "alerts: {alerts:?}");
    }

    #[test]
    fn signal_codec_round_trip() {
        for g in [0.0, 0.5, 1.0, 2.5, 4.5, 15.9] {
            let AmuletEvent::Signal(raw) = accel_signal(g) else {
                panic!("wrong event kind");
            };
            let back = decode_accel_signal(raw).unwrap();
            assert!((back - g).abs() < 0.001, "g={g} back={back}");
        }
        assert_eq!(decode_accel_signal(0x1234), None);
    }

    #[test]
    fn ignores_unrelated_events() {
        let mut app = FallDetectionApp::default();
        let mut display = Display::new();
        let mut meter = EnergyMeter::new();
        let model = EnergyModel::default();
        let mut alerts = Vec::new();
        let mut ctx = AppContext::new(0, "fall-detection", &mut display, &mut meter, &model, &mut alerts);
        app.handle(&AmuletEvent::ButtonPress, &mut ctx);
        app.handle(&AmuletEvent::Signal(0xDEAD), &mut ctx);
        assert_eq!(app.samples(), 0);
    }
}
