//! Applications for the simulated Amulet.
//!
//! * [`sift_app`] — the paper's detector as a three-state QM machine,
//! * [`heartrate`] — a simple heart-rate display app, demonstrating the
//!   platform's multi-application deployment (several apps react to the
//!   same sensor events without threads or isolation violations),
//! * [`fall_detection`] — the paper's other canonical decision app,
//!   consuming the internal accelerometer,
//! * [`watchdog`] — a stream-liveness watchdog raising a distinct
//!   alert when a sensor stream goes silent.

pub mod fall_detection;
pub mod heartrate;
pub mod sift_app;
pub mod watchdog;

pub use fall_detection::FallDetectionApp;
pub use heartrate::HeartRateApp;
pub use sift_app::SiftApp;
pub use watchdog::WatchdogApp;
