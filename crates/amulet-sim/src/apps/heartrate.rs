//! A minimal heart-rate display app.
//!
//! The Amulet's selling point is running "multiple applications from
//! different third party developers … on the same device" (paper §II-B).
//! This app consumes the same `SnippetReady` events as the detector and
//! renders the wearer's heart rate, demonstrating event fan-out without
//! threads.

use crate::display::Severity;
use crate::event::AmuletEvent;
use crate::machine::{App, AppContext};
use crate::profiler::AppResourceSpec;

/// Cycles to count peaks and format two digits.
const CYCLES_PER_WINDOW: f64 = 9_000.0;

/// The heart-rate app.
#[derive(Debug, Clone)]
pub struct HeartRateApp {
    fs: f64,
    windows: u64,
    last_bpm: Option<f64>,
}

impl Default for HeartRateApp {
    fn default() -> Self {
        Self::new()
    }
}

impl HeartRateApp {
    /// Fresh app instance at the workspace's default 360 Hz sample rate.
    pub fn new() -> Self {
        Self::with_sample_rate(360.0)
    }

    /// App instance for an explicit sensor sample rate.
    pub fn with_sample_rate(fs: f64) -> Self {
        Self {
            fs,
            windows: 0,
            last_bpm: None,
        }
    }

    /// The most recently displayed heart rate, if any.
    pub fn last_bpm(&self) -> Option<f64> {
        self.last_bpm
    }

    /// Windows processed.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

impl App for HeartRateApp {
    fn name(&self) -> &str {
        "heartrate"
    }

    // lint:allow(embedded-no-heap-alloc, static resource declaration consumed by the host-side profiler)
    fn resource_spec(&self) -> AppResourceSpec {
        AppResourceSpec {
            name: "heartrate".into(),
            fram_code_bytes: 420,
            fram_data_bytes: 16,
            sram_peak_bytes: 24,
            cycles_per_period: CYCLES_PER_WINDOW,
            period_s: 3.0,
            libs: vec![],
        }
    }

    fn current_state(&self) -> &'static str {
        "Display"
    }

    // lint:allow(embedded-no-heap-alloc, display strings render on the host; device firmware writes a fixed screen buffer)
    // lint:allow(embedded-no-slice-index, r_peaks indices guarded by the len() >= 2 check)
    fn handle(&mut self, event: &AmuletEvent, ctx: &mut AppContext<'_>) {
        // A pre-scored window carries the same raw snippet; the display
        // path is identical either way.
        if let AmuletEvent::SnippetReady(snippet) | AmuletEvent::SnippetScored(snippet, _) = event
        {
            ctx.charge_cycles(CYCLES_PER_WINDOW);
            self.windows += 1;
            if snippet.r_peaks.len() >= 2 {
                let first = snippet.r_peaks[0];
                let last = snippet.r_peaks[snippet.r_peaks.len() - 1];
                let beats = (snippet.r_peaks.len() - 1) as f64;
                let span_s = (last - first) as f64 / self.fs;
                if span_s > 0.0 {
                    let bpm = 60.0 * beats / span_s;
                    self.last_bpm = Some(bpm);
                    ctx.display(Severity::Info, format!("HR {bpm:.0} bpm"));
                    return;
                }
            }
            ctx.display(Severity::Info, "HR --");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::Display;
    use crate::energy::{EnergyMeter, EnergyModel};
    use sift::snippet::Snippet;

    fn dispatch(app: &mut HeartRateApp, sn: Snippet) -> Display {
        let mut display = Display::new();
        let mut meter = EnergyMeter::new();
        let model = EnergyModel::default();
        let mut alerts = Vec::new();
        let mut ctx =
            AppContext::new(0, "heartrate", &mut display, &mut meter, &model, &mut alerts);
        app.handle(&AmuletEvent::SnippetReady(sn), &mut ctx);
        display
    }

    #[test]
    fn computes_bpm_from_peaks() {
        let mut app = HeartRateApp::new();
        // Peaks at 0 s, 1 s, 2 s → 60 bpm.
        let fs = 360usize;
        let mut ecg = vec![0.0; 3 * fs];
        for &p in &[0usize, fs, 2 * fs] {
            ecg[p] = 1.0;
        }
        let abp = (0..3 * fs).map(|i| 80.0 + (i % 7) as f64).collect();
        let sn = Snippet::new(ecg, abp, vec![0, fs, 2 * fs], vec![]).unwrap();
        let display = dispatch(&mut app, sn);
        assert_eq!(app.last_bpm().map(|b| b.round()), Some(60.0));
        assert!(display.lines()[0].text.contains("60"));
    }

    #[test]
    fn too_few_peaks_shows_placeholder() {
        let mut app = HeartRateApp::new();
        let sn = Snippet::new(vec![0.0, 1.0], vec![80.0, 81.0], vec![1], vec![]).unwrap();
        let display = dispatch(&mut app, sn);
        assert_eq!(app.last_bpm(), None);
        assert!(display.lines()[0].text.contains("--"));
        assert_eq!(app.windows(), 1);
    }
}
