//! A stream-liveness watchdog app.
//!
//! The SIFT detector can only judge windows it receives; a sensor that
//! stops transmitting entirely produces *no* windows and would fail
//! silent. This app closes that gap: when the reassembly layer notices
//! a stream has gone quiet it posts
//! [`AmuletEvent::StreamStalled`], and the watchdog turns that into a
//! distinct, user-visible alert — a different failure class than a
//! detection alert, surfaced through the same alert channel.

use crate::display::Severity;
use crate::event::AmuletEvent;
use crate::machine::{App, AppContext};
use crate::profiler::AppResourceSpec;

/// Cycles to format and raise one stall alert.
const CYCLES_PER_STALL: f64 = 1_200.0;

/// The watchdog app.
#[derive(Debug, Clone, Default)]
pub struct WatchdogApp {
    stalls: u64,
}

impl WatchdogApp {
    /// Fresh watchdog instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stall alerts raised so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

impl App for WatchdogApp {
    fn name(&self) -> &str {
        "watchdog"
    }

    // lint:allow(embedded-no-heap-alloc, static resource declaration consumed by the host-side profiler)
    fn resource_spec(&self) -> AppResourceSpec {
        AppResourceSpec {
            name: "watchdog".into(),
            fram_code_bytes: 280,
            fram_data_bytes: 8,
            sram_peak_bytes: 16,
            cycles_per_period: CYCLES_PER_STALL,
            period_s: 3.0,
            libs: vec![],
        }
    }

    fn current_state(&self) -> &'static str {
        "Armed"
    }

    // lint:allow(embedded-no-heap-alloc, alert/display strings render on the host; device firmware writes a fixed screen buffer)
    fn handle(&mut self, event: &AmuletEvent, ctx: &mut AppContext<'_>) {
        if let AmuletEvent::StreamStalled { stream, silent_ms } = event {
            ctx.charge_cycles(CYCLES_PER_STALL);
            self.stalls += 1;
            ctx.raise_alert(format!(
                "stream stalled: {stream} silent for {silent_ms} ms"
            ));
            ctx.display(Severity::Info, format!("{stream} offline"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::Display;
    use crate::energy::{EnergyMeter, EnergyModel};
    use crate::machine::Alert;

    fn dispatch(app: &mut WatchdogApp, event: AmuletEvent) -> Vec<Alert> {
        let mut display = Display::new();
        let mut meter = EnergyMeter::new();
        let model = EnergyModel::default();
        let mut alerts = Vec::new();
        let mut ctx =
            AppContext::new(7_000, "watchdog", &mut display, &mut meter, &model, &mut alerts);
        app.handle(&event, &mut ctx);
        alerts
    }

    #[test]
    fn stall_event_raises_a_distinct_alert() {
        let mut app = WatchdogApp::new();
        let alerts = dispatch(
            &mut app,
            AmuletEvent::StreamStalled {
                stream: "abp".into(),
                silent_ms: 4_500,
            },
        );
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].app, "watchdog");
        assert!(alerts[0].message.contains("stream stalled"));
        assert!(alerts[0].message.contains("abp"));
        assert!(alerts[0].message.contains("4500"));
        assert_eq!(app.stalls(), 1);
    }

    #[test]
    fn other_events_are_ignored() {
        let mut app = WatchdogApp::new();
        assert!(dispatch(&mut app, AmuletEvent::ButtonPress).is_empty());
        assert!(dispatch(&mut app, AmuletEvent::Tick { ms: 5 }).is_empty());
        assert_eq!(app.stalls(), 0);
    }
}
