//! End-to-end exit-code contract of the `analyzer` binary: builds a
//! throwaway mini-workspace under the cargo tmp dir per case, points
//! `--root` at it, and checks the process exit status.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Create `<tmp>/<name>/` holding each `(rel_path, contents)` pair,
/// return the root.
fn mini_root_files(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    for (rel_path, contents) in files {
        let file = root.join(rel_path);
        fs::create_dir_all(file.parent().expect("has parent")).expect("mkdir");
        fs::write(&file, contents).expect("write fixture");
    }
    root
}

/// Create `<tmp>/<name>/<rel_path>` holding `contents`, return the root.
fn mini_root(name: &str, rel_path: &str, contents: &str) -> PathBuf {
    mini_root_files(name, &[(rel_path, contents)])
}

fn run_analyzer_args(root: &PathBuf, extra: &[&str]) -> i32 {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_analyzer"));
    cmd.args(["--root", &root.display().to_string(), "--quiet"]);
    cmd.args(extra);
    cmd.status().expect("spawn analyzer").code().expect("exit code")
}

fn run_analyzer(root: &PathBuf, deny: bool) -> i32 {
    let mut extra = vec!["--no-budget"];
    if deny {
        extra.extend(["--deny", "warnings"]);
    }
    run_analyzer_args(root, &extra)
}

#[test]
fn violation_fixtures_fail_the_run() {
    let cases = [
        ("cli-embedded", "crates/dsp/src/fixed.rs", include_str!("fixtures/embedded_violations.rs")),
        ("cli-det", "crates/wiot/src/x.rs", include_str!("fixtures/determinism_violations.rs")),
        ("cli-meta", "crates/wiot/src/x.rs", include_str!("fixtures/meta_violations.rs")),
    ];
    for (name, rel, src) in cases {
        let root = mini_root(name, rel, src);
        assert_eq!(run_analyzer(&root, false), 1, "{name} should fail");
    }
}

#[test]
fn clean_fixture_passes() {
    let root = mini_root(
        "cli-clean",
        "crates/dsp/src/fixed.rs",
        include_str!("fixtures/embedded_clean.rs"),
    );
    assert_eq!(run_analyzer(&root, false), 0);
    assert_eq!(run_analyzer(&root, true), 0);
}

#[test]
fn deny_warnings_promotes_warn_findings() {
    // A lone unwrap in a lib crate is warn-level: passes by default,
    // fails under --deny warnings.
    let root = mini_root(
        "cli-warn",
        "crates/wiot/src/x.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    assert_eq!(run_analyzer(&root, false), 0);
    assert_eq!(run_analyzer(&root, true), 1);
}

#[test]
fn missing_root_is_a_usage_error() {
    let bogus = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cli-no-such-dir");
    assert_eq!(run_analyzer(&bogus, false), 2);
}

// ---------------------------------------------------------------------
// Call-graph pass: mini-workspaces exercising each interprocedural rule
// end to end through the binary.
// ---------------------------------------------------------------------

#[test]
fn cg_recursion_in_embedded_file_fails_and_allows_suppress() {
    let src = "pub fn spin(n: u32) -> u32 {\n    if n == 0 { 0 } else { spin(n - 1) }\n}\n";
    let root = mini_root("cli-cg-rec", "crates/dsp/src/fixed.rs", src);
    assert_eq!(run_analyzer(&root, false), 1, "recursion must be an error");

    let allowed = "pub fn spin(n: u32) -> u32 { // lint:allow(cg-recursion, bounded by n which is <= 4 at every call site)\n    if n == 0 { 0 } else { spin(n - 1) }\n}\n";
    let root = mini_root("cli-cg-rec-ok", "crates/dsp/src/fixed.rs", allowed);
    assert_eq!(run_analyzer(&root, false), 0, "justified allow must pass");
}

#[test]
fn cg_dynamic_dispatch_in_embedded_file_fails() {
    let src = "pub fn run(d: &dyn core::fmt::Debug) {\n    let _ = d;\n}\n";
    let root = mini_root("cli-cg-dyn", "crates/ml/src/embedded.rs", src);
    assert_eq!(run_analyzer(&root, false), 1, "dyn in embedded must be an error");

    // The same signature host-side is fine.
    let root = mini_root("cli-cg-dyn-host", "crates/physio-sim/src/x.rs", src);
    assert_eq!(run_analyzer(&root, false), 0);
}

#[test]
fn cg_deep_chain_exceeding_stack_budget_fails_the_budget_pass() {
    // An entry-point impersonator whose callee hogs ~1.2 KB of frame:
    // 953 B worst-case statics + 1208 B stack blows the 2 KB SRAM cap.
    let mut hog = String::from("fn hog() -> u32 {\n");
    for i in 0..600 {
        hog.push_str(&format!("    let x{i} = 0u32;\n"));
    }
    hog.push_str("    x0\n}\n");
    let entry = format!(
        "pub struct SurvivalPolicy;\nimpl SurvivalPolicy {{\n    pub fn step(&mut self) -> u32 {{ hog() }}\n}}\n{hog}"
    );
    let root = mini_root("cli-cg-stack", "crates/wiot/src/survival.rs", &entry);
    assert_eq!(
        run_analyzer_args(&root, &[]),
        1,
        "statics + stack over SRAM must fail the budget pass"
    );

    // Shallow control: same entry point, trivial callee.
    let ok = "pub struct SurvivalPolicy;\nimpl SurvivalPolicy {\n    pub fn step(&mut self) -> u32 { tiny() }\n}\nfn tiny() -> u32 { 0 }\n";
    let root = mini_root("cli-cg-stack-ok", "crates/wiot/src/survival.rs", ok);
    assert_eq!(run_analyzer_args(&root, &[]), 0);
}

#[test]
fn cg_transitive_panic_reach_fails_until_the_site_is_certified() {
    let entry = "pub struct SurvivalPolicy;\nimpl SurvivalPolicy {\n    pub fn step(&mut self) -> u32 { util::poll() }\n}\n";
    let util = "pub fn poll() -> u32 {\n    source().unwrap()\n}\nfn source() -> Option<u32> { Some(1) }\n";
    let root = mini_root_files(
        "cli-cg-panic",
        &[("crates/wiot/src/survival.rs", entry), ("crates/wiot/src/util.rs", util)],
    );
    assert_eq!(
        run_analyzer(&root, false),
        1,
        "a host-side unwrap reachable from an embedded entry must be an error"
    );

    // Certifying the site (lib-no-panic allow covers panic freedom)
    // clears both the lexical warn and the call-graph error.
    let util_ok = "pub fn poll() -> u32 {\n    source().unwrap() // lint:allow(lib-no-panic, source() is Some by construction: seeded above)\n}\nfn source() -> Option<u32> { Some(1) }\n";
    let root = mini_root_files(
        "cli-cg-panic-ok",
        &[("crates/wiot/src/survival.rs", entry), ("crates/wiot/src/util.rs", util_ok)],
    );
    assert_eq!(run_analyzer(&root, true), 0, "certified site must clear the gate");
}

#[test]
fn json_report_schema_is_stable() {
    let root = mini_root(
        "cli-json",
        "crates/dsp/src/fixed.rs",
        include_str!("fixtures/embedded_clean.rs"),
    );
    let out = root.join("findings.json");
    let code = run_analyzer_args(
        &root,
        &["--no-budget", "--json", &out.display().to_string()],
    );
    assert_eq!(code, 0);
    let doc = fs::read_to_string(&out).expect("json report written");
    // Exact top-level key set, in order: downstream tooling greps this.
    let keys = [
        "\"files_scanned\"",
        "\"suppressions_honored\"",
        "\"elapsed_ms\"",
        "\"counts\"",
        "\"findings\"",
    ];
    let mut at = 0;
    for k in keys {
        let pos = doc[at..].find(k).unwrap_or_else(|| panic!("missing {k} in:\n{doc}"));
        at += pos;
    }
    assert!(doc.contains("\"error\": 0"));
    assert!(doc.contains("\"warn\": 0"));
}
