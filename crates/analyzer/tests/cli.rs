//! End-to-end exit-code contract of the `analyzer` binary: builds a
//! throwaway mini-workspace under the cargo tmp dir per case, points
//! `--root` at it, and checks the process exit status.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Create `<tmp>/<name>/<rel_path>` holding `contents`, return the root.
fn mini_root(name: &str, rel_path: &str, contents: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let file = root.join(rel_path);
    fs::create_dir_all(file.parent().expect("has parent")).expect("mkdir");
    fs::write(&file, contents).expect("write fixture");
    root
}

fn run_analyzer(root: &PathBuf, deny: bool) -> i32 {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_analyzer"));
    cmd.args(["--root", &root.display().to_string(), "--no-budget", "--quiet"]);
    if deny {
        cmd.args(["--deny", "warnings"]);
    }
    cmd.status().expect("spawn analyzer").code().expect("exit code")
}

#[test]
fn violation_fixtures_fail_the_run() {
    let cases = [
        ("cli-embedded", "crates/dsp/src/fixed.rs", include_str!("fixtures/embedded_violations.rs")),
        ("cli-det", "crates/wiot/src/x.rs", include_str!("fixtures/determinism_violations.rs")),
        ("cli-meta", "crates/wiot/src/x.rs", include_str!("fixtures/meta_violations.rs")),
    ];
    for (name, rel, src) in cases {
        let root = mini_root(name, rel, src);
        assert_eq!(run_analyzer(&root, false), 1, "{name} should fail");
    }
}

#[test]
fn clean_fixture_passes() {
    let root = mini_root(
        "cli-clean",
        "crates/dsp/src/fixed.rs",
        include_str!("fixtures/embedded_clean.rs"),
    );
    assert_eq!(run_analyzer(&root, false), 0);
    assert_eq!(run_analyzer(&root, true), 0);
}

#[test]
fn deny_warnings_promotes_warn_findings() {
    // A lone unwrap in a lib crate is warn-level: passes by default,
    // fails under --deny warnings.
    let root = mini_root(
        "cli-warn",
        "crates/wiot/src/x.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    assert_eq!(run_analyzer(&root, false), 0);
    assert_eq!(run_analyzer(&root, true), 1);
}

#[test]
fn missing_root_is_a_usage_error() {
    let bogus = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cli-no-such-dir");
    assert_eq!(run_analyzer(&bogus, false), 2);
}
