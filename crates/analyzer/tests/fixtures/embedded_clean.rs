// Integer-only fixed-point arithmetic: nothing for the embedded pass
// to flag, under any rel_path.

pub fn scale_q16(raw: i32, k: i32) -> i32 {
    let wide = (raw as i64) * (k as i64);
    let shifted = wide >> 16;
    if shifted > i32::MAX as i64 {
        i32::MAX
    } else {
        shifted as i32
    }
}
