// Deterministic replacements for everything determinism_violations.rs
// does wrong: ordered map, logical clock, no threads, no panics.

use std::collections::BTreeMap;

pub fn ordered(m: &mut BTreeMap<u32, u32>, now_ms: u64) -> Option<u32> {
    m.insert(0, 1);
    let _ = now_ms;
    m.get(&0).copied()
}
