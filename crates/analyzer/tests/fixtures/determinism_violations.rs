// Exercises the determinism pass plus library panic hygiene. Analyzed
// under several rel_paths to check the exemption table; never compiled.

use std::collections::HashMap;
use std::time::Instant;

pub fn racy(m: &mut HashMap<u32, u32>) {
    let t = Instant::now();
    m.insert(0, 1);
    std::thread::spawn(|| ());
    let elapsed = t.elapsed().as_millis();
    let _ = u32::try_from(elapsed).unwrap();
}
