// Violations confined to a #[cfg(test)] region: the analyzer must
// ignore all of them, including the stray lint:allow.

pub fn live() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        // lint:allow(lib-no-panic)
        let mut m = HashMap::new();
        m.insert(0u32, 1u32);
        let _ = m.get(&0).unwrap();
    }
}
