// The same violations as embedded_violations.rs, each carrying an
// inline justification; the analyzer must honor every one and keep the
// file clean.

pub fn convert(raw: i32) -> f64 { // lint:allow(embedded-no-f64, host-side readout shim)
    let scale = 65536.0; // lint:allow(embedded-no-float-literal, folded to a Q16 constant at build time)
    let mut staging = Vec::new(); // lint:allow(embedded-no-heap-alloc, host-side staging buffer)
    staging.push(raw);
    let head = staging.first().unwrap(); // lint:allow(embedded-no-panic, pushed one line above)
    let tail = staging[0]; // lint:allow(embedded-no-slice-index, length checked by construction)
    (*head + tail) as _
}
