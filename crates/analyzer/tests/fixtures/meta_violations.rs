// Malformed and stale suppressions: each meta rule must fire once.

// lint:allow(lib-no-panic)
pub fn missing_reason() {}

// lint:allow(no-such-rule, the rule id is checked against the registry)
pub fn unknown_rule() {}

pub fn stale() {} // lint:allow(lib-no-panic, nothing on this line panics)
