// Fixture: embedded-profile violations inside the Tsetlin backend
// module, which routes to the dedicated `detector-embedded-profile`
// rule at error severity. Never compiled — lexed by the analyzer only.
fn scoring_path(x: f64) -> f64 {
    let copies = masks.to_vec();
    let best = copies.first().unwrap();
    let weight = 0.5;
    x + weight + best[0]
}
