// Exercises every embedded-profile rule exactly once. This file is a
// lexer fixture: the test harness feeds it to the analyzer under an
// embedded rel_path; it is never compiled.

pub fn convert(raw: i32) -> f64 {
    let scale = 65536.0;
    let mut staging = Vec::new();
    staging.push(raw);
    let head = staging.first().unwrap();
    let tail = staging[0];
    (*head + tail) as _
}
