//! Fixture-driven coverage of every analyzer rule: for each rule a
//! fixture where it fires, one where it is suppressed (or exempt), and
//! a clean one. The fixtures live under `tests/fixtures/` and are lexed
//! by the analyzer, never compiled.

use analyzer::analyze_source;
use analyzer::budget::{budget_findings, compute_footprints};
use analyzer::rules::Severity;
use sift::config::SiftConfig;

const EMBEDDED_VIOLATIONS: &str = include_str!("fixtures/embedded_violations.rs");
const EMBEDDED_SUPPRESSED: &str = include_str!("fixtures/embedded_suppressed.rs");
const EMBEDDED_CLEAN: &str = include_str!("fixtures/embedded_clean.rs");
const DET_VIOLATIONS: &str = include_str!("fixtures/determinism_violations.rs");
const DET_CLEAN: &str = include_str!("fixtures/determinism_clean.rs");
const META_VIOLATIONS: &str = include_str!("fixtures/meta_violations.rs");
const DETECTOR_VIOLATIONS: &str = include_str!("fixtures/detector_violations.rs");
const TEST_REGION: &str = include_str!("fixtures/test_region.rs");

/// (line, rule) pairs of the findings, in analyzer order.
fn fired(rel_path: &str, src: &str) -> Vec<(u32, &'static str)> {
    analyze_source(rel_path, src)
        .0
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn embedded_fixture_trips_every_embedded_rule() {
    let got = fired("crates/dsp/src/fixed.rs", EMBEDDED_VIOLATIONS);
    assert_eq!(
        got,
        vec![
            (5, "embedded-no-f64"),
            (6, "embedded-no-float-literal"),
            (7, "embedded-no-heap-alloc"),
            (9, "embedded-no-panic"),
            (10, "embedded-no-slice-index"),
        ]
    );
}

#[test]
fn app_code_is_exempt_from_float_rules_only() {
    // Same fixture under an amulet-sim app path: heap/panic/indexing
    // still apply, the float profile does not (host-side metering).
    let got = fired("crates/amulet-sim/src/apps/x.rs", EMBEDDED_VIOLATIONS);
    let rules: Vec<_> = got.iter().map(|(_, r)| *r).collect();
    assert_eq!(
        rules,
        vec![
            "embedded-no-heap-alloc",
            "embedded-no-panic",
            "embedded-no-slice-index",
        ]
    );
}

#[test]
fn non_embedded_path_sees_no_embedded_rules() {
    // physio-sim is host-side: only determinism rules apply, and this
    // fixture breaks none of them.
    let got = fired("crates/physio-sim/src/x.rs", EMBEDDED_VIOLATIONS);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn suppressions_silence_each_embedded_rule_and_are_counted() {
    let (findings, honored) =
        analyze_source("crates/dsp/src/fixed.rs", EMBEDDED_SUPPRESSED);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(honored, 5);
}

#[test]
fn clean_embedded_fixture_is_clean() {
    assert!(fired("crates/dsp/src/fixed.rs", EMBEDDED_CLEAN).is_empty());
    assert!(fired("crates/ml/src/embedded.rs", EMBEDDED_CLEAN).is_empty());
}

#[test]
fn determinism_fixture_trips_every_determinism_rule() {
    let got = fired("crates/wiot/src/x.rs", DET_VIOLATIONS);
    assert_eq!(
        got,
        vec![
            (4, "det-no-hash-collections"),
            (5, "det-no-wall-clock"),
            (7, "det-no-hash-collections"),
            (8, "det-no-wall-clock"),
            (10, "det-no-thread-api"),
            (12, "lib-no-panic"),
        ]
    );
}

#[test]
fn fleet_may_thread_but_nothing_else_changes() {
    let rules: Vec<_> = fired("crates/wiot/src/fleet.rs", DET_VIOLATIONS)
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    assert!(!rules.contains(&"det-no-thread-api"), "{rules:?}");
    assert!(rules.contains(&"det-no-hash-collections"));
    assert!(rules.contains(&"det-no-wall-clock"));
}

#[test]
fn bench_crate_is_exempt_from_the_determinism_pass() {
    let got = fired("crates/bench/src/x.rs", DET_VIOLATIONS);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn determinism_clean_fixture_is_clean() {
    assert!(fired("crates/wiot/src/x.rs", DET_CLEAN).is_empty());
}

#[test]
fn detector_fixture_routes_to_the_dedicated_rule_at_error_severity() {
    let (findings, _) = analyze_source("crates/ml/src/tsetlin.rs", DETECTOR_VIOLATIONS);
    assert!(!findings.is_empty(), "fixture must trip the profile");
    for f in &findings {
        assert_eq!(
            f.rule, "detector-embedded-profile",
            "finding at line {} kept rule {}",
            f.line, f.rule
        );
        assert_eq!(f.severity, Severity::Error);
    }
    // The same source next door in the SVM translation keeps the
    // generic embedded rule ids, and the clean fixture stays clean on
    // the pinned path.
    let svm = fired("crates/ml/src/embedded.rs", DETECTOR_VIOLATIONS);
    assert!(svm.iter().all(|(_, r)| *r != "detector-embedded-profile"), "{svm:?}");
    assert!(fired("crates/ml/src/tsetlin.rs", EMBEDDED_CLEAN).is_empty());
}

#[test]
fn meta_rules_fire_on_malformed_and_stale_suppressions() {
    let got = fired("crates/wiot/src/x.rs", META_VIOLATIONS);
    assert_eq!(
        got,
        vec![
            (3, "suppress-missing-reason"),
            (6, "suppress-unknown-rule"),
            (9, "suppress-unused"),
        ]
    );
}

#[test]
fn test_regions_are_invisible_to_every_rule() {
    let (findings, honored) = analyze_source("crates/wiot/src/x.rs", TEST_REGION);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(honored, 0);
}

#[test]
fn severities_match_the_registry() {
    let (findings, _) = analyze_source("crates/dsp/src/fixed.rs", EMBEDDED_VIOLATIONS);
    let sev = |rule: &str| {
        findings
            .iter()
            .find(|f| f.rule == rule)
            .map(|f| f.severity)
    };
    assert_eq!(sev("embedded-no-f64"), Some(Severity::Error));
    assert_eq!(sev("embedded-no-float-literal"), Some(Severity::Warn));
    assert_eq!(sev("embedded-no-slice-index"), Some(Severity::Warn));
}

#[test]
fn budget_rules_fire_on_doctored_footprints() {
    let mut fps = compute_footprints(&SiftConfig::default());
    assert!(budget_findings(&fps).is_empty());
    // Blow each budget on a different flavor.
    fps[0].app_fram_bytes += 256 * 1024; // > FRAM_BYTES total
    fps[1].app_sram_bytes += 4 * 1024; // > SRAM_BYTES total
    fps[2].window_samples = 5000; // > MAX_ARRAY_ELEMS
    let rules: Vec<_> = budget_findings(&fps).iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"budget-fram-exceeded"), "{rules:?}");
    assert!(rules.contains(&"budget-sram-exceeded"), "{rules:?}");
    assert!(rules.contains(&"budget-array-limit"), "{rules:?}");
    // The doctored FRAM numbers also drift from the paper's table.
    assert!(rules.contains(&"budget-paper-drift"), "{rules:?}");
}
