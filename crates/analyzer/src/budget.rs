//! The semantic budget pass: recompute each detector flavor's static
//! RAM/ROM footprint from the `amulet-sim` profiler cost tables and the
//! `ml` model serialization format, then check it against the Amulet's
//! memory map and the paper's Table III.
//!
//! This is deliberately *not* lexical: it consumes the same
//! `sift_app_spec` / `ResourceProfiler` machinery the simulator uses,
//! so the certified numbers are the numbers the rest of the repo runs
//! on, not a parallel re-derivation that could drift.

use crate::callgraph::{StackReport, FRAME_OVERHEAD_BYTES, REGISTER_ARGS, WORD_BYTES};
use crate::report::json_escape;
use crate::rules::Finding;
use amulet_sim::memory::MAX_ARRAY_ELEMS;
use amulet_sim::nvram::{HEADER_BYTES, MAX_PAYLOAD_BYTES, NVRAM_BYTES, SLOT_BYTES};
use amulet_sim::profiler::{sift_app_spec, ResourceProfiler};
use amulet_sim::{FRAM_BYTES, SRAM_BYTES};
use sift::config::SiftConfig;
use sift::features::Version;

/// Paper Table III row for one flavor (the published Amulet build).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// System FRAM (OS + pulled libraries), KB.
    pub system_fram_kb: f64,
    /// Detector app FRAM (code + model + buffers), KB.
    pub app_fram_kb: f64,
    /// Detector app peak SRAM, bytes.
    pub app_sram_b: usize,
    /// Battery lifetime, days.
    pub lifetime_days: f64,
}

/// Table III, in `Version::ALL` order (Original, Simplified, Reduced).
pub const PAPER_ROWS: [PaperRow; 3] = [
    PaperRow {
        system_fram_kb: 77.03,
        app_fram_kb: 4.79,
        app_sram_b: 259,
        lifetime_days: 23.0,
    },
    PaperRow {
        system_fram_kb: 71.58,
        app_fram_kb: 4.02,
        app_sram_b: 259,
        lifetime_days: 26.0,
    },
    PaperRow {
        system_fram_kb: 56.29,
        app_fram_kb: 2.56,
        app_sram_b: 69,
        lifetime_days: 55.0,
    },
];

/// Relative tolerance for FRAM rows against the paper (the profiler is
/// calibrated to the table; 2% absorbs rounding in the published KB).
const FRAM_TOLERANCE: f64 = 0.02;

/// Computed footprint of one flavor plus its budget verdicts.
#[derive(Debug, Clone)]
pub struct FlavorFootprint {
    /// Detector flavor.
    pub version: Version,
    /// Serialized SVM model bytes (`MAGIC + dim + weights + bias`).
    pub model_bytes: usize,
    /// Samples per window buffer.
    pub window_samples: usize,
    /// System FRAM including pulled libraries, bytes.
    pub system_fram_bytes: usize,
    /// App FRAM (code + data), bytes.
    pub app_fram_bytes: usize,
    /// System SRAM peak, bytes.
    pub system_sram_bytes: usize,
    /// App SRAM peak, bytes.
    pub app_sram_bytes: usize,
    /// Projected battery lifetime, days.
    pub lifetime_days: f64,
    /// Whether every hard budget holds for this flavor.
    pub within_budget: bool,
    /// The paper row this flavor is checked against.
    pub paper: PaperRow,
}

impl FlavorFootprint {
    /// Total FRAM demand, bytes.
    pub fn total_fram_bytes(&self) -> usize {
        self.system_fram_bytes + self.app_fram_bytes
    }

    /// Total peak SRAM demand, bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.system_sram_bytes + self.app_sram_bytes
    }
}

/// Exact serialized model size for a flavor, mirroring
/// `ml::embedded::EmbeddedModel::footprint_bytes` (magic + version +
/// u32 dim + f32 weights/means/scales/bias + CRC-32 trailer) without
/// training a model.
pub fn model_bytes(version: Version) -> usize {
    ml::embedded::encoded_len(version.feature_count())
}

/// Exact serialized Tsetlin model size for a flavor rung, mirroring
/// `ml::tsetlin::encoded_len` (magic + version + u32 dim + u32 pairs +
/// i32 thresholds + u64 clause masks + CRC-32 trailer) at the ladder's
/// clause count for that rung, without training a model.
pub fn tsetlin_model_bytes(version: Version) -> usize {
    ml::tsetlin::encoded_len(
        version.feature_count(),
        sift::zoo::tsetlin_pairs(version) as usize,
    )
}

/// Per-device slab swap state for a flavor/backend pair: the encoded
/// [`sift::checkpoint::DetectorCheckpoint`] a device occupies while
/// swapped out of the slab engine's worker slots (`wiot::slab`) — the
/// 16-byte checkpoint header plus the backend's self-describing model
/// blob. This is the O(1) per-device residency the streaming fleet
/// engine's memory claim rests on, so the budget pass certifies it the
/// same way it certifies the on-device footprints.
pub fn slab_state_bytes(version: Version) -> usize {
    sift::checkpoint::HEADER_BYTES + model_bytes(version)
}

/// [`slab_state_bytes`] for the Tsetlin backend's flavor rung.
pub fn tsetlin_slab_state_bytes(version: Version) -> usize {
    sift::checkpoint::HEADER_BYTES + tsetlin_model_bytes(version)
}

/// Gate every backend's slab swap state against the FRAM checkpoint
/// slot payload: a swapped-out device must fit the same NVRAM slot a
/// brownout checkpoint uses, or the slab's "swap through the codec"
/// story silently diverges from what the device could actually persist.
pub fn slab_findings() -> Vec<Finding> {
    let mut out = Vec::new();
    for version in Version::ALL {
        for (backend, bytes) in [
            ("svm", slab_state_bytes(version)),
            ("tsetlin", tsetlin_slab_state_bytes(version)),
        ] {
            if bytes > MAX_PAYLOAD_BYTES {
                out.push(Finding::new(
                    "budget-slab-state-exceeded",
                    "<budget>",
                    0,
                    format!(
                        "{version}/{backend}: slab swap state {bytes} B exceeds the \
                         {MAX_PAYLOAD_BYTES} B checkpoint slot payload"
                    ),
                ));
            }
        }
    }
    out
}

/// Compute the three flavor footprints with the paper's configuration.
pub fn compute_footprints(config: &SiftConfig) -> Vec<FlavorFootprint> {
    let profiler = ResourceProfiler::default();
    Version::ALL
        .iter()
        .zip(PAPER_ROWS.iter())
        .map(|(&version, &paper)| {
            let model = model_bytes(version);
            let spec = sift_app_spec(version, config, model);
            let profile = profiler.profile(&[&spec]);
            let window = config.window_samples();
            // The checkpoint NVRAM region is static FRAM real estate on
            // top of the firmware image, so it counts against the map.
            let within_budget = profile.system_fram_bytes + profile.app_fram_bytes + NVRAM_BYTES
                <= FRAM_BYTES
                && profile.system_sram_bytes + profile.app_sram_bytes <= SRAM_BYTES
                && window <= MAX_ARRAY_ELEMS;
            FlavorFootprint {
                version,
                model_bytes: model,
                window_samples: window,
                system_fram_bytes: profile.system_fram_bytes,
                app_fram_bytes: profile.app_fram_bytes,
                system_sram_bytes: profile.system_sram_bytes,
                app_sram_bytes: profile.app_sram_bytes,
                lifetime_days: profile.lifetime_days,
                within_budget,
                paper,
            }
        })
        .collect()
}

/// Turn footprints into findings: hard budget violations are errors,
/// drift from the paper's table is a warning.
pub fn budget_findings(footprints: &[FlavorFootprint]) -> Vec<Finding> {
    let mut out = Vec::new();
    for fp in footprints {
        let v = fp.version;
        if fp.total_fram_bytes() + NVRAM_BYTES > FRAM_BYTES {
            out.push(Finding::new(
                "budget-fram-exceeded",
                "<budget>",
                0,
                format!(
                    "{v}: static FRAM {} B (+{} B checkpoint region) exceeds the Amulet's {} B",
                    fp.total_fram_bytes(),
                    NVRAM_BYTES,
                    FRAM_BYTES
                ),
            ));
        }
        if fp.total_sram_bytes() > SRAM_BYTES {
            out.push(Finding::new(
                "budget-sram-exceeded",
                "<budget>",
                0,
                format!(
                    "{v}: peak SRAM {} B exceeds the Amulet's {} B",
                    fp.total_sram_bytes(),
                    SRAM_BYTES
                ),
            ));
        }
        if fp.window_samples > MAX_ARRAY_ELEMS {
            out.push(Finding::new(
                "budget-array-limit",
                "<budget>",
                0,
                format!(
                    "{v}: window buffer of {} samples exceeds MAX_ARRAY_ELEMS = {}",
                    fp.window_samples, MAX_ARRAY_ELEMS
                ),
            ));
        }
        let drift = |name: &str, got_kb: f64, paper_kb: f64| -> Option<Finding> {
            let rel = (got_kb - paper_kb).abs() / paper_kb;
            (rel > FRAM_TOLERANCE).then(|| {
                Finding::new(
                    "budget-paper-drift",
                    "<budget>",
                    0,
                    format!(
                        "{v}: {name} {got_kb:.2} KB is {:.1}% from the paper's {paper_kb:.2} KB",
                        rel * 100.0
                    ),
                )
            })
        };
        let kb = |b: usize| b as f64 / 1024.0;
        out.extend(drift(
            "system FRAM",
            kb(fp.system_fram_bytes),
            fp.paper.system_fram_kb,
        ));
        out.extend(drift("app FRAM", kb(fp.app_fram_bytes), fp.paper.app_fram_kb));
        if fp.app_sram_bytes != fp.paper.app_sram_b {
            out.push(Finding::new(
                "budget-paper-drift",
                "<budget>",
                0,
                format!(
                    "{v}: app SRAM {} B != the paper's {} B",
                    fp.app_sram_bytes, fp.paper.app_sram_b
                ),
            ));
        }
    }
    out
}

/// Gate the certified worst-case stack against the SRAM map: every
/// embedded entry point's chain must fit next to the worst flavor's
/// static SRAM demand. On the MSP430 the stack and app statics share
/// the same 2 KB, so the check is `statics + max stack <= SRAM_BYTES`.
pub fn stack_findings(footprints: &[FlavorFootprint], stack: &StackReport) -> Vec<Finding> {
    let worst_statics = footprints
        .iter()
        .map(FlavorFootprint::total_sram_bytes)
        .max()
        .unwrap_or(0);
    let mut out = Vec::new();
    for e in &stack.entries {
        let total = worst_statics + e.stack_bytes;
        if total > SRAM_BYTES {
            out.push(Finding::new(
                "budget-stack-exceeded",
                "<budget>",
                0,
                format!(
                    "{}: worst-case stack {} B over {} frames + {} B static SRAM = {} B \
                     exceeds the Amulet's {} B (chain: {})",
                    e.label,
                    e.stack_bytes,
                    e.frames,
                    worst_statics,
                    total,
                    SRAM_BYTES,
                    e.chain.join(" \u{2192} "),
                ),
            ));
        }
    }
    out
}

/// Render the footprint table as the `results/ANALYZER_footprint.json`
/// document (hand-rolled JSON; the workspace has no serde).
pub fn footprint_json(
    config: &SiftConfig,
    footprints: &[FlavorFootprint],
    stack: &StackReport,
) -> String {
    let mut rows = String::new();
    for (i, fp) in footprints.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"version\": \"{}\",\n",
                "      \"model_bytes\": {},\n",
                "      \"window_samples\": {},\n",
                "      \"system_fram_bytes\": {},\n",
                "      \"app_fram_bytes\": {},\n",
                "      \"total_fram_bytes\": {},\n",
                "      \"system_sram_bytes\": {},\n",
                "      \"app_sram_bytes\": {},\n",
                "      \"total_sram_bytes\": {},\n",
                "      \"lifetime_days\": {:.2},\n",
                "      \"within_budget\": {},\n",
                "      \"paper\": {{ \"system_fram_kb\": {}, \"app_fram_kb\": {}, ",
                "\"app_sram_b\": {}, \"lifetime_days\": {} }}\n",
                "    }}"
            ),
            fp.version,
            fp.model_bytes,
            fp.window_samples,
            fp.system_fram_bytes,
            fp.app_fram_bytes,
            fp.total_fram_bytes(),
            fp.system_sram_bytes,
            fp.app_sram_bytes,
            fp.total_sram_bytes(),
            fp.lifetime_days,
            fp.within_budget,
            fp.paper.system_fram_kb,
            fp.paper.app_fram_kb,
            fp.paper.app_sram_b,
            fp.paper.lifetime_days,
        ));
    }
    // Per-backend serialized model sizes for the detector zoo: the
    // same flavor ladder, one row per registered backend family.
    let mut zoo = String::new();
    for (i, &version) in Version::ALL.iter().enumerate() {
        if i > 0 {
            zoo.push_str(",\n");
        }
        zoo.push_str(&format!(
            concat!(
                "    {{ \"flavor\": \"{}\", \"svm_model_bytes\": {}, ",
                "\"tsetlin_model_bytes\": {} }}"
            ),
            version,
            model_bytes(version),
            tsetlin_model_bytes(version),
        ));
    }
    // Slab swap-state table: what one swapped-out device costs the
    // streaming fleet engine, per flavor and backend.
    let mut slab_rows = String::new();
    for (i, &version) in Version::ALL.iter().enumerate() {
        if i > 0 {
            slab_rows.push_str(",\n");
        }
        slab_rows.push_str(&format!(
            concat!(
                "      {{ \"flavor\": \"{}\", \"svm_state_bytes\": {}, ",
                "\"tsetlin_state_bytes\": {} }}"
            ),
            version,
            slab_state_bytes(version),
            tsetlin_slab_state_bytes(version),
        ));
    }
    // The certified worst-case stack table from the call-graph pass:
    // statics + stack share the same 2 KB SRAM, so each entry carries
    // its headroom against the worst flavor's static demand.
    let worst_statics = footprints
        .iter()
        .map(FlavorFootprint::total_sram_bytes)
        .max()
        .unwrap_or(0);
    let mut stack_rows = String::new();
    for (i, e) in stack.entries.iter().enumerate() {
        if i > 0 {
            stack_rows.push_str(",\n");
        }
        let chain: Vec<String> = e
            .chain
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect();
        stack_rows.push_str(&format!(
            concat!(
                "      {{\n",
                "        \"entry\": \"{}\",\n",
                "        \"file\": \"{}\",\n",
                "        \"line\": {},\n",
                "        \"stack_bytes\": {},\n",
                "        \"frames\": {},\n",
                "        \"headroom_bytes\": {},\n",
                "        \"chain\": [{}]\n",
                "      }}"
            ),
            json_escape(&e.label),
            json_escape(&e.file),
            e.line,
            e.stack_bytes,
            e.frames,
            SRAM_BYTES.saturating_sub(worst_statics + e.stack_bytes),
            chain.join(", "),
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"source\": \"cargo run -p analyzer (budget pass)\",\n",
            "  \"config\": {{ \"window_s\": {}, \"fs_hz\": {}, \"grid_n\": {} }},\n",
            "  \"device\": {{ \"fram_bytes\": {}, \"sram_bytes\": {}, ",
            "\"max_array_elems\": {} }},\n",
            "  \"checkpoint\": {{ \"nvram_bytes\": {}, \"slot_bytes\": {}, ",
            "\"header_bytes\": {}, \"max_payload_bytes\": {} }},\n",
            "  \"flavors\": [\n{}\n  ],\n",
            "  \"detector_zoo\": [\n{}\n  ],\n",
            "  \"slab\": {{\n",
            "    \"checkpoint_header_bytes\": {},\n",
            "    \"per_device\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"stack\": {{\n",
            "    \"model\": {{ \"word_bytes\": {}, \"frame_overhead_bytes\": {}, ",
            "\"register_args\": {} }},\n",
            "    \"worst_static_sram_bytes\": {},\n",
            "    \"entries\": [\n{}\n    ]\n",
            "  }}\n",
            "}}\n"
        ),
        config.window_s,
        config.fs,
        config.grid_n,
        FRAM_BYTES,
        SRAM_BYTES,
        MAX_ARRAY_ELEMS,
        NVRAM_BYTES,
        SLOT_BYTES,
        HEADER_BYTES,
        MAX_PAYLOAD_BYTES,
        rows,
        zoo,
        sift::checkpoint::HEADER_BYTES,
        slab_rows,
        WORD_BYTES,
        FRAME_OVERHEAD_BYTES,
        REGISTER_ARGS,
        worst_statics,
        stack_rows
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_within_every_budget() {
        let config = SiftConfig::default();
        let fps = compute_footprints(&config);
        assert_eq!(fps.len(), 3);
        assert!(fps.iter().all(|fp| fp.within_budget));
        let findings = budget_findings(&fps);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn model_bytes_match_embedded_format() {
        // 8 features: 12 header + 4 * (24 weights/means/scales + 1 bias)
        // + 4 CRC; 5 features: 12 + 4 * 16 + 4.
        assert_eq!(model_bytes(Version::Original), 116);
        assert_eq!(model_bytes(Version::Simplified), 116);
        assert_eq!(model_bytes(Version::Reduced), 80);
    }

    #[test]
    fn tsetlin_model_bytes_match_codec_and_fit_checkpoint_slots() {
        // dim·4 thresholds (i32) + 2·pairs masks (u64), 16-byte header,
        // 4-byte CRC: 32/16/8 clause pairs down the ladder.
        assert_eq!(tsetlin_model_bytes(Version::Original), 660);
        assert_eq!(tsetlin_model_bytes(Version::Simplified), 404);
        assert_eq!(tsetlin_model_bytes(Version::Reduced), 228);
        // Strictly monotone down the ladder, and every rung rides the
        // same FRAM checkpoint container the SVM uses.
        for version in Version::ALL {
            assert!(
                sift::checkpoint::HEADER_BYTES + tsetlin_model_bytes(version)
                    <= MAX_PAYLOAD_BYTES,
                "{version}: checkpoint payload overflows the slot"
            );
        }
        assert!(tsetlin_model_bytes(Version::Original) > tsetlin_model_bytes(Version::Simplified));
        assert!(tsetlin_model_bytes(Version::Simplified) > tsetlin_model_bytes(Version::Reduced));
    }

    #[test]
    fn slab_state_fits_every_checkpoint_slot() {
        // The slab engine swaps devices through the same checkpoint
        // container brownout persistence uses; every flavor/backend
        // pair must fit, and the pass reports no violations today.
        for version in Version::ALL {
            assert_eq!(
                slab_state_bytes(version),
                sift::checkpoint::HEADER_BYTES + model_bytes(version)
            );
            assert!(slab_state_bytes(version) <= MAX_PAYLOAD_BYTES);
            assert!(tsetlin_slab_state_bytes(version) <= MAX_PAYLOAD_BYTES);
        }
        assert!(slab_findings().is_empty());
    }

    #[test]
    fn oversized_window_trips_the_array_limit() {
        let config = SiftConfig {
            window_s: 4.0, // 1440 samples > MAX_ARRAY_ELEMS
            ..SiftConfig::default()
        };
        let fps = compute_footprints(&config);
        assert!(fps.iter().all(|fp| !fp.within_budget));
        let findings = budget_findings(&fps);
        assert!(findings.iter().any(|f| f.rule == "budget-array-limit"));
    }

    fn fake_stack(label: &str, bytes: usize) -> StackReport {
        StackReport {
            entries: vec![crate::callgraph::EntryStack {
                label: label.to_string(),
                file: "crates/wiot/src/survival.rs".to_string(),
                line: 1,
                stack_bytes: bytes,
                frames: 2,
                chain: vec![label.to_string(), "helper".to_string()],
            }],
        }
    }

    #[test]
    fn footprint_json_is_wellformed_enough() {
        let config = SiftConfig::default();
        let doc = footprint_json(
            &config,
            &compute_footprints(&config),
            &fake_stack("SurvivalPolicy::step", 64),
        );
        assert_eq!(doc.matches("\"version\"").count(), 3);
        assert_eq!(doc.matches("\"flavor\"").count(), 6);
        assert_eq!(doc.matches("\"tsetlin_model_bytes\"").count(), 3);
        assert_eq!(doc.matches("\"svm_state_bytes\"").count(), 3);
        assert!(doc.contains("\"checkpoint_header_bytes\": 16"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.contains("\"within_budget\": true"));
        assert!(doc.contains("\"nvram_bytes\": 4096"));
        assert!(doc.contains("\"stack\""));
        assert!(doc.contains("\"entry\": \"SurvivalPolicy::step\""));
        assert!(doc.contains("\"stack_bytes\": 64"));
        assert!(doc.contains("\"frame_overhead_bytes\": 4"));
    }

    #[test]
    fn stack_gate_fires_when_statics_plus_stack_overflow_sram() {
        let fps = compute_footprints(&SiftConfig::default());
        // A realistic chain fits comfortably…
        assert!(stack_findings(&fps, &fake_stack("SurvivalPolicy::step", 200)).is_empty());
        // …but statics + a deep chain past 2 KB is an error.
        let worst = fps
            .iter()
            .map(FlavorFootprint::total_sram_bytes)
            .max()
            .unwrap();
        let over = SRAM_BYTES - worst + 2;
        let fs = stack_findings(&fps, &fake_stack("SurvivalPolicy::step", over));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "budget-stack-exceeded");
        assert!(fs[0].message.contains("SurvivalPolicy::step"), "{}", fs[0].message);
    }

    #[test]
    fn checkpoint_region_fits_next_to_every_flavor() {
        let fps = compute_footprints(&SiftConfig::default());
        for fp in &fps {
            assert!(
                fp.total_fram_bytes() + NVRAM_BYTES <= FRAM_BYTES,
                "{}: {} + {} exceeds FRAM",
                fp.version,
                fp.total_fram_bytes(),
                NVRAM_BYTES
            );
        }
    }
}
