//! The rule registry: every lint the analyzer can emit, with its
//! severity and the pass it belongs to, plus the `Finding` type shared
//! by all passes.

use std::fmt;

/// Finding severity. `--deny warnings` promotes `Warn` to a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but exits 0 unless warnings are denied.
    Warn,
    /// Always a failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Which analysis pass owns a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// MSP430 deployment profile of the designated embedded modules.
    Embedded,
    /// Workspace-wide `FleetReport`-digest determinism protection.
    Determinism,
    /// Semantic RAM/ROM footprint check against the paper's memory map.
    Budget,
    /// Interprocedural call-graph analyses (recursion, dynamic
    /// dispatch, transitive panic reach, worst-case stack).
    CallGraph,
    /// Hygiene of the suppression grammar itself.
    Meta,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Embedded => "embedded",
            Pass::Determinism => "determinism",
            Pass::Budget => "budget",
            Pass::CallGraph => "callgraph",
            Pass::Meta => "meta",
        })
    }
}

/// One pinned-module profile: a set of workspace-relative module paths
/// held to the full embedded profile (no heap, no panic, no float, no
/// bracket indexing), with every violation routed to one dedicated
/// error-severity rule. Adding the next detector backend (or any other
/// device-resident module) is one table row here, not a new rule
/// implementation plus fixtures.
#[derive(Debug)]
pub struct PinnedProfile {
    /// The dedicated rule id violations report under (must be
    /// registered in [`RULES`] at error severity).
    pub rule: &'static str,
    /// Workspace-relative module paths the profile covers.
    pub modules: &'static [&'static str],
}

/// Every pinned-module profile, in registry order. `source::classify`
/// routes a file through the *first* row that lists it.
pub const PINNED_PROFILES: &[PinnedProfile] = &[
    PinnedProfile {
        rule: "ckpt-embedded-profile",
        modules: &[
            "crates/amulet-sim/src/nvram.rs",
            "crates/sift/src/checkpoint.rs",
        ],
    },
    PinnedProfile {
        rule: "tele-embedded-profile",
        modules: &["crates/telemetry/src/record.rs"],
    },
    PinnedProfile {
        rule: "survival-embedded-profile",
        modules: &["crates/wiot/src/survival.rs"],
    },
    PinnedProfile {
        rule: "detector-embedded-profile",
        modules: &["crates/ml/src/tsetlin.rs"],
    },
];

/// Rules whose suppression certifies a panic site as unreachable or
/// acceptable. The interprocedural panic-reachability walk trusts an
/// honored `lint:allow` of one of these: the written reason is the
/// soundness argument, so the site is not re-flagged at every embedded
/// entry point that can reach it.
pub fn certifies_panic_site(rule: &str) -> bool {
    rule == "embedded-no-panic"
        || rule == "lib-no-panic"
        || PINNED_PROFILES.iter().any(|p| p.rule == rule)
}

/// Static definition of one rule.
#[derive(Debug)]
pub struct RuleDef {
    /// Stable kebab-case id, used in reports and `lint:allow(...)`.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// Owning pass.
    pub pass: Pass,
    /// One-line description for `--rules` output and the docs.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        id: "embedded-no-f64",
        severity: Severity::Error,
        pass: Pass::Embedded,
        summary: "no f64 type or f64-suffixed literal in float-strict embedded modules \
                  (the MSP430 target has no FPU; doubles are software-emulated)",
    },
    RuleDef {
        id: "embedded-no-float-literal",
        severity: Severity::Warn,
        pass: Pass::Embedded,
        summary: "no float literal in float-strict embedded modules \
                  (the reduced detector is Q16.16 fixed-point end to end)",
    },
    RuleDef {
        id: "embedded-no-heap-alloc",
        severity: Severity::Error,
        pass: Pass::Embedded,
        summary: "no heap allocation (Vec::/Box::/String::/vec!/format!/.to_vec/.to_string/\
                  .to_owned) in embedded modules (AmuletOS apps get static buffers only)",
    },
    RuleDef {
        id: "embedded-no-panic",
        severity: Severity::Error,
        pass: Pass::Embedded,
        summary: "no panicking operation (unwrap/expect/panic!/assert!/unreachable!/todo!) \
                  in embedded modules (a panic is a watchdog reset on the device)",
    },
    RuleDef {
        id: "embedded-no-slice-index",
        severity: Severity::Warn,
        pass: Pass::Embedded,
        summary: "no bracket indexing in embedded modules; prefer get()/chunks so bounds \
                  failures are recoverable",
    },
    RuleDef {
        id: "ckpt-embedded-profile",
        severity: Severity::Error,
        pass: Pass::Embedded,
        summary: "checkpoint serialization/recovery modules must stay in the embedded \
                  profile: no heap, no panic, no float, no bracket indexing (they run \
                  inside the power-fail window)",
    },
    RuleDef {
        id: "tele-embedded-profile",
        severity: Severity::Error,
        pass: Pass::Embedded,
        summary: "the telemetry record hot path must stay in the embedded profile: no \
                  heap, no panic, no float, no bracket indexing (it sits inside every \
                  instrumented hot loop, whether the sink is enabled or not)",
    },
    RuleDef {
        id: "survival-embedded-profile",
        severity: Severity::Error,
        pass: Pass::Embedded,
        summary: "the survival policy decision procedure must stay in the embedded \
                  profile: no heap, no panic, no float, no bracket indexing (it runs \
                  every device tick, down to the last permille of battery)",
    },
    RuleDef {
        id: "detector-embedded-profile",
        severity: Severity::Error,
        pass: Pass::Embedded,
        summary: "alternate detector backends deploy to the device like the SVM does, so \
                  their scoring and codec paths must stay in the embedded profile: no \
                  heap, no panic, no float arithmetic, no bracket indexing",
    },
    RuleDef {
        id: "lib-no-panic",
        severity: Severity::Warn,
        pass: Pass::Embedded,
        summary: "library hygiene for wiot/sift/analyzer: unwrap/expect/panic! on runtime \
                  paths should be Result propagation",
    },
    RuleDef {
        id: "det-no-hash-collections",
        severity: Severity::Error,
        pass: Pass::Determinism,
        summary: "no HashMap/HashSet outside bench and vendored harness crates: iteration \
                  order would leak into digests and reports",
    },
    RuleDef {
        id: "det-no-wall-clock",
        severity: Severity::Error,
        pass: Pass::Determinism,
        summary: "no Instant/SystemTime outside bench: simulated time only, so reruns are \
                  byte-identical",
    },
    RuleDef {
        id: "det-no-thread-api",
        severity: Severity::Error,
        pass: Pass::Determinism,
        summary: "no thread APIs outside wiot::fleet, whose ordered reduction is the one \
                  audited parallel boundary",
    },
    RuleDef {
        id: "budget-fram-exceeded",
        severity: Severity::Error,
        pass: Pass::Budget,
        summary: "a detector flavor's static FRAM footprint (system + app) exceeds the \
                  Amulet's 128 KB",
    },
    RuleDef {
        id: "budget-sram-exceeded",
        severity: Severity::Error,
        pass: Pass::Budget,
        summary: "a detector flavor's peak SRAM (system + app) exceeds the Amulet's 2 KB",
    },
    RuleDef {
        id: "budget-array-limit",
        severity: Severity::Error,
        pass: Pass::Budget,
        summary: "a window buffer exceeds the AmuletOS per-array cap (MAX_ARRAY_ELEMS)",
    },
    RuleDef {
        id: "budget-paper-drift",
        severity: Severity::Warn,
        pass: Pass::Budget,
        summary: "a computed footprint drifted from the paper's Table III row beyond \
                  tolerance (2% FRAM, exact SRAM)",
    },
    RuleDef {
        id: "budget-stack-exceeded",
        severity: Severity::Error,
        pass: Pass::Budget,
        summary: "a certified worst-case call chain from an embedded entry point pushes \
                  statics + stack past the Amulet's 2 KB SRAM",
    },
    RuleDef {
        id: "cg-recursion",
        severity: Severity::Error,
        pass: Pass::CallGraph,
        summary: "a call-graph cycle reaches a function defined in an embedded-profile \
                  module; recursion makes the worst-case stack bound unsound",
    },
    RuleDef {
        id: "cg-dynamic-dispatch",
        severity: Severity::Error,
        pass: Pass::CallGraph,
        summary: "a trait-object (dyn) or fn-pointer type in an embedded-profile module; \
                  indirect calls cannot be resolved by the call-graph pass, so the stack \
                  certificate would silently exclude them",
    },
    RuleDef {
        id: "cg-panic-reachable",
        severity: Severity::Error,
        pass: Pass::CallGraph,
        summary: "an embedded entry point transitively reaches an unjustified panic site \
                  in host-side code; the finding carries the full call chain",
    },
    RuleDef {
        id: "suppress-missing-reason",
        severity: Severity::Error,
        pass: Pass::Meta,
        summary: "lint:allow without a reason; the grammar is \
                  lint:allow(rule-name, reason) and the reason is mandatory",
    },
    RuleDef {
        id: "suppress-unknown-rule",
        severity: Severity::Error,
        pass: Pass::Meta,
        summary: "lint:allow names a rule the analyzer does not define",
    },
    RuleDef {
        id: "suppress-unused",
        severity: Severity::Warn,
        pass: Pass::Meta,
        summary: "lint:allow whose scope contains no finding of the named rule; remove it",
    },
];

/// Look up a rule by id.
pub fn lookup(id: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.id == id)
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (always one of [`RULES`]).
    pub rule: &'static str,
    /// Severity at report time.
    pub severity: Severity,
    /// Workspace-relative file, or `<budget>` for semantic findings.
    pub file: String,
    /// 1-based line; 0 for file-less findings.
    pub line: u32,
    /// Human-readable detail.
    pub message: String,
}

impl Finding {
    /// Construct a finding for `rule_id`, which must be registered.
    pub fn new(rule_id: &'static str, file: &str, line: u32, message: String) -> Finding {
        let severity = lookup(rule_id).map_or(Severity::Error, |r| r.severity);
        Finding {
            rule: rule_id,
            severity,
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(lookup(r.id).is_some());
            assert!(
                RULES.iter().skip(i + 1).all(|o| o.id != r.id),
                "duplicate rule id {}",
                r.id
            );
        }
        assert!(lookup("no-such-rule").is_none());
    }
}
