//! CLI for the workspace static analyzer.
//!
//! ```text
//! cargo run -p analyzer --                 # warn-level report, exit 0/1
//! cargo run -p analyzer -- --deny warnings # CI gate: any finding fails
//! cargo run -p analyzer -- --json out.json # machine-readable findings
//! cargo run -p analyzer -- --rules         # print the rule registry
//! ```
//!
//! Exit codes: 0 clean, 1 findings at failing severity, 2 usage or I/O
//! error. The budget pass also rewrites `results/ANALYZER_footprint.json`
//! under the workspace root on every successful run.

use analyzer::rules::{Severity, RULES};
use analyzer::{analyze, find_workspace_root, report, Options};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: Option<PathBuf>,
    deny_warnings: bool,
    json_out: Option<PathBuf>,
    no_budget: bool,
    quiet: bool,
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        root: None,
        deny_warnings: false,
        json_out: None,
        no_budget: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => match args.next().as_deref() {
                Some("warnings") => cli.deny_warnings = true,
                other => return Err(format!("--deny expects `warnings`, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(p) => cli.root = Some(PathBuf::from(p)),
                None => return Err("--root expects a path".to_string()),
            },
            "--json" => match args.next() {
                Some(p) => cli.json_out = Some(PathBuf::from(p)),
                None => return Err("--json expects a path".to_string()),
            },
            "--no-budget" => cli.no_budget = true,
            "--quiet" | "-q" => cli.quiet = true,
            "--rules" => {
                for r in RULES {
                    println!("{:>5} {:<26} [{}] {}", r.severity.to_string(), r.id, r.pass, r.summary);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!(
                    "usage: analyzer [--root PATH] [--deny warnings] [--json PATH] \
                     [--no-budget] [--quiet] [--rules]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(cli))
}

fn run() -> Result<ExitCode, String> {
    let Some(cli) = parse_args()? else {
        return Ok(ExitCode::SUCCESS);
    };
    let root = match &cli.root {
        Some(r) => r.clone(),
        None => find_workspace_root()?,
    };
    let opts = Options {
        deny_warnings: cli.deny_warnings,
        run_budget: !cli.no_budget,
    };
    // The analyzer's own wall time goes to the ephemeral findings
    // report only, never into the committed footprint JSON.
    let started = std::time::Instant::now(); // lint:allow(det-no-wall-clock, self-timing of the CLI; no simulated state involved)
    let analysis = analyze(&root, &opts)?;
    let elapsed_ms = started.elapsed().as_millis();

    if !cli.quiet {
        for f in &analysis.findings {
            println!("{f}");
        }
    }
    if let Some(path) = &cli.json_out {
        let doc = report::findings_json(
            &analysis.findings,
            analysis.files_scanned,
            analysis.suppressions_honored,
            elapsed_ms,
        );
        std::fs::write(path, doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if opts.run_budget {
        let config = sift::config::SiftConfig::default();
        let doc = analyzer::budget::footprint_json(&config, &analysis.footprints, &analysis.stack);
        let results = root.join("results");
        std::fs::create_dir_all(&results)
            .map_err(|e| format!("cannot create {}: {e}", results.display()))?;
        let out = results.join("ANALYZER_footprint.json");
        std::fs::write(&out, doc).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        if !cli.quiet {
            for fp in &analysis.footprints {
                println!(
                    "analyzer: {:<10} fram {:>6} B (sys {} + app {})  sram {:>4} B  \
                     model {} B  lifetime {:.0} d  {}",
                    fp.version.to_string(),
                    fp.total_fram_bytes(),
                    fp.system_fram_bytes,
                    fp.app_fram_bytes,
                    fp.total_sram_bytes(),
                    fp.model_bytes,
                    fp.lifetime_days,
                    if fp.within_budget { "OK" } else { "OVER BUDGET" }
                );
            }
            for e in &analysis.stack.entries {
                println!(
                    "analyzer: stack {:<32} {:>4} B over {} frames  ({} \u{2192} …)",
                    e.label,
                    e.stack_bytes,
                    e.frames,
                    e.chain.first().map_or("?", |s| s.as_str())
                );
            }
            println!("analyzer: wrote {}", out.display());
        }
    }

    let errors = analysis
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = analysis.findings.len() - errors;
    let failures = analysis.failure_count(cli.deny_warnings);
    if !cli.quiet {
        println!(
            "analyzer: {} files, {} suppressions honored, {} errors, {} warnings{} in {} ms",
            analysis.files_scanned,
            analysis.suppressions_honored,
            errors,
            warnings,
            if cli.deny_warnings { " (denied)" } else { "" },
            elapsed_ms
        );
    }
    Ok(if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("analyzer: error: {msg}");
            ExitCode::from(2)
        }
    }
}
