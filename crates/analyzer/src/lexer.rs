//! A minimal Rust lexer: just enough fidelity to tell code from
//! comments and strings, classify numeric literals, and keep line
//! numbers — the substrate every lexical rule in this crate runs on.
//!
//! It deliberately does *not* parse: the rule set only needs token
//! streams (identifier adjacency, literal suffixes, brace matching), so
//! a full grammar would be cost without benefit. The corner cases that
//! matter for correctness on this workspace are handled explicitly:
//! nested block comments, raw/byte strings, lifetimes vs. char
//! literals, float-literal suffixes, and tuple-field access (`x.0.1`
//! must not lex `0.1` as a float).

/// One lexical token. Comments are kept (the suppression grammar lives
/// in them); whitespace is discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Lifetime such as `'a` (so it is never confused with a char).
    Lifetime,
    /// Integer literal, any radix, including its suffix.
    Int,
    /// Float literal; `f64_suffix` is true only for an explicit `f64`
    /// suffix (`1.0f64`, `2f64`). Unsuffixed floats report false.
    Float {
        /// Whether the literal carries an explicit `f64` suffix.
        f64_suffix: bool,
    },
    /// String literal (plain, raw, byte, or raw byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Any single punctuation byte (`::` arrives as two `:` tokens).
    Punct(char),
    /// Line or block comment, text included (with its `//` / `/*`).
    Comment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// True for tokens the rule passes should skip (comments).
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::Comment(_))
    }
}

/// Lex `src` into a token stream. Never fails: unexpected bytes become
/// `Punct` tokens, unterminated literals end at end-of-input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.i + off).copied()
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    /// Last non-comment token already emitted, if any.
    fn last_significant(&self) -> Option<&TokenKind> {
        self.out.iter().rev().find(|t| !t.is_trivia()).map(|t| &t.kind)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'b' | b'r' => {
                    if !self.try_string_prefix() {
                        self.ident();
                    }
                }
                b'"' => self.string_from(self.i),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                c if is_ident_start(c) => self.ident(),
                c => {
                    let line = self.line;
                    self.push(TokenKind::Punct(c as char), line);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.i += 1;
        }
        let text = self.src[start..self.i].to_string();
        let line = self.line;
        self.push(TokenKind::Comment(text), line);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let mut depth = 0usize;
        while self.i < self.bytes.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if self.peek(0) == Some(b'\n') {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        let text = self.src[start..self.i].to_string();
        self.push(TokenKind::Comment(text), start_line);
    }

    /// Handle `b"…"`, `b'…'`, `r"…"`, `r#"…"#`, `br#"…"#` starting at
    /// the current `b`/`r`. Returns false if the lookahead is actually
    /// an ordinary identifier (`bytes`, `r#raw_ident`, …).
    fn try_string_prefix(&mut self) -> bool {
        let mut j = self.i;
        if self.bytes[j] == b'b' {
            j += 1;
            match self.bytes.get(j) {
                Some(b'\'') => {
                    self.i = j;
                    self.quote();
                    return true;
                }
                Some(b'"') => {
                    self.string_from(j);
                    return true;
                }
                Some(b'r') => j += 1,
                _ => return false,
            }
        } else {
            j += 1; // past the 'r'
        }
        let mut hashes = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.bytes.get(j) != Some(&b'"') {
            return false; // raw identifier or plain ident starting with r/br
        }
        // Raw string: scan for `"` followed by `hashes` hashes.
        let start_line = self.line;
        j += 1;
        loop {
            match self.bytes.get(j) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    j += 1;
                }
                Some(b'"') => {
                    let tail = &self.bytes[j + 1..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
        self.i = j;
        self.push(TokenKind::Str, start_line);
        true
    }

    /// Plain (or byte) string whose opening quote is at byte `quote_at`.
    fn string_from(&mut self, quote_at: usize) {
        let start_line = self.line;
        let mut j = quote_at + 1;
        while let Some(&b) = self.bytes.get(j) {
            match b {
                // An escape consumes the next byte — which can be a real
                // newline (line-continuation `\` at end of line).
                b'\\' => {
                    if self.bytes.get(j + 1) == Some(&b'\n') {
                        self.line += 1;
                    }
                    j += 2;
                }
                b'"' => {
                    j += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        self.i = j;
        self.push(TokenKind::Str, start_line);
    }

    /// A `'`: lifetime or char literal.
    fn quote(&mut self) {
        let start_line = self.line;
        match self.peek(1) {
            Some(c) if is_ident_start(c) => {
                let mut j = self.i + 2;
                while self.bytes.get(j).copied().is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.push(TokenKind::Char, start_line);
                } else {
                    self.i = j;
                    self.push(TokenKind::Lifetime, start_line);
                }
            }
            _ => {
                let mut j = self.i + 1;
                while let Some(&b) = self.bytes.get(j) {
                    match b {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        b'\n' => break, // stray quote; don't eat the file
                        _ => j += 1,
                    }
                }
                self.i = j;
                self.push(TokenKind::Char, start_line);
            }
        }
    }

    fn number(&mut self) {
        let start_line = self.line;
        // After `.` the digits are a tuple index (`x.0`, `x.0.1`), never
        // the start of a float literal.
        let tuple_ctx = matches!(self.last_significant(), Some(TokenKind::Punct('.')));
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.i += 2;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.i += 1;
            }
            self.push(TokenKind::Int, start_line);
            return;
        }
        let eat_digits = |lx: &mut Self| {
            while lx.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                lx.i += 1;
            }
        };
        eat_digits(self);
        let mut is_float = false;
        if !tuple_ctx && self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(b) if b.is_ascii_digit() => {
                    self.i += 1;
                    eat_digits(self);
                    is_float = true;
                }
                Some(b'.') => {}                   // range: `0..n`
                Some(b) if is_ident_start(b) => {} // method call: `1.max(x)`
                _ => {
                    self.i += 1; // trailing-dot float: `1.`
                    is_float = true;
                }
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let has_exp = match self.peek(1) {
                Some(d) if d.is_ascii_digit() => true,
                Some(b'+' | b'-') => self.peek(2).is_some_and(|d| d.is_ascii_digit()),
                _ => false,
            };
            if has_exp {
                self.i += 2; // the `e` and the first sign/digit
                eat_digits(self);
                is_float = true;
            }
        }
        let sfx_start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        let kind = match &self.src[sfx_start..self.i] {
            "f64" => TokenKind::Float { f64_suffix: true },
            "f32" => TokenKind::Float { f64_suffix: false },
            _ if is_float => TokenKind::Float { f64_suffix: false },
            _ => TokenKind::Int,
        };
        self.push(kind, start_line);
    }

    fn ident(&mut self) {
        let start_line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        let text = self.src[start..self.i].to_string();
        self.push(TokenKind::Ident(text), start_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn floats_and_suffixes() {
        assert_eq!(
            kinds("1.0 2f64 3f32 4 0x1f 5e3 6.5e-2 7."),
            vec![
                TokenKind::Float { f64_suffix: false },
                TokenKind::Float { f64_suffix: true },
                TokenKind::Float { f64_suffix: false },
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float { f64_suffix: false },
                TokenKind::Float { f64_suffix: false },
                TokenKind::Float { f64_suffix: false },
            ]
        );
    }

    #[test]
    fn tuple_access_is_not_a_float() {
        let ks = kinds("x.0.1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Punct('.'),
                TokenKind::Int,
                TokenKind::Punct('.'),
                TokenKind::Int,
            ]
        );
    }

    #[test]
    fn ranges_and_method_calls_are_not_floats() {
        assert!(kinds("0..n").iter().all(|k| !matches!(k, TokenKind::Float { .. })));
        assert!(kinds("1.max(2)").iter().all(|k| !matches!(k, TokenKind::Float { .. })));
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(
            kinds("'a 'x' '\\n' b'z'"),
            vec![
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn strings_raw_strings_and_comments() {
        let src = "r#\"raw \"quoted\"\"# \"plain \\\" esc\" // line\n/* block /* nested */ */ x";
        let ks = kinds(src);
        assert_eq!(ks[0], TokenKind::Str);
        assert_eq!(ks[1], TokenKind::Str);
        assert!(matches!(ks[2], TokenKind::Comment(_)));
        assert!(matches!(ks[3], TokenKind::Comment(_)));
        assert_eq!(ks[4], TokenKind::Ident("x".into()));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n\"two\nline\"\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.kind == TokenKind::Ident("b".into()));
        assert_eq!(b.map(|t| t.line), Some(4));
    }

    #[test]
    fn line_continuation_escape_in_string_counts_its_newline() {
        // `\` at end of line escapes a *real* newline; the byte after
        // the escape must still advance the line counter.
        let src = "a\n\"one \\\n two\"\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.kind == TokenKind::Ident("b".into()));
        assert_eq!(b.map(|t| t.line), Some(4));
    }

    #[test]
    fn idents_starting_with_b_and_r() {
        assert_eq!(
            kinds("bytes rest b r"),
            vec![
                TokenKind::Ident("bytes".into()),
                TokenKind::Ident("rest".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("r".into()),
            ]
        );
    }
}
