//! The suppression grammar: `// lint:allow(rule-name, reason)`.
//!
//! Scope rules:
//! - a *trailing* comment (code earlier on the same line) suppresses
//!   that line only;
//! - an *own-line* comment suppresses the next statement or item — the
//!   scan runs to the matching `}` of the first brace group it meets,
//!   or to the first top-level `;`, whichever comes first. Stacked
//!   comments above one item therefore all cover the whole item, like
//!   attributes.
//!
//! The reason is mandatory, the rule name must exist, and a
//! suppression that never fires is itself reported (`suppress-unused`),
//! so stale allows cannot accumulate.

use crate::lexer::TokenKind;
use crate::rules::{lookup, Finding};
use crate::source::SourceFile;

/// One honored `lint:allow` with its resolved line scope.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id being allowed.
    pub rule: String,
    /// Mandatory justification text.
    pub reason: String,
    /// First line of the suppressed scope (inclusive).
    pub first_line: u32,
    /// Last line of the suppressed scope (inclusive).
    pub last_line: u32,
    /// Line of the comment that declared it.
    pub declared_at: u32,
}

/// Parse every `lint:allow` in `file`, returning the honored
/// suppressions plus meta findings for malformed ones. Comments inside
/// test regions are ignored, matching the rules themselves.
pub fn collect(file: &SourceFile) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut meta = Vec::new();
    for (idx, tok) in file.tokens.iter().enumerate() {
        let TokenKind::Comment(text) = &tok.kind else {
            continue;
        };
        // Suppressions live in plain comments only: doc comments are
        // prose (and routinely *describe* the grammar).
        if text.starts_with("///") || text.starts_with("//!")
            || text.starts_with("/**") || text.starts_with("/*!")
        {
            continue;
        }
        if file.in_test(tok.line) {
            continue;
        }
        let mut rest = text.as_str();
        while let Some(p) = rest.find("lint:allow(") {
            rest = &rest[p + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else {
                meta.push(Finding::new(
                    "suppress-missing-reason",
                    &file.rel_path,
                    tok.line,
                    "unterminated lint:allow(...)".to_string(),
                ));
                break;
            };
            let body = &rest[..close];
            rest = &rest[close + 1..];
            let (rule, reason) = match body.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (body.trim(), ""),
            };
            if reason.is_empty() {
                meta.push(Finding::new(
                    "suppress-missing-reason",
                    &file.rel_path,
                    tok.line,
                    format!("lint:allow({rule}) has no reason; the reason is mandatory"),
                ));
                continue;
            }
            if lookup(rule).is_none() {
                meta.push(Finding::new(
                    "suppress-unknown-rule",
                    &file.rel_path,
                    tok.line,
                    format!("lint:allow names unknown rule `{rule}`"),
                ));
                continue;
            }
            let (first_line, last_line) = scope_of(file, idx);
            sups.push(Suppression {
                rule: rule.to_string(),
                reason: reason.to_string(),
                first_line,
                last_line,
                declared_at: tok.line,
            });
        }
    }
    (sups, meta)
}

/// Resolve the line scope of the suppression comment at token `idx`.
fn scope_of(file: &SourceFile, idx: usize) -> (u32, u32) {
    let line = file.tokens[idx].line;
    let trailing = file.tokens[..idx]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| !t.is_trivia());
    if trailing {
        return (line, line);
    }
    // Own-line comment: cover the next statement or item.
    let sig: Vec<&crate::lexer::Token> = file.tokens[idx + 1..]
        .iter()
        .filter(|t| !t.is_trivia())
        .collect();
    let Some(first) = sig.first() else {
        return (line, line);
    };
    let mut end_line = first.line;
    let mut q = 0usize;
    let mut paren_depth = 0i32;
    while q < sig.len() {
        match &sig[q].kind {
            TokenKind::Punct('{') => {
                let mut depth = 0usize;
                while q < sig.len() {
                    match &sig[q].kind {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    q += 1;
                }
                end_line = sig[q.min(sig.len() - 1)].line;
                break;
            }
            TokenKind::Punct(';') if paren_depth == 0 => {
                end_line = sig[q].line;
                break;
            }
            TokenKind::Punct('}') if paren_depth == 0 => {
                // Comment was the last thing in a block; nothing follows.
                end_line = sig[q].line;
                break;
            }
            TokenKind::Punct('(' | '[') => paren_depth += 1,
            TokenKind::Punct(')' | ']') => paren_depth -= 1,
            _ => {}
        }
        q += 1;
    }
    if q >= sig.len() {
        end_line = sig[sig.len() - 1].line;
    }
    (line, end_line)
}

/// Apply `sups` to `findings`: drop suppressed findings, then report
/// any suppression that never fired. Returns (kept findings including
/// `suppress-unused`, number of findings actually suppressed).
pub fn apply(
    file: &SourceFile,
    findings: Vec<Finding>,
    sups: &[Suppression],
) -> (Vec<Finding>, usize) {
    let mut used = vec![false; sups.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let hit = sups.iter().enumerate().find(|(_, s)| {
            s.rule == f.rule && s.first_line <= f.line && f.line <= s.last_line
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    for (s, was_used) in sups.iter().zip(&used) {
        if !was_used {
            kept.push(Finding::new(
                "suppress-unused",
                &file.rel_path,
                s.declared_at,
                format!(
                    "lint:allow({}) covers lines {}-{} but nothing fires there; remove it",
                    s.rule, s.first_line, s.last_line
                ),
            ));
        }
    }
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/wiot/src/x.rs", src)
    }

    #[test]
    fn trailing_comment_scopes_to_its_line() {
        let f = parse("fn a() {\n  x.unwrap(); // lint:allow(lib-no-panic, init is infallible)\n  y.unwrap();\n}\n");
        let (sups, meta) = collect(&f);
        assert!(meta.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!((sups[0].first_line, sups[0].last_line), (2, 2));
    }

    #[test]
    fn own_line_comment_scopes_to_next_item() {
        let src = "// lint:allow(lib-no-panic, whole fn is a host-side shim)\nfn shim() {\n  a.unwrap();\n  b.unwrap();\n}\nfn other() {}\n";
        let (sups, _) = collect(&parse(src));
        // The scope opens at the comment itself (nothing fires on a
        // comment line) and closes at the item's `}` — not at `other`.
        assert_eq!((sups[0].first_line, sups[0].last_line), (1, 5));
    }

    #[test]
    fn own_line_comment_scopes_to_next_statement() {
        let src = "fn f() {\n  // lint:allow(lib-no-panic, checked above)\n  let v = x.unwrap();\n  let w = y.unwrap();\n}\n";
        let (sups, _) = collect(&parse(src));
        // Covers the comment line plus the next statement only — the
        // second unwrap on line 4 stays outside.
        assert_eq!((sups[0].first_line, sups[0].last_line), (2, 3));
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_reported() {
        let src = "// lint:allow(lib-no-panic)\n// lint:allow(no-such-rule, because)\nfn f() {}\n";
        let (sups, meta) = collect(&parse(src));
        assert!(sups.is_empty());
        let rules: Vec<_> = meta.iter().map(|m| m.rule).collect();
        assert_eq!(rules, vec!["suppress-missing-reason", "suppress-unknown-rule"]);
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let f = parse("// lint:allow(lib-no-panic, nothing here panics)\nfn f() {}\n");
        let (sups, _) = collect(&f);
        let (kept, n) = apply(&f, Vec::new(), &sups);
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "suppress-unused");
    }
}
