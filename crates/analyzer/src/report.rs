//! Rendering: human-readable finding lines and the machine-readable
//! JSON findings report (hand-rolled; the workspace carries no serde).

use crate::rules::{Finding, Severity};

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The findings report as a JSON document. `elapsed_ms` is the
/// analyzer's own wall time; it lives here (an ephemeral report) and
/// deliberately *not* in the committed footprint document, which must
/// stay byte-identical across runs.
pub fn findings_json(
    findings: &[Finding],
    files_scanned: usize,
    suppressions_honored: usize,
    elapsed_ms: u128,
) -> String {
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    let mut rows = String::new();
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\" }}",
            f.rule,
            f.severity,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"files_scanned\": {},\n",
            "  \"suppressions_honored\": {},\n",
            "  \"elapsed_ms\": {},\n",
            "  \"counts\": {{ \"error\": {}, \"warn\": {} }},\n",
            "  \"findings\": [\n{}\n  ]\n",
            "}}\n"
        ),
        files_scanned, suppressions_honored, elapsed_ms, errors, warnings, rows
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn findings_json_counts_severities() {
        let fs = vec![
            Finding::new("lib-no-panic", "crates/wiot/src/a.rs", 3, "m".into()),
            Finding::new("det-no-wall-clock", "crates/wiot/src/a.rs", 9, "m".into()),
        ];
        let doc = findings_json(&fs, 10, 2, 37);
        assert!(doc.contains("\"error\": 1"));
        assert!(doc.contains("\"warn\": 1"));
        assert!(doc.contains("\"files_scanned\": 10"));
        assert!(doc.contains("\"elapsed_ms\": 37"));
    }
}
