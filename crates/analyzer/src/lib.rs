//! `analyzer`: the workspace's own static-analysis pass.
//!
//! The paper's contribution is making SIFT *fit* an MSP430-class
//! wearable — fixed-point arithmetic, a hard RAM/ROM budget, no dynamic
//! allocation — and the fleet engine's headline guarantee is a
//! byte-identical report digest. Both are conventions a single stray
//! line can silently break. This crate turns them into machine-checked
//! invariants, with three passes:
//!
//! 1. **embedded** — lexical rules over the designated embedded modules
//!    (`dsp::fixed`, `dsp::embedded_math`, `ml::embedded`, the
//!    `amulet-sim` apps): no `f64`, no float literals, no heap
//!    allocation, no panicking operations, no unchecked indexing.
//! 2. **determinism** — workspace-wide bans protecting the
//!    `FleetReport` digest: no `HashMap`/`HashSet`, no
//!    `Instant`/`SystemTime` outside `bench`, no thread APIs outside
//!    `wiot::fleet`.
//! 3. **budget** — a semantic check that recomputes each detector
//!    flavor's static footprint from the `amulet-sim` profiler and the
//!    `ml` model format and compares it against the Amulet memory map
//!    and the paper's Table III, regenerating
//!    `results/ANALYZER_footprint.json`.
//!
//! Violations are suppressed inline with
//! `// lint:allow(rule-name, reason)` — see [`suppress`] for the scope
//! grammar. The analyzer analyzes itself: this crate is part of the
//! workspace walk and carries the same `lib-no-panic` hygiene rule as
//! `wiot` and `sift`.

#![forbid(unsafe_code)]

pub mod budget;
pub mod callgraph;
pub mod lexer;
pub mod lexical;
pub mod report;
pub mod rules;
pub mod source;
pub mod suppress;

use rules::{lookup, Finding, Pass, Severity};
use source::{classify, FileClass, SourceFile};
use std::path::{Path, PathBuf};
use suppress::Suppression;

/// Analyzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Treat warnings as failures.
    pub deny_warnings: bool,
    /// Run the semantic budget pass (needs no source, only cost tables).
    pub run_budget: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            deny_warnings: false,
            run_budget: true,
        }
    }
}

/// Everything one analyzer run produced.
#[derive(Debug)]
pub struct Analysis {
    /// Findings that survived suppression, in file/line order.
    pub findings: Vec<Finding>,
    /// Footprints from the budget pass (empty if it didn't run).
    pub footprints: Vec<budget::FlavorFootprint>,
    /// Worst-case stack certificates from the call-graph pass.
    pub stack: callgraph::StackReport,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings removed by honored suppressions.
    pub suppressions_honored: usize,
}

impl Analysis {
    /// Number of findings that fail the run under `deny_warnings`.
    pub fn failure_count(&self, deny_warnings: bool) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error || deny_warnings)
            .count()
    }
}

/// Locate the workspace root by walking up from `start` to the first
/// `Cargo.toml` that declares `[workspace]`.
///
/// # Errors
///
/// Returns a description when no ancestor of `start` is a workspace.
pub fn find_workspace_root_from(start: &Path) -> Result<PathBuf, String> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(format!(
        "no workspace Cargo.toml above {}",
        start.display()
    ))
}

/// [`find_workspace_root_from`] starting at the current directory.
///
/// # Errors
///
/// Propagates I/O failure or a missing workspace manifest.
pub fn find_workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    find_workspace_root_from(&cwd)
}

/// Collect every `crates/*/src/**/*.rs` under `root`, as sorted
/// (workspace-relative path, contents) pairs. Sorting makes the
/// analyzer's own output deterministic.
///
/// # Errors
///
/// Returns a description on any unreadable directory or file.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            crate_dirs.push(src);
        }
    }
    for src in crate_dirs {
        walk_rs(&src, &mut out)?;
    }
    let rootstr = root.to_path_buf();
    let mut pairs = Vec::with_capacity(out.len());
    for path in out {
        let rel = path
            .strip_prefix(&rootstr)
            .map_err(|_| format!("path {} escapes root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        pairs.push((rel, text));
    }
    pairs.sort();
    Ok(pairs)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One workspace file, parsed exactly once and shared by every pass:
/// the lexical rules, the suppression grammar, and the interprocedural
/// call-graph pass all read the same token stream.
#[derive(Debug)]
pub struct ParsedFile {
    /// Lexed source with its test-region map.
    pub file: SourceFile,
    /// Which rule groups apply here.
    pub class: FileClass,
    /// Honored `lint:allow` suppressions.
    pub sups: Vec<Suppression>,
    /// Meta findings from malformed suppressions.
    pub meta: Vec<Finding>,
}

/// Lex and classify every workspace source file once.
///
/// # Errors
///
/// Returns a description when sources cannot be read.
pub fn parse_workspace(root: &Path) -> Result<Vec<ParsedFile>, String> {
    let sources = collect_sources(root)?;
    Ok(sources
        .iter()
        .map(|(rel, text)| {
            let file = SourceFile::parse(rel, text);
            let (sups, meta) = suppress::collect(&file);
            ParsedFile {
                class: classify(rel),
                file,
                sups,
                meta,
            }
        })
        .collect())
}

/// Run the lexical passes plus suppression handling on one file's
/// source. This is the unit the fixture tests drive: `rel_path` decides
/// which rules apply (see [`source::classify`]). The interprocedural
/// pass needs the whole workspace and is not part of this unit.
pub fn analyze_source(rel_path: &str, text: &str) -> (Vec<Finding>, usize) {
    let file = SourceFile::parse(rel_path, text);
    let class = classify(rel_path);
    let raw = lexical::scan(&file, &class);
    let (sups, mut meta) = suppress::collect(&file);
    let (mut kept, honored) = suppress::apply(&file, raw, &sups);
    meta.append(&mut kept);
    meta.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (meta, honored)
}

/// Analyze the whole workspace under `root`: each file is tokenized
/// once, the lexical and call-graph passes run over the shared parse,
/// suppressions apply to both, and the budget pass (when enabled) gates
/// static footprints *and* the certified worst-case stack.
///
/// # Errors
///
/// Returns a description when sources cannot be read; rule violations
/// are *findings*, not errors.
pub fn analyze(root: &Path, opts: &Options) -> Result<Analysis, String> {
    let files = parse_workspace(root)?;
    let files_scanned = files.len();
    let cg = callgraph::analyze(&files);

    // Group raw findings per file so one suppression pass covers both
    // the lexical and the interprocedural rules.
    let mut raw: Vec<Vec<Finding>> = files
        .iter()
        .map(|pf| lexical::scan(&pf.file, &pf.class))
        .collect();
    let index: std::collections::BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, pf)| (pf.file.rel_path.as_str(), i))
        .collect();
    let mut findings = Vec::new();
    for f in cg.findings {
        match index.get(f.file.as_str()) {
            Some(&i) => raw[i].push(f),
            None => findings.push(f),
        }
    }
    let mut honored = 0usize;
    for (pf, fs) in files.iter().zip(raw) {
        let (mut kept, h) = suppress::apply(&pf.file, fs, &pf.sups);
        honored += h;
        findings.extend(pf.meta.iter().cloned());
        findings.append(&mut kept);
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let mut footprints = Vec::new();
    if opts.run_budget {
        let config = sift::config::SiftConfig::default();
        footprints = budget::compute_footprints(&config);
        findings.append(&mut budget::budget_findings(&footprints));
        findings.append(&mut budget::stack_findings(&footprints, &cg.stack));
        findings.append(&mut budget::slab_findings());
    }
    Ok(Analysis {
        findings,
        footprints,
        stack: cg.stack,
        files_scanned,
        suppressions_honored: honored,
    })
}

/// The findings `BLESS=1` golden-trace regeneration refuses to bless
/// over: the determinism pass *and* the interprocedural call-graph
/// pass. A build that cannot prove its digest paths deterministic — or
/// whose embedded entry points reach panics, recursion, or dynamic
/// dispatch — must not overwrite a golden fixture.
///
/// # Errors
///
/// Returns a description when sources cannot be read.
pub fn gate_findings(root: &Path) -> Result<Vec<Finding>, String> {
    let opts = Options {
        deny_warnings: false,
        run_budget: false,
    };
    let analysis = analyze(root, &opts)?;
    Ok(analysis
        .findings
        .into_iter()
        .filter(|f| {
            lookup(f.rule)
                .is_some_and(|r| matches!(r.pass, Pass::Determinism | Pass::CallGraph))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_finding_is_dropped_and_counted() {
        let src = "fn f() {\n  x.unwrap(); // lint:allow(lib-no-panic, poll after ready check)\n}\n";
        let (fs, honored) = analyze_source("crates/wiot/src/x.rs", src);
        assert!(fs.is_empty(), "{fs:?}");
        assert_eq!(honored, 1);
    }

    #[test]
    fn workspace_root_discovery() {
        let root = find_workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR")));
        let root = root.expect("workspace root");
        assert!(root.join("crates/analyzer").is_dir());
    }

    #[test]
    fn whole_workspace_is_clean() {
        let root = find_workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let analysis = analyze(&root, &Options::default()).expect("analysis");
        let failures: Vec<_> = analysis.findings.iter().map(ToString::to_string).collect();
        assert!(
            analysis.failure_count(true) == 0,
            "workspace has findings:\n{}",
            failures.join("\n")
        );
        assert!(analysis.files_scanned > 50);
        assert_eq!(analysis.footprints.len(), 3);
        // Every embedded entry point must have a certified worst-case
        // stack (the ISSUE floor is 4; the registry pins 6).
        assert_eq!(
            analysis.stack.entries.len(),
            callgraph::ENTRY_POINTS.len(),
            "missing stack certificates: {:?}",
            analysis.stack.entries.iter().map(|e| &e.label).collect::<Vec<_>>()
        );
        for e in &analysis.stack.entries {
            assert!(e.stack_bytes > 0, "{} has no stack bound", e.label);
            assert!(!e.chain.is_empty(), "{} has no chain", e.label);
        }
    }
}
