//! `analyzer`: the workspace's own static-analysis pass.
//!
//! The paper's contribution is making SIFT *fit* an MSP430-class
//! wearable — fixed-point arithmetic, a hard RAM/ROM budget, no dynamic
//! allocation — and the fleet engine's headline guarantee is a
//! byte-identical report digest. Both are conventions a single stray
//! line can silently break. This crate turns them into machine-checked
//! invariants, with three passes:
//!
//! 1. **embedded** — lexical rules over the designated embedded modules
//!    (`dsp::fixed`, `dsp::embedded_math`, `ml::embedded`, the
//!    `amulet-sim` apps): no `f64`, no float literals, no heap
//!    allocation, no panicking operations, no unchecked indexing.
//! 2. **determinism** — workspace-wide bans protecting the
//!    `FleetReport` digest: no `HashMap`/`HashSet`, no
//!    `Instant`/`SystemTime` outside `bench`, no thread APIs outside
//!    `wiot::fleet`.
//! 3. **budget** — a semantic check that recomputes each detector
//!    flavor's static footprint from the `amulet-sim` profiler and the
//!    `ml` model format and compares it against the Amulet memory map
//!    and the paper's Table III, regenerating
//!    `results/ANALYZER_footprint.json`.
//!
//! Violations are suppressed inline with
//! `// lint:allow(rule-name, reason)` — see [`suppress`] for the scope
//! grammar. The analyzer analyzes itself: this crate is part of the
//! workspace walk and carries the same `lib-no-panic` hygiene rule as
//! `wiot` and `sift`.

#![forbid(unsafe_code)]

pub mod budget;
pub mod lexer;
pub mod lexical;
pub mod report;
pub mod rules;
pub mod source;
pub mod suppress;

use rules::{lookup, Finding, Pass, Severity};
use source::{classify, SourceFile};
use std::path::{Path, PathBuf};

/// Analyzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Treat warnings as failures.
    pub deny_warnings: bool,
    /// Run the semantic budget pass (needs no source, only cost tables).
    pub run_budget: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            deny_warnings: false,
            run_budget: true,
        }
    }
}

/// Everything one analyzer run produced.
#[derive(Debug)]
pub struct Analysis {
    /// Findings that survived suppression, in file/line order.
    pub findings: Vec<Finding>,
    /// Footprints from the budget pass (empty if it didn't run).
    pub footprints: Vec<budget::FlavorFootprint>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings removed by honored suppressions.
    pub suppressions_honored: usize,
}

impl Analysis {
    /// Number of findings that fail the run under `deny_warnings`.
    pub fn failure_count(&self, deny_warnings: bool) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error || deny_warnings)
            .count()
    }
}

/// Locate the workspace root by walking up from `start` to the first
/// `Cargo.toml` that declares `[workspace]`.
///
/// # Errors
///
/// Returns a description when no ancestor of `start` is a workspace.
pub fn find_workspace_root_from(start: &Path) -> Result<PathBuf, String> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(format!(
        "no workspace Cargo.toml above {}",
        start.display()
    ))
}

/// [`find_workspace_root_from`] starting at the current directory.
///
/// # Errors
///
/// Propagates I/O failure or a missing workspace manifest.
pub fn find_workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    find_workspace_root_from(&cwd)
}

/// Collect every `crates/*/src/**/*.rs` under `root`, as sorted
/// (workspace-relative path, contents) pairs. Sorting makes the
/// analyzer's own output deterministic.
///
/// # Errors
///
/// Returns a description on any unreadable directory or file.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            crate_dirs.push(src);
        }
    }
    for src in crate_dirs {
        walk_rs(&src, &mut out)?;
    }
    let rootstr = root.to_path_buf();
    let mut pairs = Vec::with_capacity(out.len());
    for path in out {
        let rel = path
            .strip_prefix(&rootstr)
            .map_err(|_| format!("path {} escapes root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        pairs.push((rel, text));
    }
    pairs.sort();
    Ok(pairs)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the lexical passes plus suppression handling on one file's
/// source. This is the unit the fixture tests drive: `rel_path` decides
/// which rules apply (see [`source::classify`]).
pub fn analyze_source(rel_path: &str, text: &str) -> (Vec<Finding>, usize) {
    let file = SourceFile::parse(rel_path, text);
    let class = classify(rel_path);
    let raw = lexical::scan(&file, &class);
    let (sups, mut meta) = suppress::collect(&file);
    let (mut kept, honored) = suppress::apply(&file, raw, &sups);
    meta.append(&mut kept);
    meta.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (meta, honored)
}

/// Analyze the whole workspace under `root`.
///
/// # Errors
///
/// Returns a description when sources cannot be read; rule violations
/// are *findings*, not errors.
pub fn analyze(root: &Path, opts: &Options) -> Result<Analysis, String> {
    let sources = collect_sources(root)?;
    let mut findings = Vec::new();
    let mut honored = 0usize;
    let files_scanned = sources.len();
    for (rel, text) in &sources {
        let (mut fs, h) = analyze_source(rel, text);
        findings.append(&mut fs);
        honored += h;
    }
    let mut footprints = Vec::new();
    if opts.run_budget {
        let config = sift::config::SiftConfig::default();
        footprints = budget::compute_footprints(&config);
        findings.append(&mut budget::budget_findings(&footprints));
    }
    Ok(Analysis {
        findings,
        footprints,
        files_scanned,
        suppressions_honored: honored,
    })
}

/// Only the determinism-pass findings for the workspace under `root`.
///
/// This is the gate `BLESS=1` golden-trace regeneration runs before it
/// will overwrite a fixture: a build that cannot prove its digest paths
/// deterministic must not bless traces.
///
/// # Errors
///
/// Returns a description when sources cannot be read.
pub fn determinism_findings(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = collect_sources(root)?;
    let mut findings = Vec::new();
    for (rel, text) in &sources {
        let (fs, _) = analyze_source(rel, text);
        findings.extend(
            fs.into_iter()
                .filter(|f| lookup(f.rule).is_some_and(|r| r.pass == Pass::Determinism)),
        );
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_finding_is_dropped_and_counted() {
        let src = "fn f() {\n  x.unwrap(); // lint:allow(lib-no-panic, poll after ready check)\n}\n";
        let (fs, honored) = analyze_source("crates/wiot/src/x.rs", src);
        assert!(fs.is_empty(), "{fs:?}");
        assert_eq!(honored, 1);
    }

    #[test]
    fn workspace_root_discovery() {
        let root = find_workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR")));
        let root = root.expect("workspace root");
        assert!(root.join("crates/analyzer").is_dir());
    }

    #[test]
    fn whole_workspace_is_clean() {
        let root = find_workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let analysis = analyze(&root, &Options::default()).expect("analysis");
        let failures: Vec<_> = analysis.findings.iter().map(ToString::to_string).collect();
        assert!(
            analysis.failure_count(true) == 0,
            "workspace has findings:\n{}",
            failures.join("\n")
        );
        assert!(analysis.files_scanned > 50);
        assert_eq!(analysis.footprints.len(), 3);
    }
}
