//! The token-level rule passes: embedded-profile and determinism.
//!
//! Each check is a small adjacency pattern over the significant (non-
//! comment) token stream; test regions are excluded afterwards by the
//! caller via [`SourceFile::in_test`].

use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::source::{FileClass, SourceFile};

/// Keywords that can legally precede `[` without it being an index
/// expression (`let [a, b] = …`, `return [x]`, `in [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "if", "else", "match", "break", "box", "move", "while",
    "as", "dyn", "where",
];

/// Macros that abort on the device (embedded scope). `debug_assert!`
/// is deliberately absent: it compiles out of release firmware.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Heap-allocating method names (after a `.`).
const HEAP_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "into_boxed_slice"];

/// Run every lexical rule that `class` enables on `file`. Findings in
/// test regions are already filtered out here.
pub fn scan(file: &SourceFile, class: &FileClass) -> Vec<Finding> {
    let sig: Vec<&crate::lexer::Token> =
        file.tokens.iter().filter(|t| !t.is_trivia()).collect();
    let kind = |k: usize| sig.get(k).map(|t| &t.kind);
    let is_punct = |k: usize, c: char| matches!(kind(k), Some(TokenKind::Punct(p)) if *p == c);
    let mut out = Vec::new();
    let mut push = |rule: &'static str, line: u32, msg: String| {
        if !file.in_test(line) {
            out.push(Finding::new(rule, &file.rel_path, line, msg));
        }
    };

    // Pinned-profile modules (checkpoint codec, telemetry hot path,
    // survival policy, detector backends — the `rules::PINNED_PROFILES`
    // table) report every embedded-profile violation under their one
    // dedicated error-severity rule: there, a panic or allocation is a
    // corrupted checkpoint / perturbed hot loop / broken integer
    // contract, not just a style problem.
    let (f64_rule, float_lit_rule, heap_rule, panic_rule, index_rule) =
        if let Some(pinned) = class.pinned_rule {
            (pinned, pinned, pinned, pinned, pinned)
        } else {
            (
                "embedded-no-f64",
                "embedded-no-float-literal",
                "embedded-no-heap-alloc",
                "embedded-no-panic",
                "embedded-no-slice-index",
            )
        };

    for (p, tok) in sig.iter().enumerate() {
        let line = tok.line;
        match &tok.kind {
            TokenKind::Ident(name) => {
                let name = name.as_str();
                let prev_dot = p > 0 && is_punct(p - 1, '.');
                let next_bang = is_punct(p + 1, '!');
                let next_path = is_punct(p + 1, ':') && is_punct(p + 2, ':');
                let prev_path = p >= 2 && is_punct(p - 1, ':') && is_punct(p - 2, ':');

                if class.float_strict && name == "f64" {
                    push(
                        f64_rule,
                        line,
                        "f64 used in a float-strict embedded module".to_string(),
                    );
                }
                if class.embedded {
                    if matches!(name, "Vec" | "Box" | "String") && next_path {
                        push(
                            heap_rule,
                            line,
                            format!("{name}:: allocation in an embedded module"),
                        );
                    }
                    if matches!(name, "vec" | "format") && next_bang {
                        push(
                            heap_rule,
                            line,
                            format!("{name}! allocates in an embedded module"),
                        );
                    }
                    if HEAP_METHODS.contains(&name) && prev_dot {
                        push(
                            heap_rule,
                            line,
                            format!(".{name}() allocates in an embedded module"),
                        );
                    }
                    if matches!(name, "unwrap" | "expect") && prev_dot {
                        push(
                            panic_rule,
                            line,
                            format!(".{name}() can panic in an embedded module"),
                        );
                    }
                    if PANIC_MACROS.contains(&name) && next_bang {
                        push(
                            panic_rule,
                            line,
                            format!("{name}! aborts on the device"),
                        );
                    }
                } else if class.lib_no_panic {
                    if matches!(name, "unwrap" | "expect") && prev_dot {
                        push(
                            "lib-no-panic",
                            line,
                            format!(".{name}() on a library runtime path; propagate a Result"),
                        );
                    }
                    if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                        && next_bang
                    {
                        push(
                            "lib-no-panic",
                            line,
                            format!("{name}! on a library runtime path; return an error"),
                        );
                    }
                }
                if !class.det_exempt {
                    if matches!(name, "HashMap" | "HashSet") {
                        push(
                            "det-no-hash-collections",
                            line,
                            format!("{name} iteration order is nondeterministic; use BTreeMap/BTreeSet or a Vec"),
                        );
                    }
                    if matches!(name, "Instant" | "SystemTime") {
                        push(
                            "det-no-wall-clock",
                            line,
                            format!("{name} reads the wall clock; simulated time only outside bench"),
                        );
                    }
                    if !class.thread_ok
                        && (name == "mpsc" || (name == "thread" && (next_path || prev_path)))
                    {
                        push(
                            "det-no-thread-api",
                            line,
                            format!("`{name}` outside wiot::fleet; parallelism lives behind the fleet engine only"),
                        );
                    }
                }
            }
            TokenKind::Float { f64_suffix } if class.float_strict => {
                if *f64_suffix {
                    push(
                        f64_rule,
                        line,
                        "f64-suffixed literal in a float-strict embedded module".to_string(),
                    );
                } else {
                    push(
                        float_lit_rule,
                        line,
                        "float literal in a float-strict embedded module".to_string(),
                    );
                }
            }
            TokenKind::Punct('[') if class.embedded && p > 0 => {
                let indexing = match kind(p - 1) {
                    Some(TokenKind::Ident(prev)) => {
                        !NON_INDEX_KEYWORDS.contains(&prev.as_str())
                            // `name![…]` macro-with-brackets: prev sig
                            // token of `[` is `!`, not an ident, so no
                            // extra case needed here.
                    }
                    Some(TokenKind::Punct(')' | ']')) => true,
                    _ => false,
                };
                if indexing {
                    push(
                        index_rule,
                        line,
                        "bracket indexing can panic; prefer get()/chunks in embedded code"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn findings(rel: &str, src: &str) -> Vec<&'static str> {
        let file = SourceFile::parse(rel, src);
        scan(&file, &classify(rel))
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn float_rules_fire_only_in_strict_modules() {
        let src = "fn f(x: f64) -> f64 { x * 2.0 + 1.0f64 }\n";
        let hits = findings("crates/dsp/src/fixed.rs", src);
        assert_eq!(
            hits,
            vec![
                "embedded-no-f64",
                "embedded-no-f64",
                "embedded-no-float-literal",
                "embedded-no-f64"
            ]
        );
        assert!(findings("crates/wiot/src/scenario.rs", src).is_empty());
    }

    #[test]
    fn heap_and_panic_rules_in_app_code() {
        let src = "fn f() { let v = vec![1]; let s = format!(\"x\"); q.unwrap(); r[0]; }\n";
        let hits = findings("crates/amulet-sim/src/apps/demo.rs", src);
        assert!(hits.contains(&"embedded-no-heap-alloc"));
        assert!(hits.contains(&"embedded-no-panic"));
        assert!(hits.contains(&"embedded-no-slice-index"));
        // No float rules in app code: cycle metering is host-side f64.
        assert!(!hits.contains(&"embedded-no-f64"));
    }

    #[test]
    fn slice_patterns_and_types_are_not_indexing() {
        let src = "fn f(a: &[u8]) { let [x, y] = [1, 2]; let _ = (x, y, a); }\n";
        assert!(findings("crates/amulet-sim/src/apps/demo.rs", src).is_empty());
    }

    #[test]
    fn determinism_rules_are_workspace_wide() {
        let src = "use std::collections::HashMap;\nuse std::time::Instant;\nfn f() { std::thread::spawn(|| {}); }\n";
        let hits = findings("crates/physio-sim/src/record.rs", src);
        assert_eq!(
            hits,
            vec!["det-no-hash-collections", "det-no-wall-clock", "det-no-thread-api"]
        );
        assert!(findings("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn fleet_may_thread_but_not_hash() {
        let src = "fn f() { std::thread::scope(|_| {}); let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let hits = findings("crates/wiot/src/fleet.rs", src);
        assert!(!hits.contains(&"det-no-thread-api"));
        assert!(hits.contains(&"det-no-hash-collections"));
    }

    #[test]
    fn lib_no_panic_is_warn_scope() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }\n";
        let hits = findings("crates/sift/src/trainer.rs", src);
        assert_eq!(hits, vec!["lib-no-panic", "lib-no-panic", "lib-no-panic"]);
        // Not enforced outside wiot/sift/analyzer:
        assert!(findings("crates/physio-sim/src/record.rs", src).is_empty());
    }

    #[test]
    fn checkpoint_modules_get_the_dedicated_rule() {
        // One violation of each kind the embedded profile covers: heap
        // alloc, panic, bracket index, f64, and a plain float literal.
        let src = "fn f(d: f64) { let v = q.to_vec(); v.unwrap(); r[0]; let x = 2.5; }\n";
        for rel in ["crates/amulet-sim/src/nvram.rs", "crates/sift/src/checkpoint.rs"] {
            let hits = findings(rel, src);
            assert!(!hits.is_empty(), "{rel}: fixture should trip the profile");
            assert!(
                hits.iter().all(|&r| r == "ckpt-embedded-profile"),
                "{rel}: every finding routes to the dedicated rule, got {hits:?}"
            );
        }
        // The same source in an ordinary embedded module keeps the
        // per-rule ids (and no float rules outside float-strict files).
        let app = findings("crates/amulet-sim/src/apps/demo.rs", src);
        assert!(!app.contains(&"ckpt-embedded-profile"));
        assert!(app.contains(&"embedded-no-heap-alloc"));
    }

    #[test]
    fn telemetry_hot_path_gets_the_dedicated_rule() {
        let src = "fn f(d: f64) { let v = q.to_vec(); v.unwrap(); r[0]; let x = 2.5; }\n";
        let hits = findings("crates/telemetry/src/record.rs", src);
        assert!(!hits.is_empty(), "fixture should trip the profile");
        assert!(
            hits.iter().all(|&r| r == "tele-embedded-profile"),
            "every finding routes to the dedicated rule, got {hits:?}"
        );
        // The rest of the telemetry crate is ordinary library code:
        // warn-level panic hygiene, no float/heap/index rules.
        let lib = findings("crates/telemetry/src/lib.rs", src);
        assert_eq!(lib, vec!["lib-no-panic"]);
    }

    #[test]
    fn survival_policy_gets_the_dedicated_rule() {
        let src = "fn f(d: f64) { let v = q.to_vec(); v.unwrap(); r[0]; let x = 2.5; }\n";
        let hits = findings("crates/wiot/src/survival.rs", src);
        assert!(!hits.is_empty(), "fixture should trip the profile");
        assert!(
            hits.iter().all(|&r| r == "survival-embedded-profile"),
            "every finding routes to the dedicated rule, got {hits:?}"
        );
        // Neighboring wiot modules stay ordinary library code.
        let lib = findings("crates/wiot/src/adaptive.rs", src);
        assert!(!lib.contains(&"survival-embedded-profile"));
    }

    #[test]
    fn detector_backend_module_gets_the_dedicated_rule() {
        let src = "fn f(d: f64) { let v = q.to_vec(); v.unwrap(); r[0]; let x = 2.5; }\n";
        let hits = findings("crates/ml/src/tsetlin.rs", src);
        assert!(!hits.is_empty(), "fixture should trip the profile");
        assert!(
            hits.iter().all(|&r| r == "detector-embedded-profile"),
            "every finding routes to the dedicated rule, got {hits:?}"
        );
        // The SVM translation next door keeps its original rule ids.
        let svm = findings("crates/ml/src/embedded.rs", src);
        assert!(!svm.is_empty());
        assert!(!svm.contains(&"detector-embedded-profile"));
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); let m: HashMap<u8,u8>; }\n}\n";
        assert!(findings("crates/sift/src/trainer.rs", src).is_empty());
    }
}
