//! Parsed source files: token stream, `#[cfg(test)]` region map, and
//! the per-file rule classification (which passes apply where).

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::PINNED_PROFILES;

/// The three embedded modules under the strict no-float profile, plus
/// everything matched by [`classify`]'s app-code prefix. Paths are
/// workspace-relative with forward slashes.
const FLOAT_STRICT: &[&str] = &[
    "crates/dsp/src/fixed.rs",
    "crates/dsp/src/embedded_math.rs",
    "crates/ml/src/embedded.rs",
];

/// Amulet application code: heap/panic/indexing rules apply, float
/// rules do not (its `f64` cycle metering is host-side by design).
const APP_CODE_PREFIX: &str = "crates/amulet-sim/src/apps/";

/// Crates the determinism pass skips entirely: the bench harness times
/// things on purpose, and the vendored stand-ins (`rand`, `proptest`,
/// `criterion`) are test/bench infrastructure, not report paths.
const DET_EXEMPT_CRATES: &[&str] = &["bench", "rand", "proptest", "criterion"];

/// The files allowed to touch thread APIs: the resident fleet engine,
/// whose ordered reduction makes its use of `std::thread::scope` +
/// `mpsc` deterministic by construction, and the slab streaming engine,
/// whose bounded reorder window retires summaries in the same
/// device-index order.
const THREAD_OK: &[&str] = &["crates/wiot/src/fleet.rs", "crates/wiot/src/slab.rs"];

/// Crates under the warn-level library panic-hygiene rule.
const LIB_NO_PANIC_CRATES: &[&str] = &["wiot", "sift", "analyzer", "telemetry"];

/// Which rule groups apply to a file, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Embedded float rules (`embedded-no-f64`, `embedded-no-float-literal`).
    pub float_strict: bool,
    /// Embedded heap / panic / slice-index rules.
    pub embedded: bool,
    /// Skip the determinism pass for this file.
    pub det_exempt: bool,
    /// Thread APIs are allowed in this file.
    pub thread_ok: bool,
    /// `lib-no-panic` hygiene applies (non-embedded library code).
    pub lib_no_panic: bool,
    /// The dedicated error-severity rule all embedded-profile findings
    /// route to when this file is covered by a row of
    /// [`PINNED_PROFILES`] (e.g. `ckpt-embedded-profile`).
    pub pinned_rule: Option<&'static str>,
}

/// Classify a workspace-relative path (`crates/<name>/src/...`).
pub fn classify(rel_path: &str) -> FileClass {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let pinned_rule = PINNED_PROFILES
        .iter()
        .find(|p| p.modules.contains(&rel_path))
        .map(|p| p.rule);
    let float_strict = FLOAT_STRICT.contains(&rel_path) || pinned_rule.is_some();
    let embedded = float_strict || rel_path.starts_with(APP_CODE_PREFIX);
    FileClass {
        float_strict,
        embedded,
        det_exempt: DET_EXEMPT_CRATES.contains(&crate_name),
        thread_ok: THREAD_OK.contains(&rel_path),
        lib_no_panic: LIB_NO_PANIC_CRATES.contains(&crate_name) && !embedded,
        pinned_rule,
    }
}

/// A lexed file with its test-region map.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]`
    /// items; rules do not fire inside them.
    pub test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lex `text` and locate its test regions.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let test_spans = find_test_spans(&tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            test_spans,
        }
    }

    /// True if `line` falls inside a test region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

fn is_punct(kind: &TokenKind, c: char) -> bool {
    matches!(kind, TokenKind::Punct(p) if *p == c)
}

fn is_ident(kind: &TokenKind, name: &str) -> bool {
    matches!(kind, TokenKind::Ident(s) if s == name)
}

/// Find the inclusive line spans of items annotated with a test
/// attribute (`#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]`).
/// `#[cfg(not(test))]` is deliberately *not* a test region.
///
/// The item span runs from the attribute to the matching `}` of the
/// item's body (or its terminating `;`), found by brace counting over
/// the token stream — code *after* a test module is scanned normally.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let kind = |k: usize| &sig[k].kind;
    let mut spans = Vec::new();
    let mut k = 0usize;
    while k + 1 < sig.len() {
        if !(is_punct(kind(k), '#') && is_punct(kind(k + 1), '[')) {
            k += 1;
            continue;
        }
        let attr_line = sig[k].line;
        // Collect the attribute's tokens up to the matching `]`.
        let (attr_end, is_test) = scan_attribute(&sig, k + 1);
        if !is_test {
            k = attr_end + 1;
            continue;
        }
        // Skip any further stacked attributes.
        let mut n = attr_end + 1;
        while n + 1 < sig.len() && is_punct(kind(n), '#') && is_punct(kind(n + 1), '[') {
            n = scan_attribute(&sig, n + 1).0 + 1;
        }
        // The annotated item ends at its body's matching `}` or, for
        // body-less items, the first `;`.
        let mut end_line = attr_line;
        let mut q = n;
        while q < sig.len() {
            if is_punct(kind(q), '{') {
                let mut depth = 0usize;
                while q < sig.len() {
                    if is_punct(kind(q), '{') {
                        depth += 1;
                    } else if is_punct(kind(q), '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    q += 1;
                }
                end_line = sig[q.min(sig.len() - 1)].line;
                break;
            }
            if is_punct(kind(q), ';') {
                end_line = sig[q].line;
                break;
            }
            q += 1;
        }
        spans.push((attr_line, end_line));
        k = q + 1;
    }
    spans
}

/// From the `[` at `open`, return (index of matching `]`, whether the
/// attribute marks a test item).
fn scan_attribute(sig: &[&Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut m = open;
    while m < sig.len() {
        match &sig[m].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k if is_ident(k, "test") => saw_test = true,
            k if is_ident(k, "not") => saw_not = true,
            _ => {}
        }
        m += 1;
    }
    (m.min(sig.len() - 1), saw_test && !saw_not)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_span_does_not_swallow_trailing_code() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() { y.unwrap(); }\n";
        let f = SourceFile::parse("crates/wiot/src/x.rs", src);
        assert_eq!(f.test_spans, vec![(2, 5)]);
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn gated() {}\n";
        let f = SourceFile::parse("crates/wiot/src/x.rs", src);
        assert!(f.test_spans.is_empty());
    }

    #[test]
    fn stacked_attributes_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let f = SourceFile::parse("crates/wiot/src/x.rs", src);
        assert_eq!(f.test_spans, vec![(1, 3)]);
        assert!(!f.in_test(4));
    }

    #[test]
    fn classification_table() {
        let fixed = classify("crates/dsp/src/fixed.rs");
        assert!(fixed.float_strict && fixed.embedded);
        let app = classify("crates/amulet-sim/src/apps/sift_app.rs");
        assert!(app.embedded && !app.float_strict);
        let fleet = classify("crates/wiot/src/fleet.rs");
        assert!(fleet.thread_ok && fleet.lib_no_panic);
        // The slab streaming engine is the second audited parallel
        // boundary; everything else about it stays under library rules.
        let slab = classify("crates/wiot/src/slab.rs");
        assert!(slab.thread_ok && slab.lib_no_panic && !slab.det_exempt);
        let bench = classify("crates/bench/src/bin/fleet.rs");
        assert!(bench.det_exempt);
        let plain = classify("crates/physio-sim/src/record.rs");
        assert!(!plain.embedded && !plain.det_exempt && !plain.lib_no_panic);
        for path in ["crates/amulet-sim/src/nvram.rs", "crates/sift/src/checkpoint.rs"] {
            let ckpt = classify(path);
            assert_eq!(ckpt.pinned_rule, Some("ckpt-embedded-profile"), "{path}");
            assert!(ckpt.float_strict && ckpt.embedded, "{path}");
            assert!(!ckpt.lib_no_panic, "{path}: ckpt rule supersedes lib hygiene");
        }
        let zoo = classify("crates/ml/src/tsetlin.rs");
        assert_eq!(zoo.pinned_rule, Some("detector-embedded-profile"));
        assert!(zoo.float_strict && zoo.embedded && !zoo.lib_no_panic);
        // The neighboring SVM translation keeps its original class.
        let svm = classify("crates/ml/src/embedded.rs");
        assert!(svm.float_strict && svm.embedded && svm.pinned_rule.is_none());
        assert!(fixed.pinned_rule.is_none() && plain.pinned_rule.is_none());
        let tele_hot = classify("crates/telemetry/src/record.rs");
        assert_eq!(tele_hot.pinned_rule, Some("tele-embedded-profile"));
        assert!(tele_hot.float_strict && tele_hot.embedded);
        assert!(!tele_hot.lib_no_panic, "hot path supersedes lib hygiene");
        let tele_lib = classify("crates/telemetry/src/lib.rs");
        assert!(tele_lib.pinned_rule.is_none() && !tele_lib.embedded && tele_lib.lib_no_panic);
        let surv = classify("crates/wiot/src/survival.rs");
        assert_eq!(surv.pinned_rule, Some("survival-embedded-profile"));
        assert!(surv.float_strict && surv.embedded);
        assert!(!surv.lib_no_panic, "survival rule supersedes lib hygiene");
        let wiot_lib = classify("crates/wiot/src/adaptive.rs");
        assert!(wiot_lib.pinned_rule.is_none() && !wiot_lib.embedded && wiot_lib.lib_no_panic);
        // The campaign engine is ordinary deterministic library code:
        // full determinism scanning (no RNG escape hatches), no thread
        // spawning of its own (it drives the fleet engine's pool), and
        // library panic hygiene.
        let campaign = classify("crates/wiot/src/campaign.rs");
        assert!(
            !campaign.det_exempt && !campaign.thread_ok && campaign.lib_no_panic,
            "campaign.rs must stay under the determinism pass"
        );
        // Every pinned-profile module resolves through the table, in
        // registry order.
        for p in PINNED_PROFILES {
            for m in p.modules {
                assert_eq!(classify(m).pinned_rule, Some(p.rule), "{m}");
            }
        }
    }
}
