//! The interprocedural pass: extract function definitions and call
//! sites from the token streams, resolve them into a workspace call
//! graph, and run three whole-program analyses over it:
//!
//! 1. **worst-case stack depth** — a per-function frame estimate from
//!    the MSP430 calling convention (see [`frame_bytes`]), propagated
//!    along the longest call chain from each embedded entry point in
//!    [`ENTRY_POINTS`]; the budget pass gates `statics + max stack`
//!    against the 2 KB SRAM map;
//! 2. **recursion / dynamic dispatch** in embedded-profile modules —
//!    cycles make the stack bound unsound, and `dyn` / `fn`-pointer
//!    calls cannot be resolved by this pass at all, so both are
//!    error-severity rules (`cg-recursion`, `cg-dynamic-dispatch`);
//! 3. **panic reachability** — an embedded entry point transitively
//!    reaching an unjustified panic site in host-side code is flagged
//!    with the full call chain (`cg-panic-reachable`).
//!
//! ## Soundness assumptions (documented, deliberate)
//!
//! Resolution is name-based over tokens, not type-based: a method call
//! through a receiver other than bare `self` resolves to *every* bodied
//! workspace method of that name (conservative for stack, excluding the
//! caller itself to avoid false self-loops), qualified `Type::method`
//! and `Trait::method` calls resolve through an (owner, name) index
//! with trait-impl fan-out, and calls the pass cannot resolve — std
//! methods, macros' interiors, names on the [`UBIQUITOUS_METHODS`]
//! list — contribute **zero** stack. That unsoundness is exactly why
//! recursion and dynamic dispatch are hard errors in embedded modules:
//! within the profile the remaining approximations are benign
//! (closures and iterator adapters stay in their enclosing frame).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::rules::{certifies_panic_site, Finding};
use crate::ParsedFile;

/// MSP430 word size: 16-bit registers, 2-byte stack slots.
pub const WORD_BYTES: usize = 2;
/// Per-call overhead: 2-byte return address + 2-byte saved frame
/// pointer (msp430-gcc keeps R4 as FP in debug-faithful builds).
pub const FRAME_OVERHEAD_BYTES: usize = 4;
/// msp430-gcc passes the first four word-sized arguments in R12–R15;
/// only the remainder spill to the caller's frame.
pub const REGISTER_ARGS: usize = 4;

/// One certified embedded entry point: the function the device calls
/// into, identified by (file, impl owner, name).
#[derive(Debug, Clone, Copy)]
pub struct EntryPoint {
    /// Workspace-relative defining file.
    pub file: &'static str,
    /// Owning impl/trait type.
    pub owner: &'static str,
    /// Function name.
    pub name: &'static str,
    /// Human-readable label for reports.
    pub label: &'static str,
}

/// The embedded entry points whose worst-case stack the analyzer
/// certifies. Order is report order.
pub const ENTRY_POINTS: &[EntryPoint] = &[
    EntryPoint {
        file: "crates/amulet-sim/src/apps/sift_app.rs",
        owner: "SiftApp",
        name: "handle",
        label: "SiftApp::handle",
    },
    EntryPoint {
        file: "crates/ml/src/backend.rs",
        owner: "DetectorModel",
        name: "score_f32",
        label: "DetectorModel::score_f32",
    },
    EntryPoint {
        file: "crates/ml/src/tsetlin.rs",
        owner: "TsetlinModel",
        name: "score_f32",
        label: "TsetlinModel::score_f32",
    },
    EntryPoint {
        file: "crates/sift/src/checkpoint.rs",
        owner: "DetectorCheckpoint",
        name: "encode_into",
        label: "DetectorCheckpoint::encode_into",
    },
    EntryPoint {
        file: "crates/sift/src/checkpoint.rs",
        owner: "DetectorCheckpoint",
        name: "decode",
        label: "DetectorCheckpoint::decode",
    },
    EntryPoint {
        file: "crates/wiot/src/survival.rs",
        owner: "SurvivalPolicy",
        name: "step",
        label: "SurvivalPolicy::step",
    },
];

/// Method names so common across std and the workspace that by-name
/// resolution of a non-`self` receiver would be meaningless fan-out
/// (and a false-cycle machine). Calls to them resolve to nothing and
/// contribute zero stack — a documented soundness assumption.
const UBIQUITOUS_METHODS: &[&str] = &[
    "as_mut", "as_ref", "clone", "cmp", "default", "drop", "eq", "fmt", "from", "get", "hash",
    "index", "insert", "into", "is_empty", "iter", "len", "ne", "next", "partial_cmp", "push",
    "read", "to_string", "write",
];

/// Keywords (and universal constructors) that can precede `(` without
/// being a workspace call.
const NOT_A_CALL: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "as", "in", "move",
    "ref", "mut", "let", "else", "unsafe", "dyn", "impl", "where", "use", "pub", "struct",
    "enum", "trait", "type", "const", "static", "crate", "super", "fn", "Some", "Ok", "Err",
    "None", "self", "Self",
];

/// Panicking macros, mirroring the lexical pass (debug_assert! compiles
/// out of release firmware and is deliberately absent).
const PANIC_MACROS: &[&str] = &[
    "panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne",
];

/// One extracted function definition.
#[derive(Debug)]
struct FnDef {
    name: String,
    /// Impl/trait block owner (`None` for free functions).
    owner: Option<String>,
    /// For `impl Trait for Type` members: the trait's name.
    trait_impl: Option<String>,
    file: usize,
    line: u32,
    /// Parameter count, `self` included.
    params: usize,
    /// `let` bindings in the body (closures included: they share the
    /// enclosing frame on this target).
    lets: usize,
    has_body: bool,
    in_test: bool,
}

impl FnDef {
    fn display(&self) -> String {
        match (&self.owner, &self.trait_impl) {
            (Some(o), Some(t)) => format!("<{o} as {t}>::{}", self.name),
            (Some(o), None) => format!("{o}::{}", self.name),
            (None, _) => self.name.clone(),
        }
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallKind {
    /// `name(...)` with no receiver or path.
    Free,
    /// `self.name(...)` on the bare receiver.
    SelfMethod,
    /// `expr.name(...)` on any other receiver.
    Method,
    /// `Qualifier::name(...)`.
    Qualified(String),
}

#[derive(Debug)]
struct CallSite {
    name: String,
    kind: CallKind,
}

/// A potentially-panicking expression (`.unwrap()`, `panic!`, …).
#[derive(Debug)]
struct PanicSite {
    file: usize,
    line: u32,
    what: String,
    in_fn: usize,
}

/// A `dyn` trait object or `fn`-pointer type in an embedded module.
#[derive(Debug)]
struct DynSite {
    file: usize,
    line: u32,
    what: &'static str,
}

/// Worst-case stack certificate for one entry point.
#[derive(Debug, Clone)]
pub struct EntryStack {
    /// Entry label from [`ENTRY_POINTS`].
    pub label: String,
    /// Defining file of the entry function.
    pub file: String,
    /// Definition line.
    pub line: u32,
    /// Bytes of stack consumed along the worst call chain, entry frame
    /// included.
    pub stack_bytes: usize,
    /// Frames on that chain.
    pub frames: usize,
    /// The chain itself, caller first.
    pub chain: Vec<String>,
}

/// The `stack` section of the analyzer's footprint document.
#[derive(Debug, Clone, Default)]
pub struct StackReport {
    /// One certificate per resolved entry point, in table order.
    pub entries: Vec<EntryStack>,
}

/// Everything the interprocedural pass produces.
#[derive(Debug)]
pub struct CallGraphResult {
    /// `cg-*` findings, before suppression.
    pub findings: Vec<Finding>,
    /// Worst-case stack certificates.
    pub stack: StackReport,
}

/// Extracted view of the whole workspace.
struct Graph {
    /// Workspace-relative path of each file index.
    paths: Vec<String>,
    fns: Vec<FnDef>,
    calls: Vec<Vec<CallSite>>,
    panics: Vec<PanicSite>,
    dyns: Vec<DynSite>,
}

/// Run the interprocedural pass over the parsed workspace.
pub fn analyze(files: &[ParsedFile]) -> CallGraphResult {
    let graph = extract(files);
    let edges = resolve_edges(&graph);
    let sccs = tarjan(graph.fns.len(), &edges);
    let mut findings = Vec::new();
    findings.extend(dynamic_dispatch_findings(files, &graph));
    findings.extend(recursion_findings(files, &graph, &edges, &sccs));
    let (stack, entry_of) = stack_report(files, &graph, &edges, &sccs);
    findings.extend(panic_findings(files, &graph, &edges, &entry_of));
    CallGraphResult { findings, stack }
}

/// Frame size estimate for one function under the msp430-gcc calling
/// convention: call overhead, spilled arguments past the four register
/// args, and one word per `let` binding.
fn frame_bytes(def: &FnDef) -> usize {
    FRAME_OVERHEAD_BYTES
        + WORD_BYTES * def.params.saturating_sub(REGISTER_ARGS)
        + WORD_BYTES * def.lets
}

// ---------------------------------------------------------------------
// Extraction: token stream -> defs, call sites, panic sites, dyn sites.
// ---------------------------------------------------------------------

struct OwnerCtx {
    name: String,
    trait_impl: Option<String>,
    open_depth: i32,
}

fn ident_of(kind: &TokenKind) -> Option<&str> {
    match kind {
        TokenKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn extract(files: &[ParsedFile]) -> Graph {
    let mut graph = Graph {
        paths: files.iter().map(|pf| pf.file.rel_path.clone()).collect(),
        fns: Vec::new(),
        calls: Vec::new(),
        panics: Vec::new(),
        dyns: Vec::new(),
    };
    for (file_idx, pf) in files.iter().enumerate() {
        extract_file(file_idx, pf, &mut graph);
    }
    graph
}

#[allow(clippy::too_many_lines)]
fn extract_file(file_idx: usize, pf: &ParsedFile, graph: &mut Graph) {
    let sig: Vec<&crate::lexer::Token> =
        pf.file.tokens.iter().filter(|t| !t.is_trivia()).collect();
    let kind = |k: usize| sig.get(k).map(|t| &t.kind);
    let is_punct = |k: usize, c: char| matches!(kind(k), Some(TokenKind::Punct(p)) if *p == c);
    let embedded = pf.class.embedded;

    let mut depth: i32 = 0;
    let mut owners: Vec<OwnerCtx> = Vec::new();
    // (fn index, depth of its body's opening brace)
    let mut open_fns: Vec<(usize, i32)> = Vec::new();
    let mut p = 0usize;
    while p < sig.len() {
        let line = sig[p].line;
        match &sig[p].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                p += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                owners.retain(|o| o.open_depth <= depth);
                open_fns.retain(|&(_, d)| d <= depth);
                p += 1;
            }
            TokenKind::Ident(w) if w == "impl" && item_position(&sig, p) => {
                if let Some((owner, trait_impl, brace)) = parse_impl_header(&sig, p) {
                    depth += 1;
                    owners.push(OwnerCtx {
                        name: owner,
                        trait_impl,
                        open_depth: depth,
                    });
                    p = brace + 1;
                } else {
                    p += 1;
                }
            }
            TokenKind::Ident(w) if w == "trait" => {
                // `trait Name … {` — supertrait bounds carry no braces.
                let name = kind(p + 1).and_then(ident_of).map(str::to_string);
                let mut q = p + 2;
                while q < sig.len() && !is_punct(q, '{') && !is_punct(q, ';') {
                    q += 1;
                }
                if let (Some(name), true) = (name, is_punct(q, '{')) {
                    depth += 1;
                    owners.push(OwnerCtx {
                        name,
                        trait_impl: None,
                        open_depth: depth,
                    });
                    p = q + 1;
                } else {
                    p = q;
                }
            }
            TokenKind::Ident(w) if w == "fn" => {
                if is_punct(p + 1, '(') {
                    // Bare `fn(…)` is a function-pointer *type*.
                    if embedded && !pf.file.in_test(line) {
                        graph.dyns.push(DynSite {
                            file: file_idx,
                            line,
                            what: "fn-pointer type",
                        });
                    }
                    p += 1;
                    continue;
                }
                let Some(header) = parse_fn_header(&sig, p) else {
                    p += 1;
                    continue;
                };
                // The walk jumps over the header, so scan it here for
                // `dyn` trait objects and `fn`-pointer types in the
                // parameter list or return type.
                if embedded {
                    let hdr_end = header.body_open.unwrap_or(header.end);
                    for (k, tok) in sig.iter().enumerate().take(hdr_end.min(sig.len())).skip(p + 1) {
                        let TokenKind::Ident(w) = &tok.kind else {
                            continue;
                        };
                        if pf.file.in_test(tok.line) {
                            continue;
                        }
                        if w == "dyn" {
                            graph.dyns.push(DynSite {
                                file: file_idx,
                                line: tok.line,
                                what: "dyn trait object",
                            });
                        } else if w == "fn" && is_punct(k + 1, '(') {
                            graph.dyns.push(DynSite {
                                file: file_idx,
                                line: tok.line,
                                what: "fn-pointer type",
                            });
                        }
                    }
                }
                let owner = owners.last();
                graph.fns.push(FnDef {
                    name: header.name,
                    owner: owner.map(|o| o.name.clone()),
                    trait_impl: owner.and_then(|o| o.trait_impl.clone()),
                    file: file_idx,
                    line,
                    params: header.params,
                    lets: 0,
                    has_body: header.body_open.is_some(),
                    in_test: pf.file.in_test(line),
                });
                graph.calls.push(Vec::new());
                if let Some(open) = header.body_open {
                    depth += 1;
                    open_fns.push((graph.fns.len() - 1, depth));
                    p = open + 1;
                } else {
                    p = header.end + 1;
                }
            }
            TokenKind::Ident(w) if w == "dyn" => {
                if embedded && !pf.file.in_test(line) {
                    graph.dyns.push(DynSite {
                        file: file_idx,
                        line,
                        what: "dyn trait object",
                    });
                }
                p += 1;
            }
            TokenKind::Ident(w) if w == "let" => {
                if let Some(&(f, _)) = open_fns.last() {
                    if let Some(def) = graph.fns.get_mut(f) {
                        def.lets += 1;
                    }
                }
                p += 1;
            }
            TokenKind::Ident(name) => {
                let cur_fn = open_fns.last().map(|&(f, _)| f);
                let in_test = pf.file.in_test(line);
                let prev_dot = p > 0 && is_punct(p - 1, '.');
                if let Some(f) = cur_fn {
                    if !in_test {
                        if matches!(name.as_str(), "unwrap" | "expect")
                            && prev_dot
                            && is_punct(p + 1, '(')
                        {
                            graph.panics.push(PanicSite {
                                file: file_idx,
                                line,
                                what: format!(".{name}()"),
                                in_fn: f,
                            });
                        }
                        if PANIC_MACROS.contains(&name.as_str()) && is_punct(p + 1, '!') {
                            graph.panics.push(PanicSite {
                                file: file_idx,
                                line,
                                what: format!("{name}!"),
                                in_fn: f,
                            });
                        }
                    }
                    if is_punct(p + 1, '(')
                        && !NOT_A_CALL.contains(&name.as_str())
                        && !in_test
                    {
                        let qualified = p >= 2 && is_punct(p - 1, ':') && is_punct(p - 2, ':');
                        let call_kind = if qualified {
                            match kind(p.wrapping_sub(3)).and_then(ident_of) {
                                Some(q) => CallKind::Qualified(q.to_string()),
                                // `<T as Trait>::m(…)` and friends:
                                // unresolvable, skip.
                                None => {
                                    p += 1;
                                    continue;
                                }
                            }
                        } else if prev_dot {
                            let bare_self = p >= 2
                                && matches!(kind(p - 2).and_then(ident_of), Some("self"))
                                && !(p >= 3 && is_punct(p - 3, '.'));
                            if bare_self {
                                CallKind::SelfMethod
                            } else {
                                CallKind::Method
                            }
                        } else {
                            CallKind::Free
                        };
                        if let Some(calls) = graph.calls.get_mut(f) {
                            calls.push(CallSite {
                                name: name.clone(),
                                kind: call_kind,
                            });
                        }
                    }
                }
                p += 1;
            }
            _ => p += 1,
        }
    }
}

/// Is the `impl` at `p` an item (block) rather than an `impl Trait`
/// type position? Item `impl` follows a block/item boundary.
fn item_position(sig: &[&crate::lexer::Token], p: usize) -> bool {
    if p == 0 {
        return true;
    }
    match &sig[p - 1].kind {
        TokenKind::Punct('}' | ';' | '{' | ']') => true,
        TokenKind::Ident(w) => w == "unsafe",
        _ => false,
    }
}

/// Parse an item `impl` header from `p` (the `impl` token) to its body
/// brace: returns (owner type, implemented trait, index of `{`).
fn parse_impl_header(
    sig: &[&crate::lexer::Token],
    p: usize,
) -> Option<(String, Option<String>, usize)> {
    let mut q = p + 1;
    q = skip_generics(sig, q);
    // Collect the first path; if a `for` follows, that path was the
    // trait and the owner comes after.
    let first = path_tail_ident(sig, &mut q)?;
    let mut trait_impl = None;
    let mut owner = first;
    loop {
        match &sig.get(q)?.kind {
            TokenKind::Ident(w) if w == "for" => {
                q += 1;
                // Skip `&`, lifetimes, `mut` on the implementing type.
                while matches!(
                    sig.get(q)?.kind,
                    TokenKind::Punct('&') | TokenKind::Lifetime
                ) || matches!(&sig.get(q)?.kind, TokenKind::Ident(w) if w == "mut")
                {
                    q += 1;
                }
                trait_impl = Some(owner);
                owner = path_tail_ident(sig, &mut q)?;
            }
            TokenKind::Punct('{') => return Some((owner, trait_impl, q)),
            TokenKind::Punct(';') => return None,
            _ => q += 1,
        }
    }
}

/// Read a (possibly `::`-separated, possibly generic) type path at `q`,
/// returning its final segment identifier and leaving `q` after it.
fn path_tail_ident(sig: &[&crate::lexer::Token], q: &mut usize) -> Option<String> {
    let mut last = None;
    loop {
        match sig.get(*q).map(|t| &t.kind) {
            Some(TokenKind::Ident(w))
                if !matches!(w.as_str(), "for" | "where") =>
            {
                last = Some(w.clone());
                *q += 1;
                *q = skip_generics(sig, *q);
                // Continue through `::` path separators.
                if matches!(sig.get(*q).map(|t| &t.kind), Some(TokenKind::Punct(':')))
                    && matches!(sig.get(*q + 1).map(|t| &t.kind), Some(TokenKind::Punct(':')))
                {
                    *q += 2;
                    continue;
                }
                return last;
            }
            _ => return last,
        }
    }
}

/// If `q` sits on `<`, skip the matched angle-bracket group (arrow
/// `->` inside bounds is treated as one unit, not a closing angle).
fn skip_generics(sig: &[&crate::lexer::Token], q: usize) -> usize {
    if !matches!(sig.get(q).map(|t| &t.kind), Some(TokenKind::Punct('<'))) {
        return q;
    }
    let mut depth = 0i32;
    let mut m = q;
    while m < sig.len() {
        match &sig[m].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('-')
                if matches!(sig.get(m + 1).map(|t| &t.kind), Some(TokenKind::Punct('>'))) =>
            {
                m += 1; // skip the arrow's `>`
            }
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return m + 1;
                }
            }
            _ => {}
        }
        m += 1;
    }
    m
}

struct FnHeader {
    name: String,
    params: usize,
    /// Index of the body's `{`, when the fn has one.
    body_open: Option<usize>,
    /// Index of the terminating token (`{` or `;`).
    end: usize,
}

/// Parse `fn name … ( params ) -> ret {` starting at the `fn` token.
fn parse_fn_header(sig: &[&crate::lexer::Token], p: usize) -> Option<FnHeader> {
    let name = ident_of(&sig.get(p + 1)?.kind)?.to_string();
    let mut q = skip_generics(sig, p + 2);
    if !matches!(sig.get(q).map(|t| &t.kind), Some(TokenKind::Punct('('))) {
        return None;
    }
    // Walk the parameter list, counting top-level commas.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any_param = false;
    let start = q;
    while q < sig.len() {
        match &sig[q].kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            TokenKind::Punct('[' | '{') => bracket += 1,
            TokenKind::Punct(']' | '}') => bracket -= 1,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('-')
                if matches!(sig.get(q + 1).map(|t| &t.kind), Some(TokenKind::Punct('>'))) =>
            {
                q += 1;
            }
            TokenKind::Punct('>') => angle = (angle - 1).max(0),
            TokenKind::Punct(',')
                if paren == 1 && bracket == 0 && angle == 0 =>
            {
                // A trailing comma right before `)` is not a parameter.
                if !matches!(sig.get(q + 1).map(|t| &t.kind), Some(TokenKind::Punct(')'))) {
                    commas += 1;
                }
            }
            _ => {
                if paren >= 1 && q > start {
                    any_param = true;
                }
            }
        }
        q += 1;
    }
    let params = if any_param { commas + 1 } else { 0 };
    // Scan past the return type / where clause to `{` or `;`.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    q += 1;
    while q < sig.len() {
        match &sig[q].kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                return Some(FnHeader {
                    name,
                    params,
                    body_open: Some(q),
                    end: q,
                });
            }
            TokenKind::Punct(';') if paren == 0 && bracket == 0 => {
                return Some(FnHeader {
                    name,
                    params,
                    body_open: None,
                    end: q,
                });
            }
            _ => {}
        }
        q += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Resolution: call sites -> edges.
// ---------------------------------------------------------------------

/// Crate name of a `crates/<name>/…` workspace-relative path.
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(path)
}

/// Whether `path` plausibly defines module `q`: the file stem matches
/// (`…/q.rs`), a directory on the path matches (`…/q/mod.rs`, or the
/// crate directory itself), or it is the lib root of crate `q`.
fn file_in_module(path: &str, q: &str) -> bool {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    stem == q || path.contains(&format!("/{q}/")) || (crate_of(path) == q && path.ends_with("/lib.rs"))
}

fn resolve_edges(graph: &Graph) -> Vec<Vec<usize>> {
    let n = graph.fns.len();
    // Indexes over *non-test* defs only: test fns are invisible.
    let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_trait_impl: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut trait_names: BTreeSet<&str> = BTreeSet::new();
    for (i, def) in graph.fns.iter().enumerate() {
        if def.in_test {
            continue;
        }
        by_name.entry(&def.name).or_default().push(i);
        match &def.owner {
            Some(o) => {
                by_owner.entry((o, &def.name)).or_default().push(i);
            }
            None => {
                if def.has_body {
                    free_by_name.entry(&def.name).or_default().push(i);
                }
            }
        }
        if let Some(t) = &def.trait_impl {
            trait_names.insert(t);
            if def.has_body {
                by_trait_impl.entry((t, &def.name)).or_default().push(i);
            }
        }
        // A body-less method can only be a trait signature, so its
        // owner is a trait.
        if !def.has_body && def.owner.is_some() {
            if let Some(o) = &def.owner {
                trait_names.insert(o);
            }
        }
    }

    let bodied = |ids: Option<&Vec<usize>>| -> Vec<usize> {
        ids.map(|v| {
            v.iter()
                .copied()
                .filter(|&i| graph.fns[i].has_body)
                .collect()
        })
        .unwrap_or_default()
    };
    // All bodied impls of trait `t` named `name`, plus the trait's own
    // default body — the full static-dispatch candidate set.
    let trait_dispatch = |t: &str, name: &str| -> Vec<usize> {
        let mut c = bodied(by_owner.get(&(t, name)));
        c.extend(bodied(by_trait_impl.get(&(t, name))));
        c
    };

    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (caller, sites) in graph.calls.iter().enumerate() {
        let me = &graph.fns[caller];
        if me.in_test {
            continue;
        }
        for site in sites {
            let name = site.name.as_str();
            let targets: Vec<usize> = match &site.kind {
                CallKind::Qualified(q) => {
                    let q = if q == "Self" {
                        match &me.owner {
                            Some(o) => o.as_str(),
                            None => continue,
                        }
                    } else {
                        q.as_str()
                    };
                    let direct = bodied(by_owner.get(&(q, name)));
                    if !direct.is_empty() {
                        direct
                    } else if trait_names.contains(q) {
                        // A trait-qualified call dispatches to any
                        // impl; the caller's own def is excluded to
                        // avoid false self-loops through the enum
                        // dispatcher pattern.
                        trait_dispatch(q, name)
                            .into_iter()
                            .filter(|&t| t != caller)
                            .collect()
                    } else if q.starts_with(char::is_lowercase) {
                        // `module::free_fn(…)` — prefer free fns whose
                        // defining file *is* that module; a same-name
                        // free fn elsewhere in the workspace is not a
                        // candidate (it would fabricate recursion, e.g.
                        // `checkpoint::encoded_len` calling
                        // `ml::embedded::encoded_len`).
                        let all = free_by_name.get(name).cloned().unwrap_or_default();
                        let modular: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&i| {
                                if matches!(q, "crate" | "super" | "self") {
                                    crate_of(&graph.paths[graph.fns[i].file])
                                        == crate_of(&graph.paths[me.file])
                                } else {
                                    file_in_module(&graph.paths[graph.fns[i].file], q)
                                }
                            })
                            .collect();
                        if modular.is_empty() {
                            all
                        } else {
                            modular
                        }
                    } else {
                        // Unknown capitalized qualifier: a type defined
                        // outside the workspace walk (std, vendored).
                        Vec::new()
                    }
                }
                CallKind::SelfMethod => {
                    let Some(o) = &me.owner else { continue };
                    if trait_names.contains(o.as_str()) {
                        // Inside a trait default body: dispatch to any
                        // impl (or another default), not ourselves.
                        trait_dispatch(o, name)
                            .into_iter()
                            .filter(|&t| t != caller)
                            .collect()
                    } else {
                        let direct = bodied(by_owner.get(&(o.as_str(), name)));
                        if !direct.is_empty() {
                            direct
                        } else if let Some(t) = &me.trait_impl {
                            // Calling an inherited default method.
                            trait_dispatch(t, name)
                                .into_iter()
                                .filter(|&t| t != caller)
                                .collect()
                        } else {
                            Vec::new()
                        }
                    }
                }
                CallKind::Method => {
                    if UBIQUITOUS_METHODS.contains(&name) {
                        Vec::new()
                    } else {
                        bodied(by_name.get(name))
                            .into_iter()
                            .filter(|&t| graph.fns[t].owner.is_some() && t != caller)
                            .collect()
                    }
                }
                CallKind::Free => {
                    let same_file: Vec<usize> = free_by_name
                        .get(name)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&i| graph.fns[i].file == me.file)
                                .collect()
                        })
                        .unwrap_or_default();
                    if same_file.is_empty() {
                        free_by_name.get(name).cloned().unwrap_or_default()
                    } else {
                        same_file
                    }
                }
            };
            edges[caller].extend(targets);
        }
    }
    edges.into_iter().map(|s| s.into_iter().collect()).collect()
}

// ---------------------------------------------------------------------
// Tarjan SCC (iterative) and the analyses over the condensation.
// ---------------------------------------------------------------------

/// Strongly connected components in reverse topological order (every
/// component is emitted after all components it can reach).
fn tarjan(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    // Explicit DFS: (node, edge cursor).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        work.push((start, 0));
        index[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            if let Some(&w) = edges[v].get(*cursor) {
                *cursor += 1;
                if index[w] == UNSET {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

fn dynamic_dispatch_findings(files: &[ParsedFile], graph: &Graph) -> Vec<Finding> {
    graph
        .dyns
        .iter()
        .map(|d| {
            Finding::new(
                "cg-dynamic-dispatch",
                &files[d.file].file.rel_path,
                d.line,
                format!(
                    "{} in an embedded-profile module: indirect calls are invisible to \
                     the call-graph pass, so the stack certificate would be unsound",
                    d.what
                ),
            )
        })
        .collect()
}

fn recursion_findings(
    files: &[ParsedFile],
    graph: &Graph,
    edges: &[Vec<usize>],
    sccs: &[Vec<usize>],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for comp in sccs {
        let cyclic = comp.len() > 1
            || comp
                .first()
                .is_some_and(|&v| edges[v].contains(&v));
        if !cyclic {
            continue;
        }
        let mut members: Vec<&usize> = comp.iter().collect();
        members.sort_by_key(|&&v| (graph.fns[v].file, graph.fns[v].line));
        let Some(&&anchor) = members
            .iter()
            .find(|&&&v| files[graph.fns[v].file].class.embedded)
        else {
            continue;
        };
        let chain: Vec<String> = members
            .iter()
            .map(|&&v| graph.fns[v].display())
            .collect();
        let def = &graph.fns[anchor];
        out.push(Finding::new(
            "cg-recursion",
            &files[def.file].file.rel_path,
            def.line,
            format!(
                "call-graph cycle through an embedded-profile function makes the \
                 worst-case stack bound unsound: {} \u{2192} {}",
                chain.join(" \u{2192} "),
                chain.first().map_or("?", |s| s.as_str()),
            ),
        ));
    }
    out
}

/// Longest-path stack certificates over the SCC condensation, plus the
/// per-function entry ownership map used by the panic walk: for every
/// function reachable from an entry point, the index (into
/// [`ENTRY_POINTS`] order), BFS parent, and distance.
#[allow(clippy::type_complexity)]
fn stack_report(
    files: &[ParsedFile],
    graph: &Graph,
    edges: &[Vec<usize>],
    sccs: &[Vec<usize>],
) -> (StackReport, Vec<Option<(usize, Option<usize>)>>) {
    let n = graph.fns.len();
    let mut comp_of = vec![0usize; n];
    for (c, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v] = c;
        }
    }
    // Condensation successors; `sccs` is already reverse-topological,
    // so a single in-order sweep computes longest paths bottom-up.
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); sccs.len()];
    for (v, outs) in edges.iter().enumerate() {
        for &w in outs {
            if comp_of[v] != comp_of[w] {
                succs[comp_of[v]].insert(comp_of[w]);
            }
        }
    }
    let comp_frame = |c: usize| -> usize {
        sccs[c]
            .iter()
            .map(|&v| frame_bytes(&graph.fns[v]))
            .max()
            .unwrap_or(0)
    };
    let mut depth = vec![0usize; sccs.len()];
    let mut best_succ: Vec<Option<usize>> = vec![None; sccs.len()];
    for c in 0..sccs.len() {
        let mut best = 0usize;
        for &s in &succs[c] {
            if depth[s] > best {
                best = depth[s];
                best_succ[c] = Some(s);
            }
        }
        depth[c] = comp_frame(c) + best;
    }

    let mut entries = Vec::new();
    let mut entry_fns: Vec<(usize, usize)> = Vec::new(); // (entry idx, fn idx)
    for (e_idx, ep) in ENTRY_POINTS.iter().enumerate() {
        let Some(f) = graph.fns.iter().position(|d| {
            !d.in_test
                && d.has_body
                && d.name == ep.name
                && d.owner.as_deref() == Some(ep.owner)
                && files[d.file].file.rel_path == ep.file
        }) else {
            continue;
        };
        entry_fns.push((e_idx, f));
        let mut chain = Vec::new();
        let mut c = Some(comp_of[f]);
        while let Some(cc) = c {
            let rep = sccs[cc]
                .iter()
                .max_by_key(|&&v| frame_bytes(&graph.fns[v]))
                .copied();
            if let Some(rep) = rep {
                let mut name = graph.fns[rep].display();
                if sccs[cc].len() > 1 {
                    name.push_str(" (cycle)");
                }
                chain.push(name);
            }
            c = best_succ[cc];
        }
        let def = &graph.fns[f];
        entries.push(EntryStack {
            label: ep.label.to_string(),
            file: files[def.file].file.rel_path.clone(),
            line: def.line,
            stack_bytes: depth[comp_of[f]],
            frames: chain.len(),
            chain,
        });
    }

    // Multi-source BFS from the entry functions, entries-first order,
    // recording each reachable function's owning entry and BFS parent
    // so panic findings can print a shortest call chain.
    let mut reach: Vec<Option<(usize, Option<usize>)>> = vec![None; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &(e_idx, f) in &entry_fns {
        if reach[f].is_none() {
            reach[f] = Some((e_idx, None));
            queue.push_back(f);
        }
    }
    while let Some(v) = queue.pop_front() {
        let Some((e_idx, _)) = reach[v] else { continue };
        for &w in &edges[v] {
            if reach[w].is_none() {
                reach[w] = Some((e_idx, Some(v)));
                queue.push_back(w);
            }
        }
    }
    (StackReport { entries }, reach)
}

fn panic_findings(
    files: &[ParsedFile],
    graph: &Graph,
    _edges: &[Vec<usize>],
    reach: &[Option<(usize, Option<usize>)>],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for site in &graph.panics {
        let pf = &files[site.file];
        // Embedded files' own panic sites are the lexical pass's
        // jurisdiction (embedded-no-panic and the pinned profiles).
        if pf.class.embedded {
            continue;
        }
        let Some((e_idx, _)) = reach[site.in_fn] else {
            continue;
        };
        // An honored suppression of a panic-certifying lexical rule is
        // the soundness argument for this site; trust it.
        let trusted = pf.sups.iter().any(|s| {
            certifies_panic_site(&s.rule) && s.first_line <= site.line && site.line <= s.last_line
        });
        if trusted {
            continue;
        }
        let mut chain = Vec::new();
        let mut v = Some(site.in_fn);
        while let Some(f) = v {
            chain.push(graph.fns[f].display());
            v = reach[f].and_then(|(_, parent)| parent);
        }
        chain.reverse();
        let label = ENTRY_POINTS
            .get(e_idx)
            .map_or("<entry>", |e| e.label);
        out.push(Finding::new(
            "cg-panic-reachable",
            &pf.file.rel_path,
            site.line,
            format!(
                "`{}` is reachable from embedded entry {}: {} \u{2192} {}; return a \
                 Result or justify with lint:allow(cg-panic-reachable, …)",
                site.what,
                label,
                chain.join(" \u{2192} "),
                site.what,
            ),
        ));
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;
    use crate::source::SourceFile;

    fn parsed(rel: &str, src: &str) -> ParsedFile {
        let file = SourceFile::parse(rel, src);
        let (sups, meta) = crate::suppress::collect(&file);
        ParsedFile {
            class: classify(rel),
            file,
            sups,
            meta,
        }
    }

    #[test]
    fn extracts_defs_params_and_lets() {
        let pf = parsed(
            "crates/wiot/src/x.rs",
            "impl Foo {\n  pub fn go(&mut self, a: u32, b: &[u8], c: Option<(u8, u8)>) -> u32 {\n    let x = 1;\n    let y = helper(a);\n    x + y\n  }\n}\nfn helper(a: u32) -> u32 { let z = a; z }\n",
        );
        let g = extract(&[pf]);
        assert_eq!(g.fns.len(), 2);
        assert_eq!(g.fns[0].name, "go");
        assert_eq!(g.fns[0].owner.as_deref(), Some("Foo"));
        assert_eq!(g.fns[0].params, 4, "self counts as a parameter");
        assert_eq!(g.fns[0].lets, 2);
        assert_eq!(g.fns[1].name, "helper");
        assert_eq!(g.fns[1].params, 1);
        assert_eq!(g.fns[1].lets, 1);
        // go -> helper resolves as a free call.
        let edges = resolve_edges(&g);
        assert_eq!(edges[0], vec![1]);
        assert!(edges[1].is_empty());
    }

    #[test]
    fn impl_for_headers_bind_owner_and_trait() {
        let pf = parsed(
            "crates/wiot/src/x.rs",
            "impl fmt::Display for Gauge {\n  fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\nimpl<T: Clone> Holder<T> {\n  fn hold(&self) {}\n}\n",
        );
        let g = extract(&[pf]);
        assert_eq!(g.fns[0].owner.as_deref(), Some("Gauge"));
        assert_eq!(g.fns[0].trait_impl.as_deref(), Some("Display"));
        assert_eq!(g.fns[1].owner.as_deref(), Some("Holder"));
        assert_eq!(g.fns[1].trait_impl, None);
    }

    #[test]
    fn trait_default_body_dispatches_to_impls_not_itself() {
        let src = "trait Scorer {\n  fn one(&self) -> u32;\n  fn many(&self) -> u32 { self.one() }\n}\nstruct A;\nimpl Scorer for A {\n  fn one(&self) -> u32 { 1 }\n}\n";
        let pf = parsed("crates/wiot/src/x.rs", src);
        let g = extract(&[pf]);
        let many = g.fns.iter().position(|d| d.name == "many").unwrap();
        let a_one = g
            .fns
            .iter()
            .position(|d| d.name == "one" && d.has_body)
            .unwrap();
        let edges = resolve_edges(&g);
        assert_eq!(edges[many], vec![a_one]);
        // No cycles anywhere.
        let sccs = tarjan(g.fns.len(), &edges);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn enum_dispatcher_pattern_is_not_a_false_cycle() {
        // The DetectorModel pattern: an enum's trait impl fans out via
        // Trait::method(inner) — the trait-qualified call must not
        // resolve back to the caller.
        let src = "trait B {\n  fn enc(&self, out: &mut [u8]) -> usize;\n}\nstruct Inner;\nimpl B for Inner {\n  fn enc(&self, out: &mut [u8]) -> usize { 0 }\n}\nenum Model { I(Inner) }\nimpl B for Model {\n  fn enc(&self, out: &mut [u8]) -> usize {\n    match self { Model::I(m) => B::enc(m, out) }\n  }\n}\n";
        let pf = parsed("crates/wiot/src/x.rs", src);
        let g = extract(&[pf]);
        let edges = resolve_edges(&g);
        let sccs = tarjan(g.fns.len(), &edges);
        assert!(
            sccs.iter().all(|c| c.len() == 1),
            "no cycle expected: {sccs:?}"
        );
        let model_enc = g
            .fns
            .iter()
            .position(|d| d.owner.as_deref() == Some("Model"))
            .unwrap();
        let inner_enc = g
            .fns
            .iter()
            .position(|d| d.owner.as_deref() == Some("Inner"))
            .unwrap();
        assert_eq!(edges[model_enc], vec![inner_enc]);
    }

    #[test]
    fn direct_and_mutual_recursion_in_embedded_files_is_flagged() {
        let direct = parsed(
            "crates/dsp/src/fixed.rs",
            "fn spin(n: u32) -> u32 { if n == 0 { 0 } else { spin(n - 1) } }\n",
        );
        let files = [direct];
        let g = extract(&files);
        let edges = resolve_edges(&g);
        let sccs = tarjan(g.fns.len(), &edges);
        let fs = recursion_findings(&files, &g, &edges, &sccs);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "cg-recursion");
        assert!(fs[0].message.contains("spin"), "{}", fs[0].message);

        // The same cycle in host-side code is not a finding.
        let host = parsed(
            "crates/physio-sim/src/x.rs",
            "fn spin(n: u32) -> u32 { if n == 0 { 0 } else { spin(n - 1) } }\n",
        );
        let files = [host];
        let g = extract(&files);
        let edges = resolve_edges(&g);
        let sccs = tarjan(g.fns.len(), &edges);
        assert!(recursion_findings(&files, &g, &edges, &sccs).is_empty());
    }

    #[test]
    fn dyn_and_fn_pointer_types_fire_only_in_embedded_files() {
        let src = "fn take(cb: fn(u32) -> u32, d: &dyn std::fmt::Debug) {}\n";
        let emb = parsed("crates/ml/src/embedded.rs", src);
        let g = extract(std::slice::from_ref(&emb));
        let fs = dynamic_dispatch_findings(std::slice::from_ref(&emb), &g);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "cg-dynamic-dispatch"));

        let host = parsed("crates/physio-sim/src/x.rs", src);
        let g = extract(std::slice::from_ref(&host));
        assert!(dynamic_dispatch_findings(std::slice::from_ref(&host), &g).is_empty());
    }

    #[test]
    fn stack_chain_sums_frames_along_the_deepest_path() {
        // survival.rs is an entry-point file: SurvivalPolicy::step is in
        // the ENTRY_POINTS table. step -> deep -> deeper, with a shallow
        // sibling that must not win.
        let src = "impl SurvivalPolicy {\n  pub fn step(&mut self, inputs: u32) -> u32 {\n    let a = self.shallow();\n    let b = deep(a);\n    a + b\n  }\n  fn shallow(&self) -> u32 { 1 }\n}\nfn deep(x: u32) -> u32 {\n  let a = x;\n  let b = x;\n  deeper(a + b)\n}\nfn deeper(x: u32) -> u32 {\n  let a = x;\n  a\n}\n";
        let pf = parsed("crates/wiot/src/survival.rs", src);
        let files = [pf];
        let g = extract(&files);
        let edges = resolve_edges(&g);
        let sccs = tarjan(g.fns.len(), &edges);
        let (report, _) = stack_report(&files, &g, &edges, &sccs);
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.label, "SurvivalPolicy::step");
        // step: 4 + 2·2 lets = 8; deep: 4 + 2·2 = 8; deeper: 4 + 2 = 6.
        assert_eq!(e.stack_bytes, 22, "{e:?}");
        assert_eq!(e.frames, 3);
        assert_eq!(e.chain, vec!["SurvivalPolicy::step", "deep", "deeper"]);
    }

    #[test]
    fn panic_reachability_walks_across_files_and_honors_suppressions() {
        let entry = parsed(
            "crates/wiot/src/survival.rs",
            "impl SurvivalPolicy {\n  pub fn step(&mut self, inputs: u32) -> u32 { helper(inputs) }\n}\n",
        );
        let host = parsed(
            "crates/wiot/src/host.rs",
            "pub fn helper(x: u32) -> u32 { deeper(x) }\nfn deeper(x: u32) -> u32 { Some(x).unwrap() }\nfn unreached(x: u32) -> u32 { Some(x).unwrap() }\n",
        );
        let files = [entry, host];
        let g = extract(&files);
        let edges = resolve_edges(&g);
        let sccs = tarjan(g.fns.len(), &edges);
        let (_, reach) = stack_report(&files, &g, &edges, &sccs);
        let fs = panic_findings(&files, &g, &edges, &reach);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "cg-panic-reachable");
        assert_eq!(fs[0].file, "crates/wiot/src/host.rs");
        assert_eq!(fs[0].line, 2);
        assert!(
            fs[0].message.contains("SurvivalPolicy::step \u{2192} helper \u{2192} deeper"),
            "{}",
            fs[0].message
        );

        // A lib-no-panic suppression at the site certifies it.
        let host_ok = parsed(
            "crates/wiot/src/host.rs",
            "pub fn helper(x: u32) -> u32 { deeper(x) }\nfn deeper(x: u32) -> u32 { Some(x).unwrap() } // lint:allow(lib-no-panic, Some is always Some)\n",
        );
        let files = [
            parsed(
                "crates/wiot/src/survival.rs",
                "impl SurvivalPolicy {\n  pub fn step(&mut self, inputs: u32) -> u32 { helper(inputs) }\n}\n",
            ),
            host_ok,
        ];
        let g = extract(&files);
        let edges = resolve_edges(&g);
        let sccs = tarjan(g.fns.len(), &edges);
        let (_, reach) = stack_report(&files, &g, &edges, &sccs);
        assert!(panic_findings(&files, &g, &edges, &reach).is_empty());
    }

    #[test]
    fn test_regions_are_invisible_to_the_graph() {
        let pf = parsed(
            "crates/wiot/src/survival.rs",
            "impl SurvivalPolicy {\n  pub fn step(&mut self, inputs: u32) -> u32 { 0 }\n}\n#[cfg(test)]\nmod tests {\n  fn spin(n: u32) -> u32 { spin(n - 1) }\n  fn t() { x.unwrap(); }\n}\n",
        );
        let files = [pf];
        let g = extract(&files);
        let edges = resolve_edges(&g);
        let sccs = tarjan(g.fns.len(), &edges);
        assert!(recursion_findings(&files, &g, &edges, &sccs).is_empty());
        let (_, reach) = stack_report(&files, &g, &edges, &sccs);
        assert!(panic_findings(&files, &g, &edges, &reach).is_empty());
    }
}
