//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the (small) API surface the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — not the upstream ChaCha12 stream, but a
//! high-quality, fully deterministic PRNG; all uses in this workspace
//! depend on statistical behavior and per-seed reproducibility, not on
//! the exact upstream byte stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: everything is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the (exclusive) end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample_from(rng) as f32
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        ((*self.start() as f64)..=(*self.end() as f64)).sample_from(rng) as f32
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng, span + 1) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(reduce(rng, span) as i64)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as i64).wrapping_add(reduce(rng, span + 1) as i64)) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);
impl_sample_int!(i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire's
/// unbiased-enough reduction; the bias is < 2^-64 per draw).
fn reduce<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as upstream rand does
            // for small seeds.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..16).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..16).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[r.gen_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let v = r.gen_range(3..=5u64);
            assert!((3..=5).contains(&v));
        }
        let v = r.gen_range(-4..4i32);
        assert!((-4..4).contains(&v));
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((11_000..14_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([42u8].choose(&mut r).is_some());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5..5usize);
    }
}
