//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies (wraps the vendored [`StdRng`]).
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) StdRng);

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies are usable by reference (the `proptest!` macro takes
/// `&strat`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Produce any value of a supported primitive type
/// (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident | $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A | 0, B | 1),
    (A | 0, B | 1, C | 2),
    (A | 0, B | 1, C | 2, D | 3),
    (A | 0, B | 1, C | 2, D | 3, E | 4)
);
