//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range / tuple / `any` / `prop_map` strategies,
//! [`collection::vec`], and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test RNG;
//! failing inputs are reported via panic message. **No shrinking** is
//! performed — a failure prints the exact generated input instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Test-runner configuration types.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Leaner than upstream's 256: these run in CI on every test
            // invocation and the workspace sets explicit counts where
            // more coverage matters.
            Self { cases: 48 }
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The per-test deterministic RNG state and seeding.
#[doc(hidden)]
pub fn __new_test_rng(test_name: &str, case: u32) -> strategy::TestRng {
    // Stable FNV-1a hash of the test name keeps cases reproducible
    // across runs and independent of sibling tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    strategy::TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED)))
}

/// Everything a property test needs, glob-imported.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop_name(x in 0.0f64..1.0, ys in prop::collection::vec(any::<u64>(), 1..9)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                #[allow(clippy::redundant_closure_call)]
                for __case in 0..config.cases {
                    let mut __rng = $crate::__new_test_rng(stringify!($name), __case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    $( let _ = &$arg; )+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs do not satisfy a precondition.
/// Must appear directly in the property body (it `continue`s the case
/// loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(bool, u64)>> {
        prop::collection::vec((any::<bool>(), any::<u64>()), 2..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn fixed_size_vec(xs in prop::collection::vec(-1.0f64..1.0, 4)) {
            prop_assert_eq!(xs.len(), 4);
        }

        #[test]
        fn tuples_and_maps(v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn composite_strategy_compiles(ps in pairs(), j in Just(7u8)) {
            prop_assert!(ps.len() >= 2);
            prop_assert_eq!(j, 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::__new_test_rng("t", 0);
        let mut b = crate::__new_test_rng("t", 0);
        let s = crate::strategy::any::<u64>();
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
