//! Benchmarks of the embedded substrate: model codec, libm-free math
//! replacements vs `std`, and Q16.16 fixed-point arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use dsp::embedded_math::{atan2_approx, isqrt_u64, sqrt_newton, sqrt_newton_f32};
use dsp::fixed::Q16;
use ml::embedded::EmbeddedModel;
use ml::linear_svm::LinearSvmTrainer;
use ml::scaler::StandardScaler;
use ml::{Dataset, Label};
use std::hint::black_box;

fn model() -> EmbeddedModel {
    let mut d = Dataset::new(8).unwrap();
    for i in 0..40 {
        let t = i as f64 * 0.04;
        d.push(vec![t; 8], Label::Negative).unwrap();
        d.push(vec![2.0 + t; 8], Label::Positive).unwrap();
    }
    let scaler = StandardScaler::fit(&d).unwrap();
    let svm = LinearSvmTrainer::default()
        .fit(&scaler.transform_dataset(&d).unwrap())
        .unwrap();
    EmbeddedModel::translate(&scaler, &svm).unwrap()
}

fn bench_codec(c: &mut Criterion) {
    let m = model();
    c.bench_function("embedded_model_encode", |b| b.iter(|| black_box(&m).encode()));
    let bytes = m.encode();
    c.bench_function("embedded_model_decode", |b| {
        b.iter(|| EmbeddedModel::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_math(c: &mut Criterion) {
    c.bench_function("sqrt_std_f64", |b| b.iter(|| black_box(1234.567f64).sqrt()));
    c.bench_function("sqrt_newton_f64", |b| b.iter(|| sqrt_newton(black_box(1234.567))));
    c.bench_function("sqrt_newton_f32", |b| {
        b.iter(|| sqrt_newton_f32(black_box(1234.567f32)))
    });
    c.bench_function("isqrt_u64", |b| b.iter(|| isqrt_u64(black_box(123_456_789))));
    c.bench_function("atan2_std", |b| b.iter(|| f64::atan2(black_box(0.7), black_box(0.3))));
    c.bench_function("atan2_approx", |b| {
        b.iter(|| atan2_approx(black_box(0.7), black_box(0.3)))
    });
}

fn bench_fixed_point(c: &mut Criterion) {
    let a = Q16::from_f64(3.25);
    let b2 = Q16::from_f64(1.5);
    c.bench_function("q16_mul", |b| b.iter(|| black_box(a) * black_box(b2)));
    c.bench_function("q16_div", |b| b.iter(|| black_box(a) / black_box(b2)));
    c.bench_function("q16_sqrt", |b| b.iter(|| black_box(a).sqrt()));
}

criterion_group!(benches, bench_codec, bench_math, bench_fixed_point);
criterion_main!(benches);
