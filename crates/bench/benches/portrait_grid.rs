//! Benchmarks of portrait construction and occupancy-grid binning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use physio_sim::dataset::windows;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::portrait::{GridMatrix, Portrait};
use sift::snippet::Snippet;
use std::hint::black_box;

fn snippet() -> Snippet {
    let r = Record::synthesize(&bank()[0], 30.0, 7);
    Snippet::from_record(&windows(&r, 3.0).unwrap()[1]).unwrap()
}

fn bench_portrait(c: &mut Criterion) {
    let sn = snippet();
    c.bench_function("portrait_from_snippet", |b| {
        b.iter(|| Portrait::from_snippet(black_box(&sn)).unwrap())
    });
}

fn bench_grid(c: &mut Criterion) {
    let sn = snippet();
    let portrait = Portrait::from_snippet(&sn).unwrap();
    let mut group = c.benchmark_group("grid_matrix");
    for n in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| GridMatrix::from_portrait(black_box(&portrait), n).unwrap())
        });
    }
    group.finish();
}

fn bench_column_averages(c: &mut Criterion) {
    let sn = snippet();
    let portrait = Portrait::from_snippet(&sn).unwrap();
    let grid = GridMatrix::from_portrait(&portrait, 50).unwrap();
    c.bench_function("grid_column_averages", |b| {
        b.iter(|| black_box(&grid).column_averages())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_portrait, bench_grid, bench_column_averages
}
criterion_main!(benches);
