//! End-to-end detector benchmarks: one full classify pass per version
//! and flavor (the host-side cost corresponding to the on-device numbers
//! Table III derives), and the QM app pipeline through AmuletOS.

use amulet_sim::apps::SiftApp;
use amulet_sim::event::AmuletEvent;
use amulet_sim::machine::App;
use amulet_sim::os::AmuletOs;
use amulet_sim::profiler::ResourceProfiler;
use amulet_sim::toolchain::FirmwareImage;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use physio_sim::dataset::windows;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::detector::Detector;
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::snippet::Snippet;
use sift::trainer::train_for_subject;
use std::hint::black_box;

fn quick_config() -> SiftConfig {
    SiftConfig {
        train_s: 60.0,
        max_positive_per_donor: Some(15),
        ..SiftConfig::default()
    }
}

fn bench_classify(c: &mut Criterion) {
    let cfg = quick_config();
    let r = Record::synthesize(&bank()[0], 30.0, 7);
    let sn = Snippet::from_record(&windows(&r, 3.0).unwrap()[2]).unwrap();
    let mut group = c.benchmark_group("detector_classify");
    for version in Version::ALL {
        let model = train_for_subject(&bank(), 0, version, &cfg, 7).unwrap();
        for flavor in [PlatformFlavor::Gold, PlatformFlavor::Amulet] {
            let det = Detector::new(model.clone(), flavor, cfg.clone()).unwrap();
            group.bench_with_input(
                BenchmarkId::new(flavor.to_string(), version.to_string()),
                &det,
                |b, det| b.iter(|| det.classify(black_box(&sn)).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_amulet_pipeline(c: &mut Criterion) {
    let cfg = quick_config();
    let model = train_for_subject(&bank(), 0, Version::Simplified, &cfg, 7).unwrap();
    let r = Record::synthesize(&bank()[0], 30.0, 9);
    let sn = Snippet::from_record(&windows(&r, 3.0).unwrap()[0]).unwrap();
    c.bench_function("amulet_os_full_window_dispatch", |b| {
        b.iter_batched(
            || {
                let app =
                    SiftApp::new(Version::Simplified, model.embedded().clone(), cfg.clone())
                        .unwrap();
                let image = FirmwareImage::build(
                    vec![app.resource_spec()],
                    &ResourceProfiler::default(),
                )
                .unwrap();
                let mut os = AmuletOs::new();
                os.install(&image, vec![Box::new(app)]).unwrap();
                os
            },
            |mut os| {
                os.post(AmuletEvent::SnippetReady(sn.clone()));
                os.run_until_idle().unwrap();
                os
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classify, bench_amulet_pipeline
}
criterion_main!(benches);
