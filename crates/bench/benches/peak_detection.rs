//! Benchmarks of the live peak detectors (the paper's "run-time based on
//! live data" extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use physio_sim::record::Record;
use physio_sim::rpeak::{detect as detect_r, RPeakConfig};
use physio_sim::subject::bank;
use physio_sim::syspeak::{detect as detect_sys, SysPeakConfig};
use std::hint::black_box;

fn bench_rpeak(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpeak_detect");
    for secs in [3.0f64, 30.0, 120.0] {
        let r = Record::synthesize(&bank()[0], secs, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{secs}s")),
            &r,
            |b, r| b.iter(|| detect_r(black_box(&r.ecg), r.fs, &RPeakConfig::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_syspeak(c: &mut Criterion) {
    let r = Record::synthesize(&bank()[0], 30.0, 5);
    c.bench_function("syspeak_detect_30s", |b| {
        b.iter(|| detect_sys(black_box(&r.abp), r.fs, &SysPeakConfig::default()).unwrap())
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let s = &bank()[0];
    c.bench_function("record_synthesize_30s", |b| {
        b.iter(|| Record::synthesize(black_box(s), 30.0, 9))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rpeak, bench_syspeak, bench_synthesis
}
criterion_main!(benches);
