//! Criterion micro-benchmarks of the feature-extraction stage — the
//! dominant cost on the device (Fig. 3) — across the three detector
//! versions and both platform flavors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use physio_sim::dataset::windows;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::{extract, Version};
use sift::flavor::{extract_amulet_f32, PlatformFlavor};
use sift::snippet::Snippet;
use std::hint::black_box;

fn snippet() -> Snippet {
    let r = Record::synthesize(&bank()[0], 30.0, 7);
    Snippet::from_record(&windows(&r, 3.0).unwrap()[2]).unwrap()
}

fn bench_versions(c: &mut Criterion) {
    let cfg = SiftConfig::default();
    let sn = snippet();
    let mut group = c.benchmark_group("feature_extraction");
    for version in Version::ALL {
        group.bench_with_input(
            BenchmarkId::new("gold", version.to_string()),
            &version,
            |b, &v| b.iter(|| extract(black_box(v), black_box(&sn), &cfg).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("amulet_f32", version.to_string()),
            &version,
            |b, &v| b.iter(|| extract_amulet_f32(black_box(v), black_box(&sn), &cfg).unwrap()),
        );
    }
    group.finish();
}

fn bench_grid_sizes(c: &mut Criterion) {
    let sn = snippet();
    let mut group = c.benchmark_group("feature_extraction_grid_n");
    for n in [10usize, 50, 100] {
        let cfg = SiftConfig {
            grid_n: n,
            ..SiftConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| extract(Version::Original, black_box(&sn), cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_flavor_parity(c: &mut Criterion) {
    // Sanity: the flavored entry point should not add overhead for gold.
    let cfg = SiftConfig::default();
    let sn = snippet();
    c.bench_function("extract_flavored_gold_simplified", |b| {
        b.iter(|| {
            sift::flavor::extract_flavored(
                Version::Simplified,
                PlatformFlavor::Gold,
                black_box(&sn),
                &cfg,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_versions, bench_grid_sizes, bench_flavor_parity
}
criterion_main!(benches);
