//! SVM training and inference benchmarks: the offline trainer (dual
//! coordinate descent vs SMO) and the deployed prediction path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ml::dataset::{Dataset, Label};
use ml::linear_svm::LinearSvmTrainer;
use ml::smo::SmoTrainer;
use ml::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn gaussian_blobs(n_per_class: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(dim).unwrap();
    for _ in 0..n_per_class {
        let neg: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        d.push(neg, Label::Negative).unwrap();
        let pos: Vec<f64> = (0..dim).map(|_| 1.5 + rng.gen_range(-1.0..1.0)).collect();
        d.push(pos, Label::Positive).unwrap();
    }
    d
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_train");
    group.sample_size(10);
    for n in [100usize, 400] {
        let data = gaussian_blobs(n, 8, 1);
        group.bench_with_input(BenchmarkId::new("dual_cd", n * 2), &data, |b, d| {
            b.iter(|| LinearSvmTrainer::default().fit(black_box(d)).unwrap())
        });
    }
    // SMO is O(n²) in the kernel cache; bench at the smaller size only.
    let data = gaussian_blobs(100, 8, 1);
    group.bench_function("smo_linear_200", |b| {
        b.iter(|| SmoTrainer::default().fit(black_box(&data)).unwrap())
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let data = gaussian_blobs(200, 8, 2);
    let svm = LinearSvmTrainer::default().fit(&data).unwrap();
    let x = vec![0.4; 8];
    c.bench_function("svm_predict_f64", |b| {
        b.iter(|| svm.decision_function(black_box(&x)))
    });

    let scaler = ml::scaler::StandardScaler::fit(&data).unwrap();
    let embedded = ml::embedded::EmbeddedModel::translate(&scaler, &svm).unwrap();
    let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    c.bench_function("embedded_predict_f32", |b| {
        b.iter(|| embedded.decision_function_f32(black_box(&xf)))
    });
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
