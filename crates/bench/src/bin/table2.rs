//! Table II reproduction: detection performance of the three detector
//! versions on both platforms (Amulet flavor vs. MATLAB gold standard).
//!
//! Protocol (paper §IV): 12 subjects; Δ = 20 min of training data per
//! subject; 2 min of unseen test data with 50 % of windows altered by
//! substituting another subject's ECG at random locations; w = 3 s
//! windows ⇒ 40 test examples per subject; linear-kernel SVM.
//!
//! Run: `cargo run --release -p bench --bin table2` (add `--smoke` for a
//! fast 4-subject / 1-minute-training variant).

use bench::{format_table2, paper_table2_reference, run_table2, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "TABLE II reproduction ({:?} scale: {} subjects, {:.0} s training)\n",
        scale,
        scale.subject_count(),
        scale.config().train_s
    );
    let started = std::time::Instant::now();
    match run_table2(scale) {
        Ok(rows) => {
            println!("{}", format_table2(&rows));
            println!("{}", paper_table2_reference());
            println!("\ncompleted in {:.1} s", started.elapsed().as_secs_f64());
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
