//! Ablation studies backing the paper's design choices:
//!
//! 1. **Classifier comparison** — the paper chose the SVM "as it
//!    performed the best among the algorithms we tried"; this reruns the
//!    comparison against logistic regression, k-NN and nearest centroid.
//! 2. **Grid size n** — the paper fixes n = 50 for matrix C.
//! 3. **Window length w** — the paper fixes w = 3 s.
//! 4. **Training length Δ** — the paper uses 20 min "as it works best".
//!
//! Run: `cargo run --release -p bench --bin ablation` (accepts `--smoke`
//! to shrink the sweeps further).

use ml::baseline::{KnnClassifier, LogisticRegressionTrainer, NearestCentroid};
use ml::linear_svm::LinearSvmTrainer;
use ml::metrics::evaluate;
use ml::scaler::StandardScaler;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::pipeline::{evaluate as evaluate_pipeline, EvalProtocol};
use sift::trainer::build_training_set;

fn ablation_config(train_s: f64) -> SiftConfig {
    SiftConfig {
        train_s,
        max_positive_per_donor: Some(20),
        ..SiftConfig::default()
    }
}

/// Classifier bake-off on one subject's training points, evaluated on a
/// held-out set built the same way from unseen records.
fn classifier_comparison(train_s: f64) {
    println!("=== ablation 1: classifier comparison (simplified features) ===");
    let subjects = bank();
    let config = ablation_config(train_s);
    let version = Version::Simplified;

    let build = |seed: u64| {
        let victim = Record::synthesize(&subjects[0], config.train_s, seed);
        let donors: Vec<Record> = (1..subjects.len())
            .map(|i| Record::synthesize(&subjects[i], config.train_s, seed + i as u64))
            .collect();
        let donor_refs: Vec<&Record> = donors.iter().collect();
        build_training_set(&victim, &donor_refs, version, &config).unwrap()
    };
    let train = build(1000);
    let test = build(9000);
    let scaler = StandardScaler::fit(&train).unwrap();
    let train_scaled = scaler.transform_dataset(&train).unwrap();
    let test_scaled = scaler.transform_dataset(&test).unwrap();

    let mut results: Vec<(&str, f64)> = Vec::new();
    let svm = LinearSvmTrainer::default().fit(&train_scaled).unwrap();
    results.push(("linear SVM", evaluate(&svm, &test_scaled).accuracy().unwrap()));
    let lr = LogisticRegressionTrainer::default().fit(&train_scaled).unwrap();
    results.push(("logistic regression", evaluate(&lr, &test_scaled).accuracy().unwrap()));
    let knn = KnnClassifier::new(5, train_scaled.clone()).unwrap();
    results.push(("5-NN", evaluate(&knn, &test_scaled).accuracy().unwrap()));
    let nc = NearestCentroid::fit(&train_scaled).unwrap();
    results.push(("nearest centroid", evaluate(&nc, &test_scaled).accuracy().unwrap()));

    for (name, acc) in &results {
        println!("  {name:<20} accuracy {:.2}%", acc * 100.0);
    }
    println!();
}

fn sweep<I: Copy + std::fmt::Display>(
    title: &str,
    values: &[I],
    mut config_for: impl FnMut(I) -> SiftConfig,
    subjects: usize,
) {
    println!("=== {title} ===");
    let bank = bank();
    let subs = &bank[..subjects];
    for &v in values {
        let config = config_for(v);
        match evaluate_pipeline(
            subs,
            Version::Simplified,
            PlatformFlavor::Amulet,
            &config,
            &EvalProtocol::default(),
        ) {
            Ok(r) => println!(
                "  {v:>8}: accuracy {:.2}%  (fp {:.2}%, fn {:.2}%)",
                r.averaged.accuracy * 100.0,
                r.averaged.fp_rate * 100.0,
                r.averaged.fn_rate * 100.0
            ),
            Err(e) => println!("  {v:>8}: failed ({e})"),
        }
    }
    println!();
}

fn main() {
    let smoke = bench::Scale::from_args() == bench::Scale::Smoke;
    let (train_s, subjects) = if smoke { (60.0, 3) } else { (300.0, 6) };

    classifier_comparison(train_s);

    sweep(
        "ablation 2: grid size n (simplified, amulet flavor)",
        &[10usize, 25, 50, 100],
        |n| SiftConfig {
            grid_n: n,
            ..ablation_config(train_s)
        },
        subjects,
    );

    sweep(
        "ablation 3: window length w seconds",
        &[2usize, 3, 6],
        |w| SiftConfig {
            window_s: w as f64,
            ..ablation_config(train_s)
        },
        subjects,
    );

    sweep(
        "ablation 4: training length (seconds of wearer data)",
        &[30usize, 60, 120, 300],
        |t| ablation_config(t as f64),
        subjects,
    );
}
