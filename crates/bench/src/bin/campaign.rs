//! Adversary-campaign gate: the per-attack-class detection matrix over
//! population-scale victim cohorts, across detector backends.
//!
//! Run: `cargo run --release -p bench --bin campaign`
//!
//! For each cell of {population size} × {detector backend} the bin
//! stages the full nine-class attack schedule (the paper's four legacy
//! vulnerability classes plus mimicry, replay-at-SNR, partial-window,
//! coordinated, adaptive) across a device fleet, and:
//!
//! 1. runs the campaign at 1, 2, and 8 worker threads and **exits
//!    nonzero** unless the campaign digest (fleet digest + per-class
//!    matrix) is identical at every thread count,
//! 2. checks the substitution class detects at all (the Table II
//!    attack must not silently regress to zero), and
//! 3. emits the detection matrix — windows TP/FN/FP/TN, device-level
//!    detections, mean latency, and integer Wilson 95 % bounds per
//!    class — as deterministic JSON.
//!
//! Writes `results/BENCH_campaign.json` (override with `--out PATH`);
//! every field is a pure function of the seeds, so `scripts/verify.sh`
//! hard-fails on any drift from the committed copy.

use ml::BackendKind;
use physio_sim::population::LEGACY_BANK_SEED;
use sift::features::Version;
use std::fmt::Write as _;
use wiot::attacker::ATTACK_CLASS_COUNT;
use wiot::campaign::{run_campaign, AttackClass, AttackWave, CampaignPlan, CampaignReport};

/// Session seconds per device: 7 detection windows of 8 s.
const DURATION_S: f64 = 56.0;
/// Attack interval: windows 2, 3, 4 fully covered (3 positives per
/// device), windows 0–1 and 5–6 genuine.
const ATTACK_START_S: f64 = 16.0;
const ATTACK_END_S: f64 = 40.0;
/// Devices per attack wave.
const WAVE_DEVICES: usize = 8;
/// Victims enrolled per cell (devices round-robin over the pool).
const VICTIM_POOL: usize = 8;
/// Donor subjects enrolled against each pool victim.
const DONORS_PER_VICTIM: usize = 6;
/// Campaign master seed.
const SEED: u64 = 0x00CA_4FA1;
/// Seed of the population-scale cohorts (the 12-subject cells use
/// [`LEGACY_BANK_SEED`] and therefore wear the legacy bank exactly).
const POPULATION_SEED: u64 = 0x090B_1A7E;

struct Args {
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "results/BENCH_campaign.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                args.out = argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("usage: campaign [--out PATH]");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other}; usage: campaign [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// The full nine-class schedule, one wave per class.
fn waves() -> Vec<AttackWave> {
    let classes = [
        AttackClass::Substitution,
        AttackClass::Replay { offset_s: 10.0 },
        AttackClass::Freeze,
        AttackClass::NoiseInject { amplitude_mv: 0.6 },
        AttackClass::Mimicry {
            blend_permille: 700,
        },
        AttackClass::ReplaySnr {
            offset_s: 10.0,
            snr_db: 6.0,
        },
        AttackClass::PartialWindow {
            coverage_permille: 600,
        },
        AttackClass::Coordinated,
        AttackClass::Adaptive,
    ];
    classes
        .into_iter()
        .map(|class| AttackWave {
            class,
            devices: WAVE_DEVICES,
            start_s: ATTACK_START_S,
            end_s: ATTACK_END_S,
        })
        .collect()
}

fn plan(population_size: usize, population_seed: u64, backend: BackendKind) -> CampaignPlan {
    CampaignPlan {
        population_size,
        population_seed,
        victim_pool: VICTIM_POOL,
        donors_per_victim: DONORS_PER_VICTIM,
        seed: SEED,
        threads: 1,
        backend,
        version: Version::Simplified,
        duration_s: DURATION_S,
        waves: waves(),
    }
}

fn backend_name(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Svm => "svm",
        BackendKind::Tsetlin => "tsetlin",
    }
}

/// Run one cell at 1, 2, and 8 threads; die on digest drift.
fn run_cell(p: &CampaignPlan) -> CampaignReport {
    let mut pinned: Option<CampaignReport> = None;
    for threads in [1usize, 2, 8] {
        let report = run_campaign(&CampaignPlan {
            threads,
            ..p.clone()
        })
        .unwrap_or_else(|e| {
            eprintln!(
                "campaign cell (pop {}, {}) failed at {threads} threads: {e}",
                p.population_size,
                backend_name(p.backend)
            );
            std::process::exit(1);
        });
        match &pinned {
            None => pinned = Some(report),
            Some(first) if first.digest() != report.digest() => {
                eprintln!(
                    "campaign digest drifted with thread count: {:#018x} at 1 thread vs \
                     {:#018x} at {threads} (pop {}, {})",
                    first.digest(),
                    report.digest(),
                    p.population_size,
                    backend_name(p.backend)
                );
                std::process::exit(1);
            }
            Some(_) => {}
        }
    }
    pinned.expect("at least one thread count ran")
}

fn main() {
    let args = parse_args();
    let cells = [
        (12usize, LEGACY_BANK_SEED, BackendKind::Svm),
        (12, LEGACY_BANK_SEED, BackendKind::Tsetlin),
        (1024, POPULATION_SEED, BackendKind::Svm),
        (1024, POPULATION_SEED, BackendKind::Tsetlin),
    ];

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"campaign\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"duration_s\": {DURATION_S},");
    let _ = writeln!(
        json,
        "  \"attack_interval_s\": [{ATTACK_START_S}, {ATTACK_END_S}],"
    );
    let _ = writeln!(json, "  \"wave_devices\": {WAVE_DEVICES},");
    let _ = writeln!(json, "  \"victim_pool\": {VICTIM_POOL},");
    let _ = writeln!(json, "  \"donors_per_victim\": {DONORS_PER_VICTIM},");
    let _ = writeln!(json, "  \"cells\": [");

    for (ci, &(population, pop_seed, backend)) in cells.iter().enumerate() {
        let p = plan(population, pop_seed, backend);
        let report = run_cell(&p);

        // The Table II attack class must never silently regress to a
        // detector that misses everything.
        let sub = &report.classes[AttackClass::Substitution.index()];
        if sub.windows_tp == 0 {
            eprintln!(
                "substitution class detected nothing (pop {population}, {})",
                backend_name(backend)
            );
            std::process::exit(1);
        }
        let staged = report.classes.iter().filter(|c| c.devices > 0).count();
        if staged < ATTACK_CLASS_COUNT {
            eprintln!("only {staged} of {ATTACK_CLASS_COUNT} classes staged");
            std::process::exit(1);
        }

        println!(
            "pop {population:>5} {:<8} digest {:#018x} (identical at 1, 2, and 8 threads)",
            backend_name(backend),
            report.digest()
        );
        println!(
            "  {:<15} {:>5} {:>5} {:>5} {:>5} {:>9} {:>15}",
            "class", "tp", "fn", "fp", "tn", "rate", "wilson95"
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"population\": {population},");
        let _ = writeln!(json, "      \"population_seed\": {pop_seed},");
        let _ = writeln!(json, "      \"backend\": \"{}\",", backend_name(backend));
        let _ = writeln!(json, "      \"devices\": {},", report.fleet.devices);
        let _ = writeln!(json, "      \"digest\": \"{:#018x}\",", report.digest());
        let _ = writeln!(json, "      \"classes\": [");
        for (k, w) in p.waves.iter().enumerate() {
            let c = &report.classes[w.class.index()];
            let mean_latency = if c.detected_devices == 0 {
                0
            } else {
                c.latency_sum_ms / c.detected_devices as u64
            };
            println!(
                "  {:<15} {:>5} {:>5} {:>5} {:>5} {:>8}‰ [{:>4}‰, {:>4}‰]",
                w.class.name(),
                c.windows_tp,
                c.windows_fn,
                c.windows_fp,
                c.windows_tn,
                c.detection_permille,
                c.wilson_lo_permille,
                c.wilson_hi_permille
            );
            let _ = writeln!(
                json,
                "        {{ \"class\": \"{}\", \"devices\": {}, \"tp\": {}, \"fn\": {}, \
                 \"fp\": {}, \"tn\": {}, \"detected_devices\": {}, \"mean_latency_ms\": {}, \
                 \"detection_permille\": {}, \"wilson_lo_permille\": {}, \
                 \"wilson_hi_permille\": {} }}{}",
                w.class.name(),
                c.devices,
                c.windows_tp,
                c.windows_fn,
                c.windows_fp,
                c.windows_tn,
                c.detected_devices,
                mean_latency,
                c.detection_permille,
                c.wilson_lo_permille,
                c.wilson_hi_permille,
                if k + 1 == p.waves.len() { "" } else { "," }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if ci + 1 == cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
}
