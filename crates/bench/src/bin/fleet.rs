//! Fleet-scale throughput bench: simulate N wearable devices across a
//! worker pool and report simulated device-seconds per wall-second.
//!
//! Run: `cargo run --release -p bench --bin fleet -- --devices 100
//! --threads 8 --seed 61455 --duration 30`
//!
//! Writes `results/BENCH_fleet.json` (override with `--out PATH`). The digest
//! field is deterministic for a given `--devices/--seed/--duration`
//! regardless of `--threads`; the wall-clock fields are not, which is
//! why `scripts/verify.sh` only warns on baseline drift.

use bench::{fleet_bench_json, FleetBenchResult};
use physio_sim::subject::bank;
use sift::trainer::ModelBank;
use std::time::Instant;
use wiot::fleet::{run_fleet_with_bank, FleetSpec};

struct Args {
    devices: usize,
    threads: usize,
    seed: u64,
    duration_s: f64,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: fleet [--devices N] [--threads N] [--seed N] [--duration SECONDS] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 100,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed: 0xF1EE7,
        duration_s: 30.0,
        out: "results/BENCH_fleet.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--devices" => args.devices = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--duration" => args.duration_s = value.parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = value,
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let spec = FleetSpec::new(args.devices, args.duration_s)
        .with_threads(args.threads)
        .with_seed(args.seed);
    println!(
        "fleet bench: {} devices x {:.0} s on {} threads (seed {})",
        args.devices, args.duration_s, args.threads, args.seed
    );

    let t0 = Instant::now();
    let models = match ModelBank::train(
        &bank(),
        spec.template.version,
        &spec.template.config,
        spec.seed,
    ) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("enrollment failed: {e}");
            std::process::exit(1);
        }
    };
    let train_wall_s = t0.elapsed().as_secs_f64();
    println!(
        "enrolled {} subjects in {:.1} s (shared across all devices)",
        models.len(),
        train_wall_s
    );

    let t1 = Instant::now();
    let report = match run_fleet_with_bank(&spec, &models) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            std::process::exit(1);
        }
    };
    let sim_wall_s = t1.elapsed().as_secs_f64();

    let result = FleetBenchResult {
        report,
        threads: args.threads,
        duration_s: args.duration_s,
        train_wall_s,
        sim_wall_s,
    };
    let rep = &result.report;
    println!(
        "simulated {:.0} device-seconds in {:.1} s wall -> {:.1} device-s/wall-s",
        rep.simulated_device_s,
        sim_wall_s,
        result.throughput()
    );
    println!(
        "windows scored {} (sink flagged {}), recovery {:.3}, outliers {}, digest {:#018x}",
        rep.windows_scored,
        rep.sink_flagged,
        rep.mean_window_recovery,
        rep.outliers.len(),
        rep.digest()
    );

    let json = fleet_bench_json(&result);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
}
