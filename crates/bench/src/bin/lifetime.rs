//! Fleet-scale lifetime bench for the survival policy: full charge to
//! battery cutoff for ≥200 devices under bursty Gilbert–Elliott link
//! stress and brownout reboots, comparing three deployment policies —
//! always-Original, always-Reduced, and the adaptive closed loop
//! (`wiot::survival`).
//!
//! Run: `cargo run --release -p bench --bin lifetime -- --devices 200
//! --seed 61455`
//!
//! Three parts, all deterministic:
//!
//! 1. **Fast-forward lifetime sweep** — each device's discharge curve is
//!    integrated in pure integer arithmetic at a 60 s tick using the
//!    same `BatteryState` and per-version average currents the scenario
//!    layer uses, with a per-device Gilbert–Elliott badness chain and
//!    seeded brownouts that exercise the policy's snapshot/restore path
//!    (any round-trip mismatch fails the bench). Reports p5/p50/p95
//!    lifetime per policy and the adaptive ladder's occupancy.
//! 2. **Accuracy tradeoff** — per-version detection accuracy from the
//!    Table II machinery (Amulet flavor), weighted by the adaptive
//!    policy's version occupancy. Duty-cycle skips cost *coverage*, not
//!    per-window accuracy, and are reported separately.
//! 3. **Digest stability** — a survival-enabled stressed mini-fleet run
//!    at 1, 2, and 8 threads; the digest must be identical (this is the
//!    grep-able `"digest"` field `scripts/verify.sh` gates on).
//!
//! Hard gates (exit 1): adaptive median lifetime ≥ 1.5× always-Original
//! with ≤ 2 pp occupancy-weighted accuracy loss; always-Reduced within
//! [1.7×, 2.6×] of always-Original (the paper's ≈2× headline); zero
//! snapshot mismatches; thread-count-identical digest.
//!
//! Writes `results/BENCH_lifetime.json` (override with `--out PATH`).

use amulet_sim::costs::{detector_cycles, OpCosts};
use amulet_sim::energy::{BatteryState, EnergyModel};
use bench::{run_table2, Scale};
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::trainer::ModelBank;
use std::fmt::Write as _;
use wiot::channel::LossModel;
use wiot::fleet::{run_fleet_with_bank, FleetSpec};
use wiot::survival::{SurvivalConfig, SurvivalInputs, SurvivalPolicy};

/// Simulated seconds per fast-forward tick. The policy was designed for
/// 1 Hz ticks in the scenario layer; at whole-battery scale a 60 s tick
/// keeps every dwell/hysteresis mechanism engaged while finishing the
/// sweep in milliseconds.
const TICK_S: u64 = 60;
/// Hard cap on simulated ticks per device (≈ 104 days), a runaway stop.
const MAX_TICKS: u32 = 150_000;

struct Args {
    devices: usize,
    seed: u64,
    paper_scale: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!("usage: lifetime [--devices N] [--seed N] [--scale smoke|paper] [--out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 200,
        seed: 0xF1EE7,
        paper_scale: false,
        out: "results/BENCH_lifetime.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--devices" => args.devices = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--scale" => match value.as_str() {
                "smoke" => args.paper_scale = false,
                "paper" => args.paper_scale = true,
                _ => usage(),
            },
            "--out" => args.out = value,
            _ => usage(),
        }
    }
    args
}

/// SplitMix64, the same generator the fleet layer splits device seeds
/// with — one independent stream per (device, purpose).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Stream {
    state: u64,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Bernoulli draw with probability `num / den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo).max(1)
    }
}

/// Which deployment policy a device runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DeploymentPolicy {
    AlwaysOriginal,
    AlwaysReduced,
    Adaptive,
}

/// Outcome of one device's charge-to-cutoff run.
struct DeviceLifetime {
    lifetime_days: f64,
    occupancy_ticks: [u64; 3],
    duty_skipped_window_ticks: u64,
    reboots: u64,
    snapshot_mismatches: u64,
}

fn version_index(v: Version) -> usize {
    match v {
        Version::Original => 0,
        Version::Simplified => 1,
        Version::Reduced => 2,
    }
}

/// Per-version average current (µA), same derivation as the scenario
/// layer: cost-model cycles for an average window, amortized over the
/// window period by the energy model.
fn version_current_ua(model: &EnergyModel, config: &SiftConfig) -> [f64; 3] {
    let mut out = [0.0; 3];
    for v in Version::ALL {
        let cycles = detector_cycles(v, config, &OpCosts::default(), 4.0).total();
        out[version_index(v)] = model.average_current_for_cycles_ua(cycles, config.window_s);
    }
    out
}

/// Integrate one device from full charge to cutoff.
///
/// The Gilbert–Elliott chain and brownout draws come from independent
/// per-device SplitMix64 streams; a manufacturing spread of ±2 % on the
/// draw current is applied identically across the three policies so the
/// comparison is paired.
fn run_device(
    policy_kind: DeploymentPolicy,
    device: usize,
    seed: u64,
    currents_ua: &[f64; 3],
    baseline_ua: f64,
    model: &EnergyModel,
) -> DeviceLifetime {
    let cfg = SurvivalConfig::default();
    let mut battery = BatteryState::from_model(model);
    let mut link = Stream::new(splitmix64(seed ^ 0xA11CE).wrapping_add(device as u64));
    let mut faults = Stream::new(splitmix64(seed ^ 0xB0B).wrapping_add(device as u64));
    // ±2 % manufacturing spread, permille, shared across policies.
    let spread = Stream::new(splitmix64(seed ^ 0x5EED).wrapping_add(device as u64))
        .range(980, 1021);

    let mut policy = SurvivalPolicy::new(cfg, Version::Original);
    let mut bad_state = false;
    let mut occupancy_ticks = [0u64; 3];
    let mut duty_skipped_window_ticks = 0u64;
    let mut reboots = 0u64;
    let mut snapshot_mismatches = 0u64;

    let mut tick = 0u32;
    while tick < MAX_TICKS {
        tick += 1;
        // Gilbert–Elliott at tick granularity: bursty minutes of bad
        // link, mostly-quiet otherwise.
        if bad_state {
            if link.chance(15, 100) {
                bad_state = false;
            }
        } else if link.chance(2, 100) {
            bad_state = true;
        }
        let badness_permille = if bad_state {
            link.range(450, 800) as u16
        } else {
            link.range(0, 60) as u16
        };

        // Brownout: the device reboots and the policy object is rebuilt
        // from its FRAM snapshot. Round-trip inequality is a bench
        // failure, counted and gated below.
        if faults.chance(1, 2000) {
            reboots += 1;
            let snap = policy.snapshot();
            policy = SurvivalPolicy::new(cfg, Version::Original);
            policy.restore(snap);
            if policy.snapshot() != snap {
                snapshot_mismatches += 1;
            }
        }

        let (version, duty_skip, duty_of) = match policy_kind {
            DeploymentPolicy::AlwaysOriginal => (Version::Original, 0, 1),
            DeploymentPolicy::AlwaysReduced => (Version::Reduced, 0, 1),
            DeploymentPolicy::Adaptive => {
                policy.step(SurvivalInputs {
                    soc_permille: battery.soc_permille(),
                    link_badness_permille: badness_permille,
                    backlog_windows: 0,
                });
                let (skip, of) = policy.duty();
                (policy.version(), skip, of)
            }
        };
        occupancy_ticks[version_index(version)] += 1;
        duty_skipped_window_ticks += u64::from(duty_skip);

        // Draw current: baseline plus the active version's detector
        // share, thinned by the duty cycle, with the per-device spread.
        let delta = (currents_ua[version_index(version)] - baseline_ua).max(0.0);
        let kept = f64::from(duty_of - duty_skip) / f64::from(duty_of);
        let current_ua = ((baseline_ua + delta * kept) * spread as f64 / 1000.0).round() as u64;
        battery.drain(current_ua, TICK_S * 1000);

        if battery.soc_permille() <= cfg.cutoff_permille {
            break;
        }
    }

    DeviceLifetime {
        lifetime_days: f64::from(tick) * TICK_S as f64 / 86_400.0,
        occupancy_ticks,
        duty_skipped_window_ticks,
        reboots,
        snapshot_mismatches,
    }
}

/// Aggregate of one policy's fleet sweep.
struct PolicySweep {
    p5_days: f64,
    p50_days: f64,
    p95_days: f64,
    occupancy_frac: [f64; 3],
    duty_skipped_window_ticks: u64,
    reboots: u64,
    snapshot_mismatches: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn sweep(
    policy: DeploymentPolicy,
    devices: usize,
    seed: u64,
    currents_ua: &[f64; 3],
    baseline_ua: f64,
    model: &EnergyModel,
) -> PolicySweep {
    let mut lifetimes = Vec::with_capacity(devices);
    let mut occupancy = [0u64; 3];
    let mut duty_skipped = 0u64;
    let mut reboots = 0u64;
    let mut mismatches = 0u64;
    for device in 0..devices {
        let d = run_device(policy, device, seed, currents_ua, baseline_ua, model);
        lifetimes.push(d.lifetime_days);
        for (acc, t) in occupancy.iter_mut().zip(d.occupancy_ticks) {
            *acc += t;
        }
        duty_skipped += d.duty_skipped_window_ticks;
        reboots += d.reboots;
        mismatches += d.snapshot_mismatches;
    }
    lifetimes.sort_by(f64::total_cmp);
    let total_ticks: u64 = occupancy.iter().sum();
    let occupancy_frac = occupancy.map(|t| t as f64 / total_ticks.max(1) as f64);
    PolicySweep {
        p5_days: percentile(&lifetimes, 0.05),
        p50_days: percentile(&lifetimes, 0.50),
        p95_days: percentile(&lifetimes, 0.95),
        occupancy_frac,
        duty_skipped_window_ticks: duty_skipped,
        reboots,
        snapshot_mismatches: mismatches,
    }
}

/// Survival-enabled stressed mini-fleet, run at each thread count; the
/// digest must not move with the schedule.
fn digest_gate(seed: u64) -> Result<u64, String> {
    let mut spec = FleetSpec::new(8, 30.0).with_seed(seed);
    spec.template = spec.template.with_reliability();
    spec.template.link.loss = Some(LossModel::GilbertElliott {
        p_good_to_bad: 0.05,
        p_bad_to_good: 0.25,
        loss_good: 0.01,
        loss_bad: 0.5,
    });
    spec.template.survival = Some(SurvivalConfig {
        min_dwell_ticks: 5,
        drain_scale: 120_000,
        ..SurvivalConfig::default()
    });
    let models = ModelBank::train(
        &bank(),
        spec.template.version,
        &spec.template.config,
        spec.seed,
    )
    .map_err(|e| format!("enrollment failed: {e}"))?;
    let mut digest = None;
    for threads in [1, 2, 8] {
        let report = run_fleet_with_bank(&spec.clone().with_threads(threads), &models)
            .map_err(|e| format!("fleet run failed at {threads} threads: {e}"))?;
        match digest {
            None => digest = Some(report.digest()),
            Some(d) if d != report.digest() => {
                return Err(format!(
                    "digest drifted with thread count: {:#018x} at 1 thread vs {:#018x} at {threads}",
                    d,
                    report.digest()
                ));
            }
            Some(_) => {}
        }
    }
    Ok(digest.unwrap_or(0))
}

fn main() {
    let args = parse_args();
    let mut failures: Vec<String> = Vec::new();

    let model = EnergyModel::default();
    let config = SiftConfig::default();
    let currents = version_current_ua(&model, &config);
    let baseline = model.currents.baseline_ua();
    println!(
        "per-version average current: original {:.1} uA, simplified {:.1} uA, reduced {:.1} uA \
         (baseline {:.1} uA)",
        currents[0], currents[1], currents[2], baseline
    );

    println!(
        "lifetime sweep: {} devices x 3 policies, {} s ticks, seed {}",
        args.devices, TICK_S, args.seed
    );
    let original = sweep(
        DeploymentPolicy::AlwaysOriginal,
        args.devices,
        args.seed,
        &currents,
        baseline,
        &model,
    );
    let reduced = sweep(
        DeploymentPolicy::AlwaysReduced,
        args.devices,
        args.seed,
        &currents,
        baseline,
        &model,
    );
    let adaptive = sweep(
        DeploymentPolicy::Adaptive,
        args.devices,
        args.seed,
        &currents,
        baseline,
        &model,
    );
    for (name, s) in [
        ("always-original", &original),
        ("always-reduced", &reduced),
        ("adaptive", &adaptive),
    ] {
        println!(
            "  {name:<15} p5 {:>5.1} d, p50 {:>5.1} d, p95 {:>5.1} d ({} reboots survived)",
            s.p5_days, s.p50_days, s.p95_days, s.reboots
        );
    }
    println!(
        "  adaptive occupancy: original {:.0}%, simplified {:.0}%, reduced {:.0}%",
        adaptive.occupancy_frac[0] * 100.0,
        adaptive.occupancy_frac[1] * 100.0,
        adaptive.occupancy_frac[2] * 100.0
    );

    let reduced_ratio = reduced.p50_days / original.p50_days;
    let adaptive_ratio = adaptive.p50_days / original.p50_days;
    println!(
        "  lifetime ratios vs always-original: reduced {reduced_ratio:.2}x, adaptive {adaptive_ratio:.2}x"
    );
    if !(1.7..=2.6).contains(&reduced_ratio) {
        failures.push(format!(
            "always-Reduced lifetime is {reduced_ratio:.2}x always-Original, outside the paper's ~2x band [1.7, 2.6]"
        ));
    }
    if adaptive_ratio < 1.5 {
        failures.push(format!(
            "adaptive lifetime is {adaptive_ratio:.2}x always-Original, below the 1.5x gate"
        ));
    }
    let total_mismatches = original.snapshot_mismatches
        + reduced.snapshot_mismatches
        + adaptive.snapshot_mismatches;
    if total_mismatches > 0 {
        failures.push(format!(
            "{total_mismatches} survival snapshot round-trips did not restore bit-identically"
        ));
    }

    // Accuracy tradeoff: per-version detection accuracy (Amulet flavor)
    // weighted by the adaptive ladder's occupancy.
    let scale = if args.paper_scale {
        Scale::Paper
    } else {
        Scale::Smoke
    };
    println!("accuracy tradeoff (Table II machinery, {} scale):", if args.paper_scale { "paper" } else { "smoke" });
    let rows = match run_table2(scale) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("accuracy evaluation failed: {e}");
            std::process::exit(1);
        }
    };
    let mut version_acc = [0.0f64; 3];
    for row in rows
        .iter()
        .filter(|r| r.flavor == PlatformFlavor::Amulet)
    {
        version_acc[version_index(row.version)] = row.metrics.accuracy;
    }
    let weighted_acc: f64 = version_acc
        .iter()
        .zip(adaptive.occupancy_frac)
        .map(|(a, f)| a * f)
        .sum();
    let acc_loss_pp = (version_acc[0] - weighted_acc) * 100.0;
    println!(
        "  accuracy: original {:.2}%, simplified {:.2}%, reduced {:.2}% -> adaptive (weighted) {:.2}%",
        version_acc[0] * 100.0,
        version_acc[1] * 100.0,
        version_acc[2] * 100.0,
        weighted_acc * 100.0
    );
    println!("  adaptive accuracy loss vs always-original: {acc_loss_pp:.2} pp");
    if acc_loss_pp > 2.0 {
        failures.push(format!(
            "adaptive policy loses {acc_loss_pp:.2} pp accuracy vs always-Original, above the 2 pp gate"
        ));
    }

    // Digest stability of the survival-enabled scenario fleet.
    let digest = match digest_gate(args.seed) {
        Ok(d) => {
            println!("survival fleet digest {d:#018x} (identical at 1, 2, and 8 threads)");
            d
        }
        Err(e) => {
            eprintln!("lifetime bench: FAIL {e}");
            std::process::exit(1);
        }
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"devices\": {},", args.devices);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"tick_s\": {TICK_S},");
    let _ = writeln!(
        json,
        "  \"accuracy_scale\": \"{}\",",
        if args.paper_scale { "paper" } else { "smoke" }
    );
    for (name, s) in [
        ("always_original", &original),
        ("always_reduced", &reduced),
        ("adaptive", &adaptive),
    ] {
        let _ = writeln!(
            json,
            "  \"{name}\": {{ \"p5_days\": {:.3}, \"p50_days\": {:.3}, \"p95_days\": {:.3}, \"reboots\": {} }},",
            s.p5_days, s.p50_days, s.p95_days, s.reboots
        );
    }
    let _ = writeln!(json, "  \"reduced_vs_original\": {reduced_ratio:.4},");
    let _ = writeln!(json, "  \"adaptive_vs_original\": {adaptive_ratio:.4},");
    let _ = writeln!(
        json,
        "  \"adaptive_occupancy\": {{ \"original\": {:.4}, \"simplified\": {:.4}, \"reduced\": {:.4} }},",
        adaptive.occupancy_frac[0], adaptive.occupancy_frac[1], adaptive.occupancy_frac[2]
    );
    let _ = writeln!(
        json,
        "  \"accuracy\": {{ \"original\": {:.6}, \"simplified\": {:.6}, \"reduced\": {:.6}, \"adaptive_weighted\": {:.6}, \"loss_pp\": {:.4} }},",
        version_acc[0], version_acc[1], version_acc[2], weighted_acc, acc_loss_pp
    );
    let _ = writeln!(
        json,
        "  \"duty_skipped_window_ticks\": {},",
        adaptive.duty_skipped_window_ticks
    );
    let _ = writeln!(json, "  \"snapshot_mismatches\": {total_mismatches},");
    let _ = writeln!(json, "  \"digest\": \"{digest:#018x}\"");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    if failures.is_empty() {
        println!("lifetime bench: OK");
    } else {
        for f in &failures {
            eprintln!("lifetime bench: FAIL {f}");
        }
        std::process::exit(1);
    }
}
