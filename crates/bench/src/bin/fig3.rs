//! Figure 3 reproduction: the ARP-view resource-consumption snapshot of
//! the SIFT detector app, including the battery-life "sliders" (the
//! parameter sweeps ARP-view exposes to developers).
//!
//! Run: `cargo run --release -p bench --bin fig3`

use amulet_sim::costs::{detector_cycles, OpCosts};
use amulet_sim::profiler::{sift_app_spec, ResourceProfiler};
use amulet_sim::CPU_HZ;
use sift::config::SiftConfig;
use sift::features::Version;

fn main() {
    let config = SiftConfig::default();
    let profiler = ResourceProfiler::default();
    let spec = sift_app_spec(Version::Original, &config, 112);

    println!("FIGURE 3 reproduction: ARP-view snapshot of the SIFT app (original version)\n");
    print!("{}", profiler.arp_view(&[&spec]));

    // Per-state energy breakdown (the pie of the snapshot).
    let cycles = detector_cycles(Version::Original, &config, &OpCosts::default(), 4.0);
    let total = cycles.total();
    println!("\nper-state execution breakdown (one 3 s window):");
    for (state, c) in [
        ("PeaksDataCheck", cycles.peaks_data_check),
        ("FeatureExtraction", cycles.feature_extraction),
        ("MLClassifier", cycles.ml_classifier),
    ] {
        println!(
            "  {:<18} {:>10.0} cycles  {:>6.1} ms  {:>5.1}%",
            state,
            c,
            c / CPU_HZ * 1000.0,
            c / total * 100.0
        );
    }

    // ARP-view sliders: wake-period sweep per version.
    println!("\nslider: detection period vs expected lifetime (days)");
    let periods = [1.0, 2.0, 3.0, 5.0, 10.0, 30.0, 60.0];
    print!("{:<12}", "period (s)");
    for p in periods {
        print!("{p:>8.0}");
    }
    println!();
    for version in Version::ALL {
        let model_bytes = if version == Version::Reduced { 76 } else { 112 };
        let vspec = sift_app_spec(version, &config, model_bytes);
        print!("{:<12}", version.to_string());
        for (_, days) in profiler.lifetime_vs_period(&vspec, &periods) {
            print!("{days:>8.0}");
        }
        println!();
    }

    // Second slider: grid size vs lifetime (original version), showing
    // the cost of the matrix features.
    println!("\nslider: grid size n vs expected lifetime (original version)");
    for n in [10usize, 25, 50, 75, 100] {
        let cfg = SiftConfig {
            grid_n: n,
            ..config.clone()
        };
        let s = sift_app_spec(Version::Original, &cfg, 112);
        let p = profiler.profile(&[&s]);
        println!(
            "  n = {n:>3}: {:>6.1} ms/window, {:>5.0} days",
            s.cycles_per_period / CPU_HZ * 1000.0,
            p.lifetime_days
        );
    }
}
