//! Table III reproduction: resource usage of the three detector
//! versions — FRAM (system + detector), peak SRAM (system + detector),
//! and expected battery lifetime with the 110 mAh battery.
//!
//! All numbers are *derived* from the platform model: footprints from
//! the profiler's composition of code/buffers/model constants and
//! library linkage, lifetimes from the per-operation cycle model and the
//! component-current energy model.
//!
//! Run: `cargo run --release -p bench --bin table3`

use amulet_sim::profiler::{sift_app_spec, ResourceProfiler};
use sift::config::SiftConfig;
use sift::features::Version;

fn main() {
    let config = SiftConfig::default();
    let profiler = ResourceProfiler::default();

    println!("TABLE III reproduction: resource usage of the three detector versions\n");
    println!(
        "| {:<10} | {:<24} | {:<42} |",
        "Version", "Resource Type", "Measurement"
    );
    println!("|{}|", "-".repeat(84));
    for version in Version::ALL {
        let model_bytes = match version {
            Version::Reduced => 76,
            _ => 112,
        };
        let spec = sift_app_spec(version, &config, model_bytes);
        let profile = profiler.profile(&[&spec]);
        let kb = |b: usize| b as f64 / 1024.0;
        println!(
            "| {:<10} | {:<24} | {:>8.2} KB (system) + {:>5.2} KB (detector)  |",
            version.to_string(),
            "Memory Use (FRAM)",
            kb(profile.system_fram_bytes),
            kb(profile.app_fram_bytes),
        );
        println!(
            "| {:<10} | {:<24} | {:>8} B  (system) + {:>5} B  (detector)  |",
            "",
            "Max RAM Use (SRAM)",
            profile.system_sram_bytes,
            profile.app_sram_bytes,
        );
        println!(
            "| {:<10} | {:<24} | {:>8.0} days ({:.1} uA avg current){:<8} |",
            "",
            "Expected Lifetime",
            profile.lifetime_days,
            profile.avg_current_ua,
            "",
        );
        println!("|{}|", "-".repeat(84));
    }
    println!(
        "\npaper reference (Table III):\n\
         | original   | FRAM 77.03 KB + 4.79 KB | SRAM 696 B + 259 B | 23 days |\n\
         | simplified | FRAM 71.58 KB + 4.02 KB | SRAM 694 B + 259 B | 26 days |\n\
         | reduced    | FRAM 56.29 KB + 2.56 KB | SRAM 694 B +  69 B | 55 days |"
    );
}
