//! Table I reproduction: the feature inventory of the three detector
//! versions, evaluated on a genuine and an altered portrait so the
//! discriminative signal is visible.
//!
//! Run: `cargo run --release -p bench --bin table1`

use physio_sim::dataset::windows;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::{extract, Version};
use sift::snippet::Snippet;

fn main() {
    let subjects = bank();
    let config = SiftConfig::default();

    // A genuine window of subject 0 …
    let own = Record::synthesize(&subjects[0], 30.0, 2001);
    let own_w = &windows(&own, config.window_s).unwrap()[2];
    let genuine = Snippet::from_record(own_w).unwrap();

    // … and the same ABP paired with subject 6's ECG (sensor hijacked).
    let donor = Record::synthesize(&subjects[6], 30.0, 2002);
    let donor_w = &windows(&donor, config.window_s).unwrap()[2];
    let altered = Snippet::new(
        donor_w.ecg.clone(),
        own_w.abp.clone(),
        donor_w.r_peaks.clone(),
        own_w.sys_peaks.clone(),
    )
    .unwrap();

    println!("TABLE I: feature summary (computed on one genuine and one altered 3 s portrait)\n");
    for version in Version::ALL {
        let g = extract(version, &genuine, &config).unwrap();
        let a = extract(version, &altered, &config).unwrap();
        println!("=== {version} version ({} features) ===", version.feature_count());
        println!(
            "| {:<48} | {:>12} | {:>12} |",
            "Feature", "genuine", "altered"
        );
        println!("|{}|", "-".repeat(80));
        for ((name, gv), av) in version.feature_names().iter().zip(&g).zip(&a) {
            println!("| {name:<48} | {gv:>12.6} | {av:>12.6} |");
        }
        println!();
    }
}
