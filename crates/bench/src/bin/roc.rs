//! Extension figure: ROC analysis of the three detector versions — the
//! threshold-independent view behind Table II, plus operating points for
//! explicit false-alarm budgets.
//!
//! Run: `cargo run --release -p bench --bin roc` (accepts `--smoke`).

use bench::Scale;
use physio_sim::subject::bank;
use sift::analysis::{scored_evaluation, threshold_for_fpr};
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::pipeline::{train_models, EvalProtocol};

fn main() {
    let scale = Scale::from_args();
    let subjects: Vec<_> = bank().into_iter().take(scale.subject_count()).collect();
    let config = scale.config();
    let protocol = EvalProtocol::default();

    println!(
        "ROC analysis ({:?} scale, amulet flavor, {} subjects)\n",
        scale,
        subjects.len()
    );
    for version in Version::ALL {
        let models = train_models(&subjects, version, &config).expect("training");
        let ev = scored_evaluation(
            &subjects,
            &models,
            PlatformFlavor::Amulet,
            &config,
            &protocol,
        )
        .expect("evaluation");
        println!("=== {version} ===");
        println!("  mean per-subject AUC : {:.4}", ev.mean_auc);
        let aucs: Vec<String> = ev
            .per_subject_auc
            .iter()
            .map(|(id, a)| format!("{id}:{a:.3}"))
            .collect();
        println!("  per subject          : {}", aucs.join("  "));
        for budget in [0.01, 0.05, 0.10] {
            match threshold_for_fpr(&ev.pooled_curve, budget) {
                Some(p) => println!(
                    "  at FP budget {:>4.0}%   : threshold {:+.3}, TP rate {:.1}%",
                    budget * 100.0,
                    p.threshold,
                    p.tpr * 100.0
                ),
                None => println!("  at FP budget {:>4.0}%   : unreachable", budget * 100.0),
            }
        }
        println!();
    }
}
