//! Attack-taxonomy evaluation: detection performance of the deployed
//! detector against each of the paper's four sensor-hijacking
//! vulnerability classes (§I), exercised end-to-end through the WIoT
//! environment (sensors → attacker → channel → Amulet base station).
//!
//! Run: `cargo run --release -p bench --bin attacks`
//!
//! With `--faults`, each attack additionally runs under a hostile link
//! (Gilbert–Elliott burst loss, ~10% mean) with the reliability stack
//! on (ARQ + salvage + watchdog); the table gains a window-recovery
//! column showing how much of the session still reached the detector.
//!
//! `--no-persist` disables FRAM checkpointing (the pre-checkpointing
//! behavior), for A/B comparison of the persistence layer's cost.

use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::features::Version;
use wiot::campaign::AttackClass;
use wiot::channel::LossModel;
use wiot::scenario::{run, AttackSpec, Scenario};

fn main() {
    let faults_mode = std::env::args().any(|a| a == "--faults");
    let no_persist = std::env::args().any(|a| a == "--no-persist");
    let duration_s = 120.0;
    let (attack_start, attack_end) = (33.0, 93.0);
    let donor = Record::synthesize(&bank()[7], duration_s, 0xD0);
    let victim_history = Record::synthesize(&bank()[0], duration_s, 0xC0FFEE ^ 0x11FE);

    // The four legacy attacks, expressed through the campaign
    // taxonomy's compatibility constructors: `materialize` produces
    // byte-identical `AttackMode`s to the old direct construction.
    let classes: Vec<(&str, AttackClass)> = vec![
        (
            "substitute (channel compromise)",
            AttackClass::substitution(),
        ),
        ("replay (firmware compromise)", AttackClass::replay(20.0)),
        ("freeze (physical compromise)", AttackClass::freeze()),
        (
            "noise-inject (sensory channel)",
            AttackClass::noise_inject(0.6),
        ),
    ];

    if faults_mode {
        println!(
            "attack taxonomy vs deployed detector (simplified version, amulet flavor, \
             bursty link + reliability stack)\n"
        );
        println!(
            "| {:<32} | {:>9} | {:>9} | {:>9} | {:>12} | {:>9} |",
            "Attack", "TP rate", "FP rate", "Acc", "Latency (ms)", "Recov"
        );
        println!("|{}|", "-".repeat(98));
    } else {
        println!("attack taxonomy vs deployed detector (simplified version, amulet flavor)\n");
        println!(
            "| {:<32} | {:>9} | {:>9} | {:>9} | {:>12} |",
            "Attack", "TP rate", "FP rate", "Acc", "Latency (ms)"
        );
        println!("|{}|", "-".repeat(86));
    }
    for (name, class) in classes {
        let mut scenario = Scenario::new(0, Version::Simplified, duration_s);
        scenario.persist = !no_persist;
        let window_ms = (scenario.config.window_s * 1000.0) as u64;
        scenario.attack = Some(AttackSpec {
            mode: class.materialize(&victim_history, &donor, window_ms),
            start_s: attack_start,
            end_s: attack_end,
        });
        if faults_mode {
            scenario.link.loss = Some(LossModel::GilbertElliott {
                p_good_to_bad: 0.025,
                p_bad_to_good: 0.2,
                loss_good: 0.01,
                loss_bad: 0.8,
            });
            scenario = scenario.with_reliability();
        }
        match run(&scenario) {
            Ok(r) => {
                let m = r.confusion;
                let tp_rate = m
                    .recall()
                    .map(|x| format!("{:.1}%", x * 100.0))
                    .unwrap_or_else(|| "-".into());
                let fp_rate = m
                    .false_positive_rate()
                    .map(|x| format!("{:.1}%", x * 100.0))
                    .unwrap_or_else(|| "-".into());
                let acc = m
                    .accuracy()
                    .map(|x| format!("{:.1}%", x * 100.0))
                    .unwrap_or_else(|| "-".into());
                let latency = r
                    .detection_latency_ms
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "missed".into());
                if faults_mode {
                    let recov = format!("{:.1}%", r.window_recovery_rate * 100.0);
                    println!(
                        "| {name:<32} | {tp_rate:>9} | {fp_rate:>9} | {acc:>9} | {latency:>12} | {recov:>9} |"
                    );
                } else {
                    println!(
                        "| {name:<32} | {tp_rate:>9} | {fp_rate:>9} | {acc:>9} | {latency:>12} |"
                    );
                }
            }
            Err(e) => println!("| {name:<32} | failed: {e}"),
        }
    }
    if faults_mode {
        println!(
            "\n(each run: 120 s session, attack active 33 s – 93 s, 0.5 s packets, \
             Gilbert–Elliott burst loss ~10% mean, ARQ + salvage + watchdog on)"
        );
    } else {
        println!(
            "\n(each run: 120 s session, attack active 33 s – 93 s, 0.5 s packets, \
             default lossy link)"
        );
    }
}
