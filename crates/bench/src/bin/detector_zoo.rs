//! Detector-zoo comparison: every registered backend × flavor rung,
//! measured on the axes the survival policy trades between — detection
//! accuracy, RAM/ROM footprint, profiler energy, and the observed
//! telemetry span cycles of a traced device session.
//!
//! Run: `cargo run --release -p bench --bin detector_zoo`
//!
//! Writes `results/DETECTOR_zoo.json`. Every field is deterministic
//! (seeded training, cost-model cycles, no wall clock), so
//! `scripts/verify.sh` treats any drift against the committed baseline
//! as a hard failure.
//!
//! Two gates run inline, mirroring the telemetry bench:
//!
//! * the observed classifier-stage span cycles of a traced session must
//!   equal the cost model's number for that backend (the SVM prices its
//!   float MAC, the Tsetlin machine its integer clause sweep);
//! * each backend's flavor ladder must be strictly monotone in model
//!   bytes, or the survival policy's reflash-down-the-ladder story is
//!   broken.

use amulet_sim::apps::SiftApp;
use amulet_sim::costs::{detector_cycles, tsetlin_classifier_cycles, OpCosts};
use amulet_sim::machine::App as _;
use amulet_sim::profiler::ResourceProfiler;
use amulet_sim::CPU_HZ;
use ml::metrics::{AveragedMetrics, ConfusionMatrix};
use ml::{BackendKind, DetectorBackend, DetectorModel};
use physio_sim::record::Record;
use physio_sim::subject::{bank, Subject};
use sift::attack::substitution_test_set;
use sift::config::SiftConfig;
use sift::detector::Detector;
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::pipeline::{train_models, EvalProtocol};
use sift::trainer::SiftModel;
use sift::zoo::{train_backend_for_subject, tsetlin_pairs};
use std::fmt::Write as _;
use telemetry::{Stage, TelemetryReport};
use wiot::scenario::{DeviceOptions, DeviceSim, Scenario};

/// Smoke-scale protocol shared by every cell: 4 subjects, 1 minute of
/// training — small enough for the verify gate, seeded so the emitted
/// JSON is byte-stable.
const SUBJECTS: usize = 4;

fn zoo_config() -> SiftConfig {
    SiftConfig {
        train_s: 60.0,
        max_positive_per_donor: Some(15),
        ..SiftConfig::default()
    }
}

struct Args {
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "results/DETECTOR_zoo.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => match it.next() {
                Some(v) => args.out = v,
                None => usage(),
            },
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!("usage: detector_zoo [--out PATH]");
    std::process::exit(2);
}

/// One backend×flavor cell of the comparison.
struct ZooRow {
    backend: BackendKind,
    version: Version,
    metrics: AveragedMetrics,
    model_bytes: usize,
    app_fram_bytes: usize,
    app_sram_bytes: usize,
    system_fram_bytes: usize,
    classifier_cycles: f64,
    total_cycles: f64,
    avg_current_ua: f64,
    lifetime_days: f64,
    observed_classifier_cycles: u64,
    observed_spans: u64,
}

/// Subject-averaged Amulet-flavor metrics for `kind` over the paper's
/// substitution protocol, scoring through the deployed backend model.
fn evaluate_backend(
    subjects: &[Subject],
    gold: &[SiftModel],
    deployed: &[DetectorModel],
    config: &SiftConfig,
    protocol: &EvalProtocol,
) -> AveragedMetrics {
    let mut matrices = Vec::with_capacity(subjects.len());
    for (i, subject) in subjects.iter().enumerate() {
        let detector = Detector::with_backend(
            gold[i].clone(),
            deployed[i].clone(),
            PlatformFlavor::Amulet,
            config.clone(),
        )
        .unwrap_or_else(|e| {
            eprintln!("detector assembly failed for subject {i}: {e}");
            std::process::exit(1);
        });
        let victim_test = Record::synthesize(
            subject,
            protocol.test_s,
            protocol.seed.wrapping_add(1000 + i as u64),
        );
        let donor_idx = (i + 1) % subjects.len();
        let donor_test = Record::synthesize(
            &subjects[donor_idx],
            protocol.test_s,
            protocol.seed.wrapping_add(5000 + donor_idx as u64),
        );
        let test_set = substitution_test_set(
            &victim_test,
            &donor_test,
            config.window_s,
            protocol.altered_fraction,
            protocol.seed.wrapping_add(9000 + i as u64),
        )
        .unwrap_or_else(|e| {
            eprintln!("test-set assembly failed for subject {i}: {e}");
            std::process::exit(1);
        });
        let mut matrix = ConfusionMatrix::default();
        for w in &test_set {
            match detector.classify(&w.snippet) {
                Ok(d) => matrix.record(w.truth, d.label),
                Err(e) => {
                    eprintln!("classification failed for subject {i}: {e}");
                    std::process::exit(1);
                }
            }
        }
        matrices.push(matrix);
    }
    AveragedMetrics::from_matrices(&matrices).unwrap_or_else(|| {
        eprintln!("no subjects evaluated");
        std::process::exit(1);
    })
}

/// One traced single-device session for a backend×flavor cell; returns
/// the telemetry snapshot whose span units are cost-model cycles.
fn traced_session(kind: BackendKind, version: Version, config: &SiftConfig) -> TelemetryReport {
    let mut scenario = Scenario::new(0, version, 30.0);
    scenario.backend = kind;
    scenario.config = config.clone();
    scenario.seed = 0xD00D;
    let report = DeviceSim::with_options(
        &scenario,
        DeviceOptions {
            telemetry: true,
            ..DeviceOptions::default()
        },
    )
    .and_then(DeviceSim::into_report)
    .unwrap_or_else(|e| {
        eprintln!("traced session for {kind:?} {version:?} failed: {e}");
        std::process::exit(1);
    });
    report.telemetry.unwrap_or_else(|| {
        eprintln!("traced session for {kind:?} {version:?} produced no telemetry");
        std::process::exit(1);
    })
}

fn main() {
    let args = parse_args();
    let config = zoo_config();
    let protocol = EvalProtocol::default();
    let subjects: Vec<Subject> = bank().into_iter().take(SUBJECTS).collect();
    let profiler = ResourceProfiler::default();
    let costs = OpCosts::default();

    let mut rows: Vec<ZooRow> = Vec::new();
    for kind in BackendKind::ALL {
        for &version in Version::ALL.iter() {
            // Gold models drive feature extraction; the deployed model
            // of the cell's backend family does the device-side scoring.
            let gold = train_models(&subjects, version, &config).unwrap_or_else(|e| {
                eprintln!("gold training failed for {version:?}: {e}");
                std::process::exit(1);
            });
            let deployed: Vec<DetectorModel> = (0..subjects.len())
                .map(|i| {
                    train_backend_for_subject(&subjects, i, version, kind, &config, config.seed)
                        .unwrap_or_else(|e| {
                            eprintln!("{kind:?} training failed for subject {i}: {e}");
                            std::process::exit(1);
                        })
                })
                .collect();
            let metrics = evaluate_backend(&subjects, &gold, &deployed, &config, &protocol);

            // Static footprint + energy through the same app spec the
            // simulator deploys (name, cycles, and model bytes included).
            let app = SiftApp::new(version, deployed[0].clone(), config.clone())
                .unwrap_or_else(|e| {
                    eprintln!("app assembly failed for {kind:?} {version:?}: {e}");
                    std::process::exit(1);
                });
            let spec = app.resource_spec();
            let profile = profiler.profile(&[&spec]);

            let mut model_cycles = detector_cycles(version, &config, &costs, 4.0);
            if kind == BackendKind::Tsetlin {
                model_cycles.ml_classifier = tsetlin_classifier_cycles(
                    version.feature_count(),
                    tsetlin_pairs(version) as usize,
                    &costs,
                );
            }

            // Observed spans from a traced device session must agree
            // with the model (the same gate the telemetry bench runs).
            let tele = traced_session(kind, version, &config);
            let observed = tele.stage(Stage::Svm);
            if observed.spans == 0 {
                eprintln!("{kind:?} {version:?}: traced session classified no windows");
                std::process::exit(1);
            }
            if observed.mean_units() != model_cycles.ml_classifier as u64 {
                eprintln!(
                    "FAIL: {kind:?} {version:?} observed classifier mean {} cycles != model {}",
                    observed.mean_units(),
                    model_cycles.ml_classifier as u64
                );
                std::process::exit(1);
            }

            rows.push(ZooRow {
                backend: kind,
                version,
                metrics,
                model_bytes: deployed[0].footprint_bytes(),
                app_fram_bytes: profile.app_fram_bytes,
                app_sram_bytes: profile.app_sram_bytes,
                system_fram_bytes: profile.system_fram_bytes,
                classifier_cycles: model_cycles.ml_classifier,
                total_cycles: spec.cycles_per_period,
                avg_current_ua: profile.avg_current_ua,
                lifetime_days: profile.lifetime_days,
                observed_classifier_cycles: observed.mean_units(),
                observed_spans: observed.spans,
            });
        }
    }

    // Ladder gate: each backend's flavor ladder strictly shrinks the
    // total deployed FRAM image (system libs + app) and never grows the
    // model blob, so the survival policy always frees memory on reflash.
    for kind in BackendKind::ALL {
        let ladder: Vec<(usize, usize)> = rows
            .iter()
            .filter(|r| r.backend == kind)
            .map(|r| (r.system_fram_bytes + r.app_fram_bytes, r.model_bytes))
            .collect();
        let fram_ok = ladder.windows(2).all(|w| w[0].0 > w[1].0);
        let model_ok = ladder.windows(2).all(|w| w[0].1 >= w[1].1);
        if !fram_ok || !model_ok {
            eprintln!("FAIL: {kind:?} flavor ladder is not monotone: {ladder:?}");
            std::process::exit(1);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"source\": \"bench --bin detector_zoo\",");
    let _ = writeln!(
        json,
        "  \"protocol\": {{ \"subjects\": {SUBJECTS}, \"train_s\": {:.1}, \"test_s\": {:.1}, \
         \"altered_fraction\": {:.2}, \"seed\": {} }},",
        config.train_s, protocol.test_s, protocol.altered_fraction, config.seed
    );
    let _ = writeln!(json, "  \"cpu_hz\": {CPU_HZ:.1},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"backend\": \"{}\",", r.backend.id());
        let _ = writeln!(json, "      \"flavor\": \"{}\",", r.version);
        let _ = writeln!(json, "      \"accuracy\": {:.6},", r.metrics.accuracy);
        let _ = writeln!(json, "      \"f1\": {:.6},", r.metrics.f1);
        let _ = writeln!(json, "      \"fp_rate\": {:.6},", r.metrics.fp_rate);
        let _ = writeln!(json, "      \"fn_rate\": {:.6},", r.metrics.fn_rate);
        let _ = writeln!(json, "      \"model_bytes\": {},", r.model_bytes);
        let _ = writeln!(json, "      \"app_fram_bytes\": {},", r.app_fram_bytes);
        let _ = writeln!(json, "      \"app_sram_bytes\": {},", r.app_sram_bytes);
        let _ = writeln!(json, "      \"system_fram_bytes\": {},", r.system_fram_bytes);
        let _ = writeln!(json, "      \"classifier_cycles\": {:.1},", r.classifier_cycles);
        let _ = writeln!(json, "      \"total_cycles\": {:.1},", r.total_cycles);
        let _ = writeln!(json, "      \"total_ms\": {:.3},", r.total_cycles / CPU_HZ * 1000.0);
        let _ = writeln!(json, "      \"avg_current_ua\": {:.2},", r.avg_current_ua);
        let _ = writeln!(json, "      \"lifetime_days\": {:.1},", r.lifetime_days);
        let _ = writeln!(
            json,
            "      \"observed_classifier_cycles\": {},",
            r.observed_classifier_cycles
        );
        let _ = writeln!(json, "      \"observed_spans\": {}", r.observed_spans);
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");

    println!(
        "| {:<8} | {:<10} | {:>7} | {:>11} | {:>9} | {:>8} |",
        "Backend", "Flavor", "Acc", "Model bytes", "uA avg", "Days"
    );
    println!("|{}|", "-".repeat(70));
    for r in &rows {
        println!(
            "| {:<8} | {:<10} | {:>6.2}% | {:>11} | {:>9.2} | {:>8.1} |",
            r.backend.id(),
            r.version.to_string(),
            r.metrics.accuracy * 100.0,
            r.model_bytes,
            r.avg_current_ua,
            r.lifetime_days
        );
    }

    if let Err(e) = std::fs::create_dir_all(
        std::path::Path::new(&args.out).parent().unwrap_or_else(|| std::path::Path::new(".")),
    ) {
        eprintln!("failed to create output directory: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("\nwrote {}", args.out);
}
