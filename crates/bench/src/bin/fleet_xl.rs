//! Extra-large fleet bench: drive ≥100 000 devices through the slab
//! streaming engine ([`wiot::slab`]) and prove the bounded-memory and
//! determinism claims at scale.
//!
//! Run: `cargo run --release -p bench --bin fleet_xl -- --devices 100000
//! --threads 8 --seed 61455 --duration 30`
//!
//! The bin runs the full fleet once per thread count in `1, 2, threads`
//! and **exits nonzero** unless every pass produces the same slab
//! digest, the reorder window's high-water mark stays within its
//! `workers × 4` cap, and the per-pass aggregate reports are identical.
//! The spec trades fidelity knobs the resident 100-device bench keeps —
//! [`SynthProfile::Turbo`] waveforms, the `Reduced` detector flavor,
//! FRAM persistence off — for the throughput a million-device campaign
//! needs; its digest is pinned by its **own** baseline
//! (`results/BENCH_fleet_xl.json`), not the resident one.
//!
//! Writes `results/BENCH_fleet_xl.json` (override with `--out PATH`).
//! The digest and count fields are deterministic; wall-clock fields
//! (`*_wall_s`, throughput, `pending_high_water`) vary per machine and
//! run, which is why `scripts/verify.sh` hard-gates only the digest and
//! warns on throughput drift.

use ml::BackendKind;
use physio_sim::record::SynthProfile;
use physio_sim::subject::bank;
use sift::features::Version;
use sift::trainer::ModelBank;
use std::time::Instant;
use wiot::fleet::FleetSpec;
use wiot::slab::{run_fleet_streamed, SlabReport};

/// Resident-engine throughput of the committed 100-device baseline
/// (`results/BENCH_fleet_baseline.json`), the reference this bench's
/// ≥10× target is measured against.
const RESIDENT_BASELINE_THROUGHPUT: f64 = 8093.2;

struct Args {
    devices: usize,
    threads: usize,
    seed: u64,
    duration_s: f64,
    backend: BackendKind,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: fleet_xl [--devices N] [--threads N] [--seed N] [--duration SECONDS] \
         [--backend svm|tsetlin] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 100_000,
        threads: 8,
        seed: 61455,
        duration_s: 30.0,
        backend: BackendKind::Svm,
        out: "results/BENCH_fleet_xl.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--devices" => args.devices = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--duration" => args.duration_s = value.parse().unwrap_or_else(|_| usage()),
            "--backend" => {
                args.backend = match value.as_str() {
                    "svm" => BackendKind::Svm,
                    "tsetlin" => BackendKind::Tsetlin,
                    _ => usage(),
                }
            }
            "--out" => args.out = value,
            _ => usage(),
        }
    }
    args
}

/// The throughput-first fleet spec: `Reduced` flavor, turbo synthesis,
/// no FRAM persistence (the slab's checkpoint swap still exercises the
/// codec on every device).
fn xl_spec(args: &Args, threads: usize) -> FleetSpec {
    let mut spec = FleetSpec::new(args.devices, args.duration_s)
        .with_threads(threads)
        .with_seed(args.seed);
    spec.template.version = Version::Reduced;
    spec.template.synth = SynthProfile::Turbo;
    spec.template.persist = false;
    spec.template.backend = args.backend;
    spec
}

fn run_pass(args: &Args, models: &ModelBank, threads: usize) -> (SlabReport, f64) {
    let spec = xl_spec(args, threads);
    let t = Instant::now();
    let report = match run_fleet_streamed(&spec, models) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet_xl run failed at {threads} threads: {e}");
            std::process::exit(1);
        }
    };
    let wall = t.elapsed().as_secs_f64();
    println!(
        "  {} threads: {:.1} s wall -> {:.1} device-s/wall-s, digest {:#018x}, \
         pending high-water {}/{}",
        threads,
        wall,
        report.report.simulated_device_s / wall,
        report.slab_digest,
        report.pending_high_water,
        report.window_cap
    );
    if report.pending_high_water > report.window_cap {
        eprintln!(
            "fleet_xl: FAIL reorder window exceeded its cap: {} > {}",
            report.pending_high_water, report.window_cap
        );
        std::process::exit(1);
    }
    (report, wall)
}

fn main() {
    let args = parse_args();
    let backend_name = match args.backend {
        BackendKind::Svm => "svm",
        BackendKind::Tsetlin => "tsetlin",
    };
    println!(
        "fleet_xl bench: {} devices x {:.0} s ({} backend, reduced flavor, turbo synthesis, seed {})",
        args.devices, args.duration_s, backend_name, args.seed
    );

    let spec = xl_spec(&args, args.threads);
    let t0 = Instant::now();
    let models = match ModelBank::train_backend(
        &bank(),
        spec.template.version,
        spec.template.backend,
        &spec.template.config,
        spec.seed,
    ) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("enrollment failed: {e}");
            std::process::exit(1);
        }
    };
    let train_wall_s = t0.elapsed().as_secs_f64();
    println!(
        "enrolled {} subjects in {:.1} s (shared across all devices)",
        models.len(),
        train_wall_s
    );

    // Every pass replays the identical fleet; the slab digest (folded
    // per-device, in retirement order) must not depend on the worker
    // count. The last pass (the caller's thread count) is the headline.
    let mut thread_counts = vec![1usize, 2];
    if !thread_counts.contains(&args.threads) {
        thread_counts.push(args.threads);
    }
    let mut passes: Vec<(usize, SlabReport, f64)> = Vec::new();
    for &threads in &thread_counts {
        let (report, wall) = run_pass(&args, &models, threads);
        passes.push((threads, report, wall));
    }
    let (digest0, report0) = {
        let (_, r, _) = &passes[0];
        (r.slab_digest, r.report.clone())
    };
    for (threads, r, _) in &passes {
        if r.slab_digest != digest0 {
            eprintln!(
                "fleet_xl: FAIL slab digest moved with the worker count: \
                 {:#018x} at {} threads vs {:#018x} at {} threads",
                r.slab_digest, threads, digest0, passes[0].0
            );
            std::process::exit(1);
        }
        if r.report != report0 {
            eprintln!("fleet_xl: FAIL aggregate report moved with the worker count");
            std::process::exit(1);
        }
    }
    println!(
        "slab digest {:#018x} identical across {:?} worker threads",
        digest0,
        passes.iter().map(|(t, _, _)| *t).collect::<Vec<_>>()
    );

    let (headline_threads, headline, sim_wall_s) = {
        let (t, r, w) = passes.last().expect("at least one pass ran");
        (*t, r.clone(), *w)
    };
    let rep = &headline.report;
    let throughput = rep.simulated_device_s / sim_wall_s;
    let speedup = throughput / RESIDENT_BASELINE_THROUGHPUT;
    println!(
        "simulated {:.0} device-seconds in {:.1} s wall -> {:.1} device-s/wall-s \
         ({:.1}x the resident 100-device baseline)",
        rep.simulated_device_s, sim_wall_s, throughput, speedup
    );
    println!(
        "windows scored {} (sink flagged {}), recovery {:.3}, outliers {}, \
         retired checkpoint bytes {}",
        rep.windows_scored,
        rep.sink_flagged,
        rep.mean_window_recovery,
        rep.outliers.len(),
        headline.retired_checkpoint_bytes
    );

    let json = format!(
        "{{\n  \"devices\": {},\n  \"threads\": {},\n  \"digest_threads\": {:?},\n  \
         \"seed\": {},\n  \"duration_s\": {},\n  \"backend\": \"{}\",\n  \
         \"version\": \"reduced\",\n  \"synth\": \"turbo\",\n  \"persist\": false,\n  \
         \"simulated_device_s\": {},\n  \"train_wall_s\": {:.3},\n  \
         \"sim_wall_s\": {:.3},\n  \"throughput_device_s_per_wall_s\": {:.1},\n  \
         \"speedup_vs_resident_baseline\": {:.2},\n  \"slab_digest\": \"{:#018x}\",\n  \
         \"window_cap\": {},\n  \"pending_high_water\": {},\n  \
         \"retired_checkpoint_bytes\": {},\n  \"windows_scored\": {},\n  \
         \"sink_flagged\": {},\n  \"dropped_windows\": {},\n  \"salvaged_windows\": {},\n  \
         \"mean_window_recovery\": {:.6},\n  \"detections\": {},\n  \"stall_alerts\": {},\n  \
         \"outliers\": {},\n  \"mean_battery_left\": {:.6}\n}}\n",
        rep.devices,
        headline_threads,
        thread_counts,
        rep.seed,
        args.duration_s,
        backend_name,
        rep.simulated_device_s,
        train_wall_s,
        sim_wall_s,
        throughput,
        speedup,
        headline.slab_digest,
        headline.window_cap,
        headline.pending_high_water,
        headline.retired_checkpoint_bytes,
        rep.windows_scored,
        rep.sink_flagged,
        rep.dropped_windows,
        rep.salvaged_windows,
        rep.mean_window_recovery,
        rep.detections,
        rep.stall_alerts,
        rep.outliers.len(),
        rep.usage.mean_battery_left(),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
}
