//! Telemetry gates and the per-stage pipeline table (Table III
//! analogue).
//!
//! Run: `cargo run --release -p bench --bin telemetry -- --devices 6
//! --duration 9 --seed 11`
//!
//! Three jobs, in gate order:
//!
//! 1. **Digest invariance (hard gate)**: runs the same fleet at 1/2/8
//!    worker threads with the telemetry sink off and on. All six
//!    digests must be byte-identical and the merged telemetry must be
//!    thread-count-stable; any mismatch exits non-zero, which
//!    `scripts/verify.sh` treats as a hard failure.
//! 2. **Overhead (warn only)**: times the disabled-sink record hot
//!    path. The disabled handle is one niche-optimized pointer and
//!    every record call is a single `None` branch, so this should sit
//!    near a nanosecond per op; wall-clock noise makes it advisory.
//! 3. **Pipeline table**: for Original/Simplified/Reduced, the cost
//!    model's per-stage MSP430 cycles (and the derived ms @ 16 MHz,
//!    average current, lifetime) next to the *observed* per-stage span
//!    statistics from a traced single-device session — the observed
//!    mean cycles must equal the model, or the table is lying.
//!
//! Writes `results/TELEMETRY_pipeline.json` and a per-device NDJSON
//! trace to `results/TELEMETRY_trace.ndjson`.

use amulet_sim::costs::{detector_cycles, OpCosts};
use amulet_sim::energy::EnergyModel;
use amulet_sim::CPU_HZ;
use physio_sim::subject::bank;
use sift::features::Version;
use sift::trainer::ModelBank;
use std::fmt::Write as _;
use std::time::Instant;
use telemetry::{CounterId, Stage, Telemetry};
use wiot::fleet::{run_fleet_with_bank, FleetSpec};
use wiot::scenario::{DeviceOptions, DeviceSim, Scenario};

struct Args {
    devices: usize,
    duration_s: f64,
    seed: u64,
    iters: u64,
    out_json: String,
    out_trace: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry [--devices N] [--duration SECONDS] [--seed N] [--iters N] \
         [--out-json PATH] [--out-trace PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 6,
        duration_s: 9.0,
        seed: 11,
        iters: 2_000_000,
        out_json: "results/TELEMETRY_pipeline.json".to_string(),
        out_trace: "results/TELEMETRY_trace.ndjson".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--devices" => args.devices = value.parse().unwrap_or_else(|_| usage()),
            "--duration" => args.duration_s = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value.parse().unwrap_or_else(|_| usage()),
            "--out-json" => args.out_json = value,
            "--out-trace" => args.out_trace = value,
            _ => usage(),
        }
    }
    args
}

/// Time one record-hot-path iteration (a counter bump plus a stage
/// span) against `tele`, in ns/op.
fn record_path_ns_per_op(tele: &mut Telemetry, iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let tele = std::hint::black_box(&mut *tele);
        tele.count(CounterId::WindowsEmitted, 1);
        tele.span(i, Stage::Svm, 7);
    }
    std::hint::black_box(&mut *tele);
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Hard gate: the frozen fleet digest must be byte-identical with the
/// sink off and on, at every thread count, and the merged telemetry
/// must not depend on the thread count either.
fn check_digest_invariance(args: &Args) -> (u64, f64) {
    let spec = FleetSpec::new(args.devices, args.duration_s).with_seed(args.seed);
    let models = match ModelBank::train(
        &bank(),
        spec.template.version,
        &spec.template.config,
        spec.seed,
    ) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("enrollment failed: {e}");
            std::process::exit(1);
        }
    };

    let mut digests = Vec::new();
    let mut merged_reports = Vec::new();
    for &threads in &[1usize, 2, 8] {
        for &telemetry_on in &[false, true] {
            let run_spec = spec
                .clone()
                .with_threads(threads)
                .with_telemetry(telemetry_on);
            let report = match run_fleet_with_bank(&run_spec, &models) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fleet run failed ({threads} threads, telemetry {telemetry_on}): {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "  {} threads, telemetry {:>3}: digest {:#018x}",
                threads,
                if telemetry_on { "on" } else { "off" },
                report.digest()
            );
            digests.push(report.digest());
            if telemetry_on {
                merged_reports.push(report.telemetry.clone());
            }
        }
    }
    if digests.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("FAIL: fleet digest changed across thread counts or telemetry settings");
        std::process::exit(1);
    }
    if merged_reports.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("FAIL: merged fleet telemetry is not thread-count-stable");
        std::process::exit(1);
    }
    let windows = merged_reports
        .first()
        .and_then(|r| r.as_ref())
        .map_or(0.0, |r| r.counter(CounterId::WindowsEmitted) as f64);
    (digests[0], windows)
}

/// One traced single-device session for `version`: returns the final
/// telemetry report (which carries the observed per-stage spans whose
/// units are cost-model MSP430 cycles).
fn traced_session(version: Version, seed: u64) -> (Scenario, telemetry::TelemetryReport) {
    let mut scenario = Scenario::new(0, version, 30.0);
    scenario.seed = seed;
    let report = DeviceSim::with_options(
        &scenario,
        DeviceOptions {
            telemetry: true,
            ..DeviceOptions::default()
        },
    )
    .and_then(DeviceSim::into_report)
    .unwrap_or_else(|e| {
        eprintln!("traced session for {version:?} failed: {e}");
        std::process::exit(1);
    });
    let tele = report.telemetry.unwrap_or_else(|| {
        eprintln!("traced session for {version:?} produced no telemetry");
        std::process::exit(1);
    });
    (scenario, tele)
}

fn main() {
    let args = parse_args();

    println!("digest invariance gate ({} devices x {:.0} s):", args.devices, args.duration_s);
    let (digest, fleet_windows) = check_digest_invariance(&args);

    // Overhead: disabled sink (the production default) vs enabled.
    let disabled_ns = record_path_ns_per_op(&mut Telemetry::disabled(), args.iters);
    let enabled_ns = record_path_ns_per_op(&mut Telemetry::enabled(), args.iters);
    println!(
        "record hot path: disabled {disabled_ns:.2} ns/op, enabled {enabled_ns:.2} ns/op"
    );
    const DISABLED_WARN_NS: f64 = 25.0;
    let overhead_ok = disabled_ns <= DISABLED_WARN_NS;
    if !overhead_ok {
        println!(
            "WARN: disabled record path {disabled_ns:.2} ns/op exceeds {DISABLED_WARN_NS:.0} ns \
             (advisory only — wall-clock noise)"
        );
    }

    // Per-stage pipeline table: cost model vs observed spans.
    let energy = EnergyModel::default();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"source\": \"bench --bin telemetry\",");
    let _ = writeln!(json, "  \"cpu_hz\": {CPU_HZ:.1},");
    let _ = writeln!(json, "  \"fleet_digest\": \"{digest:#018x}\",");
    let _ = writeln!(json, "  \"fleet_windows_emitted\": {fleet_windows:.0},");
    let _ = writeln!(
        json,
        "  \"overhead\": {{ \"disabled_ns_per_op\": {disabled_ns:.3}, \
         \"enabled_ns_per_op\": {enabled_ns:.3}, \"warn_threshold_ns\": {DISABLED_WARN_NS:.1}, \
         \"within_threshold\": {overhead_ok} }},"
    );
    json.push_str("  \"versions\": [\n");

    let mut trace = String::new();
    for (vi, version) in [Version::Original, Version::Simplified, Version::Reduced]
        .into_iter()
        .enumerate()
    {
        let (scenario, tele) = traced_session(version, 0xC0FFEE + vi as u64);
        let model = detector_cycles(version, &scenario.config, &OpCosts::default(), 4.0);
        let window_s = scenario.config.window_s;
        let total = model.total();
        let avg_ua = energy.average_current_for_cycles_ua(total, window_s);
        let lifetime = energy.lifetime_days(avg_ua);

        println!("\n{version:?}: {total:.0} cycles/window -> {:.1} ms @ 16 MHz, {avg_ua:.1} uA avg, {lifetime:.0} days",
            total / CPU_HZ * 1000.0);
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"version\": \"{version:?}\",");
        let _ = writeln!(json, "      \"window_s\": {window_s:.1},");
        let _ = writeln!(json, "      \"total_cycles\": {total:.1},");
        let _ = writeln!(json, "      \"total_ms\": {:.3},", total / CPU_HZ * 1000.0);
        let _ = writeln!(json, "      \"avg_current_ua\": {avg_ua:.2},");
        let _ = writeln!(json, "      \"lifetime_days\": {lifetime:.1},");
        json.push_str("      \"stages\": [\n");
        let stage_rows = [
            (Stage::PeakDetection, model.peaks_data_check),
            (Stage::FeatureExtraction, model.feature_extraction),
            (Stage::Svm, model.ml_classifier),
        ];
        for (si, (stage, cycles)) in stage_rows.into_iter().enumerate() {
            let observed = tele.stage(stage);
            println!(
                "  {:<18} model {:>12.0} cycles ({:>8.3} ms)   observed {} spans, mean {} cycles",
                stage.name(),
                cycles,
                cycles / CPU_HZ * 1000.0,
                observed.spans,
                observed.mean_units()
            );
            if observed.spans > 0 && observed.mean_units() != cycles as u64 {
                eprintln!(
                    "FAIL: {} observed mean {} cycles != model {} cycles",
                    stage.name(),
                    observed.mean_units(),
                    cycles as u64
                );
                std::process::exit(1);
            }
            let _ = writeln!(
                json,
                "        {{ \"stage\": \"{}\", \"model_cycles\": {:.1}, \"model_ms\": {:.4}, \
                 \"observed_spans\": {}, \"observed_mean_cycles\": {} }}{}",
                stage.name(),
                cycles,
                cycles / CPU_HZ * 1000.0,
                observed.spans,
                observed.mean_units(),
                if si + 1 < stage_rows.len() { "," } else { "" }
            );
        }
        json.push_str("      ]\n");
        let _ = writeln!(json, "    }}{}", if vi < 2 { "," } else { "" });

        // The NDJSON trace carries every version's session back to back
        // (each meta line restates the snapshot it heads).
        trace.push_str(&telemetry::export::ndjson(&tele));
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("failed to create results/: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out_json, &json) {
        eprintln!("failed to write {}: {e}", args.out_json);
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out_trace, &trace) {
        eprintln!("failed to write {}: {e}", args.out_trace);
        std::process::exit(1);
    }
    println!("\nwrote {} and {}", args.out_json, args.out_trace);
    println!("telemetry gates passed (digest {digest:#018x})");
}
