//! Crash-recovery soak: hammer a fleet with seeded random power cycles
//! (brownout reboots, torn checkpoint commits, FRAM bit rot) and verify
//! every device recovers from its FRAM checkpoint instead of losing its
//! enrollment, at every thread count.
//!
//! Run: `cargo run --release -p bench --bin recovery -- --devices 50
//! --cycles 20 --seed 61455 --duration 30`
//!
//! With the defaults this is 50 devices x ~20 power-cycle events, over
//! 1000 reboots fleet-wide. The gate fails (exit 1) if any device fails to recover, if
//! any recovery is missing, if the fleet stops scoring windows, or if
//! the report digest differs between the single-threaded and
//! multi-threaded runs.

use amulet_sim::nvram::{CheckpointStore, NVRAM_BYTES};
use physio_sim::subject::bank;
use sift::trainer::ModelBank;
use std::time::Instant;
use wiot::faults::{FaultEvent, FaultKind, FaultPlan};
use wiot::fleet::{run_fleet_with_bank, FleetSpec};

struct Args {
    devices: usize,
    cycles: usize,
    threads: usize,
    seed: u64,
    duration_s: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: recovery [--devices N] [--cycles N] [--threads N] [--seed N] [--duration SECONDS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 50,
        cycles: 22,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed: 0x5EED_B007,
        duration_s: 30.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--devices" => args.devices = value.parse().unwrap_or_else(|_| usage()),
            "--cycles" => args.cycles = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--duration" => args.duration_s = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    args
}

/// splitmix64: the soak's only randomness source, so the whole plan is
/// a pure function of `--seed`.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the seeded random power-cycle schedule: mostly plain brownout
/// reboots, with torn commits (power fails mid-FRAM-write, at a random
/// byte offset of the commit sequence) and single-bit FRAM rot mixed
/// in. Event times land at arbitrary sub-tick offsets on purpose.
fn soak_plan(seed: u64, cycles: usize, duration_s: f64) -> FaultPlan {
    let commit_seq = CheckpointStore::commit_sequence_len(sift::checkpoint::encoded_len(
        sift::features::Version::Simplified,
    ));
    let mut state = seed ^ 0xC4A5_5E77_0F0F_1234;
    let mut plan = FaultPlan::new();
    for _ in 0..cycles {
        let frac = (mix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        let t = 0.9 + frac * (duration_s - 1.8);
        let kind = match mix(&mut state) % 10 {
            // Power fails partway through a commit: every cut offset in
            // the sequence is fair game.
            0 | 1 => FaultKind::TornCheckpoint {
                cut_bytes: 1 + (mix(&mut state) as usize) % commit_seq,
            },
            // A stray bit flip somewhere in the checkpoint region,
            // followed later by whatever reboot comes next.
            2 => FaultKind::CheckpointBitRot {
                byte: (mix(&mut state) as usize) % NVRAM_BYTES,
                bit: (mix(&mut state) % 8) as u8,
            },
            _ => FaultKind::DeviceReboot,
        };
        plan.push(FaultEvent {
            start_s: t,
            end_s: t,
            kind,
        });
    }
    plan
}

fn main() {
    let args = parse_args();
    let plan = soak_plan(args.seed, args.cycles, args.duration_s);
    let power_cycles = plan
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                FaultKind::DeviceReboot | FaultKind::TornCheckpoint { .. }
            )
        })
        .count();
    let mut spec = FleetSpec::new(args.devices, args.duration_s).with_seed(args.seed);
    spec.template.faults = plan;
    println!(
        "recovery soak: {} devices x {} fault events ({} power cycles/device, {} fleet-wide), seed {}",
        args.devices,
        args.cycles,
        power_cycles,
        power_cycles * args.devices,
        args.seed
    );

    let models = match ModelBank::train(
        &bank(),
        spec.template.version,
        &spec.template.config,
        spec.seed,
    ) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("enrollment failed: {e}");
            std::process::exit(1);
        }
    };

    let t0 = Instant::now();
    let mut failed = false;
    let mut digests = Vec::new();
    for threads in [1, args.threads.max(2)] {
        let run_spec = spec.clone().with_threads(threads);
        let report = match run_fleet_with_bank(&run_spec, &models) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAIL: fleet run ({threads} threads) errored: {e}");
                std::process::exit(1);
            }
        };
        let f = &report.faults;
        println!(
            "  {threads:>2} threads: digest {:#018x}, reboots {}, recoveries {}, rollbacks {}, \
             failures {}, windows scored {}",
            report.digest(),
            f.reboots,
            f.recoveries,
            f.rollbacks,
            f.recovery_failures,
            report.windows_scored
        );
        if f.recovery_failures > 0 {
            eprintln!("FAIL: {} recoveries were refused fleet-wide", f.recovery_failures);
            failed = true;
        }
        if f.recoveries != f.reboots {
            eprintln!(
                "FAIL: {} reboots but only {} checkpoint recoveries",
                f.reboots, f.recoveries
            );
            failed = true;
        }
        if report.windows_scored == 0 {
            eprintln!("FAIL: fleet stopped scoring windows under the soak");
            failed = true;
        }
        for d in &report.per_device {
            if d.faults.recovery_failures > 0 || d.faults.recoveries != d.faults.reboots {
                eprintln!(
                    "FAIL: device {} not operational at exit: {:?}",
                    d.device, d.faults
                );
                failed = true;
            }
        }
        digests.push(report.digest());
    }
    if digests.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("FAIL: report digest depends on the thread count: {digests:#x?}");
        failed = true;
    }
    println!(
        "soak finished in {:.1} s wall: {}",
        t0.elapsed().as_secs_f64(),
        if failed { "FAIL" } else { "ok" }
    );
    if failed {
        std::process::exit(1);
    }
}
