//! Shared harness code for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` §3 for the index); this library
//! holds the experiment drivers and the text-table formatting they
//! share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ml::metrics::AveragedMetrics;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::pipeline::{evaluate_with_models, train_models, EvalProtocol, EvaluationResult};
use sift::SiftError;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's protocol: 12 subjects, Δ = 20 min training.
    Paper,
    /// A fast smoke-scale run (4 subjects, 1 min training) for CI and
    /// quick iteration.
    Smoke,
}

impl Scale {
    /// Parse from the CLI arguments (`--smoke` selects the fast run).
    /// Unrecognized arguments abort with a usage message rather than
    /// being silently ignored (a typo'd `--smok` must not quietly start
    /// the 12-subject run).
    pub fn from_args() -> Self {
        let mut scale = Scale::Paper;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" => scale = Scale::Smoke,
                other => {
                    eprintln!("unrecognized argument `{other}` (supported: --smoke)");
                    std::process::exit(2);
                }
            }
        }
        scale
    }

    /// Pipeline configuration for this scale.
    pub fn config(self) -> SiftConfig {
        match self {
            Scale::Paper => SiftConfig::default(),
            Scale::Smoke => SiftConfig {
                train_s: 60.0,
                max_positive_per_donor: Some(15),
                ..SiftConfig::default()
            },
        }
    }

    /// Number of subjects evaluated at this scale.
    pub fn subject_count(self) -> usize {
        match self {
            Scale::Paper => 12,
            Scale::Smoke => 4,
        }
    }
}

/// One row of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Detector version.
    pub version: Version,
    /// Platform flavor.
    pub flavor: PlatformFlavor,
    /// Subject-averaged metrics.
    pub metrics: AveragedMetrics,
}

/// Run the full Table II experiment: every version × flavor cell.
///
/// Models are trained once per version (training is platform-independent,
/// as in the paper) and evaluated under both flavors.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_table2(scale: Scale) -> Result<Vec<Table2Row>, SiftError> {
    let subjects: Vec<_> = bank().into_iter().take(scale.subject_count()).collect();
    let config = scale.config();
    let protocol = EvalProtocol::default();
    let mut rows = Vec::new();
    for version in Version::ALL {
        let models = train_models(&subjects, version, &config)?;
        for flavor in [PlatformFlavor::Amulet, PlatformFlavor::Gold] {
            let result: EvaluationResult =
                evaluate_with_models(&subjects, &models, flavor, &config, &protocol)?;
            rows.push(Table2Row {
                version,
                flavor,
                metrics: result.averaged,
            });
        }
    }
    Ok(rows)
}

/// Format the Table II rows in the paper's layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {:<10} | {:<8} | {:>7} | {:>7} | {:>8} | {:>7} |",
        "Version", "Platform", "Avg FP", "Avg FN", "Avg Acc", "Avg F1"
    );
    let _ = writeln!(out, "|{}|", "-".repeat(66));
    for r in rows {
        let m = &r.metrics;
        let _ = writeln!(
            out,
            "| {:<10} | {:<8} | {:>6.2}% | {:>6.2}% | {:>7.2}% | {:>6.2}% |",
            r.version.to_string(),
            r.flavor.to_string(),
            m.fp_rate * 100.0,
            m.fn_rate * 100.0,
            m.accuracy * 100.0,
            m.f1 * 100.0,
        );
    }
    out
}

/// Paper reference values for Table II (for the side-by-side print).
pub fn paper_table2_reference() -> &'static str {
    "paper reference (Table II):\n\
     | original   | amulet   |   0.83% |  12.50% |   93.06% |  92.77% |\n\
     | original   | matlab   |   5.83% |  10.23% |   91.97% |  91.97% |\n\
     | simplified | amulet   |   6.67% |   7.58% |   92.86% |  93.43% |\n\
     | simplified | matlab   |   5.00% |  12.88% |   91.06% |  90.28% |\n\
     | reduced    | amulet   |  12.08% |  15.15% |   86.31% |  87.10% |\n\
     | reduced    | matlab   |  22.08% |  14.39% |   81.76% |  84.04% |"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_table2_runs_and_beats_chance() {
        let rows = run_table2(Scale::Smoke).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.metrics.accuracy > 0.6,
                "{} {} accuracy {}",
                r.version,
                r.flavor,
                r.metrics.accuracy
            );
        }
        let table = format_table2(&rows);
        assert!(table.contains("original"));
        assert!(table.contains("amulet"));
        assert_eq!(table.lines().count(), 8);
    }

    #[test]
    fn scale_parameters() {
        assert_eq!(Scale::Paper.subject_count(), 12);
        assert_eq!(Scale::Paper.config().train_s, 1200.0);
        assert_eq!(Scale::Smoke.config().train_s, 60.0);
    }

    #[test]
    fn reference_table_is_complete() {
        let r = paper_table2_reference();
        assert_eq!(r.lines().count(), 7);
    }
}
