//! Shared harness code for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` §3 for the index); this library
//! holds the experiment drivers and the text-table formatting they
//! share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ml::metrics::AveragedMetrics;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::Version;
use sift::flavor::PlatformFlavor;
use sift::pipeline::{evaluate_with_models, train_models, EvalProtocol, EvaluationResult};
use sift::SiftError;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's protocol: 12 subjects, Δ = 20 min training.
    Paper,
    /// A fast smoke-scale run (4 subjects, 1 min training) for CI and
    /// quick iteration.
    Smoke,
}

impl Scale {
    /// Parse from the CLI arguments (`--smoke` selects the fast run).
    /// Unrecognized arguments abort with a usage message rather than
    /// being silently ignored (a typo'd `--smok` must not quietly start
    /// the 12-subject run).
    pub fn from_args() -> Self {
        let mut scale = Scale::Paper;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" => scale = Scale::Smoke,
                other => {
                    eprintln!("unrecognized argument `{other}` (supported: --smoke)");
                    std::process::exit(2);
                }
            }
        }
        scale
    }

    /// Pipeline configuration for this scale.
    pub fn config(self) -> SiftConfig {
        match self {
            Scale::Paper => SiftConfig::default(),
            Scale::Smoke => SiftConfig {
                train_s: 60.0,
                max_positive_per_donor: Some(15),
                ..SiftConfig::default()
            },
        }
    }

    /// Number of subjects evaluated at this scale.
    pub fn subject_count(self) -> usize {
        match self {
            Scale::Paper => 12,
            Scale::Smoke => 4,
        }
    }
}

/// One row of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Detector version.
    pub version: Version,
    /// Platform flavor.
    pub flavor: PlatformFlavor,
    /// Subject-averaged metrics.
    pub metrics: AveragedMetrics,
}

/// Run the full Table II experiment: every version × flavor cell.
///
/// Models are trained once per version (training is platform-independent,
/// as in the paper) and evaluated under both flavors.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_table2(scale: Scale) -> Result<Vec<Table2Row>, SiftError> {
    let subjects: Vec<_> = bank().into_iter().take(scale.subject_count()).collect();
    let config = scale.config();
    let protocol = EvalProtocol::default();
    let mut rows = Vec::new();
    for version in Version::ALL {
        let models = train_models(&subjects, version, &config)?;
        for flavor in [PlatformFlavor::Amulet, PlatformFlavor::Gold] {
            let result: EvaluationResult =
                evaluate_with_models(&subjects, &models, flavor, &config, &protocol)?;
            rows.push(Table2Row {
                version,
                flavor,
                metrics: result.averaged,
            });
        }
    }
    Ok(rows)
}

/// Format the Table II rows in the paper's layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {:<10} | {:<8} | {:>7} | {:>7} | {:>8} | {:>7} |",
        "Version", "Platform", "Avg FP", "Avg FN", "Avg Acc", "Avg F1"
    );
    let _ = writeln!(out, "|{}|", "-".repeat(66));
    for r in rows {
        let m = &r.metrics;
        let _ = writeln!(
            out,
            "| {:<10} | {:<8} | {:>6.2}% | {:>6.2}% | {:>7.2}% | {:>6.2}% |",
            r.version.to_string(),
            r.flavor.to_string(),
            m.fp_rate * 100.0,
            m.fn_rate * 100.0,
            m.accuracy * 100.0,
            m.f1 * 100.0,
        );
    }
    out
}

/// Paper reference values for Table II (for the side-by-side print).
pub fn paper_table2_reference() -> &'static str {
    "paper reference (Table II):\n\
     | original   | amulet   |   0.83% |  12.50% |   93.06% |  92.77% |\n\
     | original   | matlab   |   5.83% |  10.23% |   91.97% |  91.97% |\n\
     | simplified | amulet   |   6.67% |   7.58% |   92.86% |  93.43% |\n\
     | simplified | matlab   |   5.00% |  12.88% |   91.06% |  90.28% |\n\
     | reduced    | amulet   |  12.08% |  15.15% |   86.31% |  87.10% |\n\
     | reduced    | matlab   |  22.08% |  14.39% |   81.76% |  84.04% |"
}

/// Everything the fleet bench measured: the deterministic report plus
/// the wall-clock numbers that stay out of it.
#[derive(Debug, Clone)]
pub struct FleetBenchResult {
    /// The deterministic fleet report.
    pub report: wiot::fleet::FleetReport,
    /// Worker threads used.
    pub threads: usize,
    /// Per-device session length, seconds.
    pub duration_s: f64,
    /// Wall-clock spent training the model bank, seconds.
    pub train_wall_s: f64,
    /// Wall-clock spent simulating the fleet, seconds.
    pub sim_wall_s: f64,
}

impl FleetBenchResult {
    /// Simulated device-seconds per wall-second of fleet simulation —
    /// the bench's headline throughput number.
    pub fn throughput(&self) -> f64 {
        if self.sim_wall_s > 0.0 {
            self.report.simulated_device_s / self.sim_wall_s
        } else {
            0.0
        }
    }
}

/// Render the fleet bench result as the `BENCH_fleet.json` payload.
///
/// Deterministic fields (digest, windows, recovery) come straight from
/// the report; wall-clock fields (`*_wall_s`, `throughput_*`) vary per
/// machine, which is why the baseline diff in `scripts/verify.sh` is
/// warn-only.
pub fn fleet_bench_json(r: &FleetBenchResult) -> String {
    let rep = &r.report;
    format!(
        "{{\n  \"devices\": {},\n  \"threads\": {},\n  \"seed\": {},\n  \"duration_s\": {},\n  \"simulated_device_s\": {},\n  \"train_wall_s\": {:.3},\n  \"sim_wall_s\": {:.3},\n  \"throughput_device_s_per_wall_s\": {:.1},\n  \"digest\": \"{:#018x}\",\n  \"windows_scored\": {},\n  \"sink_flagged\": {},\n  \"dropped_windows\": {},\n  \"salvaged_windows\": {},\n  \"mean_window_recovery\": {:.6},\n  \"detections\": {},\n  \"stall_alerts\": {},\n  \"outliers\": {},\n  \"mean_battery_left\": {:.6}\n}}\n",
        rep.devices,
        r.threads,
        rep.seed,
        r.duration_s,
        rep.simulated_device_s,
        r.train_wall_s,
        r.sim_wall_s,
        r.throughput(),
        rep.digest(),
        rep.windows_scored,
        rep.sink_flagged,
        rep.dropped_windows,
        rep.salvaged_windows,
        rep.mean_window_recovery,
        rep.detections,
        rep.stall_alerts,
        rep.outliers.len(),
        rep.usage.mean_battery_left(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_table2_runs_and_beats_chance() {
        let rows = run_table2(Scale::Smoke).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.metrics.accuracy > 0.6,
                "{} {} accuracy {}",
                r.version,
                r.flavor,
                r.metrics.accuracy
            );
        }
        let table = format_table2(&rows);
        assert!(table.contains("original"));
        assert!(table.contains("amulet"));
        assert_eq!(table.lines().count(), 8);
    }

    #[test]
    fn scale_parameters() {
        assert_eq!(Scale::Paper.subject_count(), 12);
        assert_eq!(Scale::Paper.config().train_s, 1200.0);
        assert_eq!(Scale::Smoke.config().train_s, 60.0);
    }

    #[test]
    fn reference_table_is_complete() {
        let r = paper_table2_reference();
        assert_eq!(r.lines().count(), 7);
    }

    #[test]
    fn fleet_json_is_well_formed_and_deterministic_fields_match() {
        use wiot::fleet::{run_fleet, FleetSpec};
        let spec = FleetSpec::new(2, 9.0).with_seed(5);
        let report = run_fleet(&spec).unwrap();
        let digest = report.digest();
        let result = FleetBenchResult {
            report,
            threads: 2,
            duration_s: 9.0,
            train_wall_s: 1.0,
            sim_wall_s: 0.5,
        };
        let json = fleet_bench_json(&result);
        assert!(json.contains("\"devices\": 2"));
        assert!(json.contains(&format!("\"digest\": \"{digest:#018x}\"")));
        assert!(json.contains("\"throughput_device_s_per_wall_s\": 36.0"));
        // Crude structural check: balanced braces, one top-level object.
        assert!(json.trim().starts_with('{') && json.trim().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
