//! Transport edge cases: the awkward corners of the ARQ layer that the
//! happy-path suites never hit.
//!
//! * **Tail loss on the last packet of a stream** — no later arrival
//!   ever exposes the gap, so recovery rides entirely on the
//!   timeout-driven NACK path, including across the scenario's
//!   end-of-session drain.
//! * **Retry-budget exhaustion** — a dead link must surface
//!   [`WiotError::RetryBudgetExhausted`] all the way up through
//!   [`run`] when the ARQ is strict, and degrade into counted give-ups
//!   when it is not.
//! * **Duplication under ARQ** — a duplicating radio MAC (of both
//!   first-time sends and retransmissions) must never double-deliver a
//!   chunk or shift a window verdict.

use wiot::channel::{Channel, ChannelConfig, LossModel};
use wiot::device::{SensorPacket, Stream};
use wiot::faults::{FaultEvent, FaultKind, FaultPlan};
use wiot::scenario::{run, Scenario};
use wiot::transport::{ArqConfig, ArqLink};
use wiot::WiotError;

fn packet(seq: u64) -> SensorPacket {
    SensorPacket {
        stream: Stream::Ecg,
        seq,
        start_sample: seq as usize * 8,
        samples: vec![seq as f64; 8],
        peaks: vec![],
    }
}

fn quiet_scenario() -> Scenario {
    Scenario::new(1, sift::features::Version::Simplified, 12.0)
}

/// The final packet of a stream is lost. Nothing ever arrives after it
/// to reveal the gap by sequence number, so only the send-time tail
/// timeout can trigger the NACK — and it must, because the stream is
/// over and no further traffic will flush the hole.
#[test]
fn nack_recovers_the_lost_final_packet_of_a_stream() {
    let mut link = ArqLink::new(Channel::perfect(), ArqConfig::default()).unwrap();
    let mut got = Vec::new();
    let mut now = 0u64;
    for seq in 0..9 {
        link.send(now, packet(seq));
        got.extend(link.pump(now).unwrap().iter().map(|d| d.packet.seq));
        now += 10;
    }
    // The last packet of the stream hits a momentary blackout.
    link.channel_mut()
        .set_degrade(Some(LossModel::Bernoulli { p: 1.0 }))
        .unwrap();
    link.send(now, packet(9));
    got.extend(link.pump(now).unwrap().iter().map(|d| d.packet.seq));
    link.channel_mut().set_degrade(None).unwrap();
    assert!(!got.contains(&9), "blackout should have eaten seq 9");

    // Drain: no new sends, only the tail-loss timeout can save seq 9.
    for _ in 0..200 {
        now += 10;
        got.extend(link.pump(now).unwrap().iter().map(|d| d.packet.seq));
        if link.idle() {
            break;
        }
    }
    assert_eq!(got, (0..10).collect::<Vec<_>>());
    let s = link.stats();
    assert!(s.nacks_sent >= 1, "{s:?}");
    assert_eq!(s.gap_recoveries, 1, "{s:?}");
    assert_eq!(s.give_ups, 0, "{s:?}");
    assert!(link.idle());
}

/// Same edge at scenario level: a link blackout swallows the packets of
/// the session's final window, and the ARQ must pull them back during
/// the end-of-session drain — the window count and verdicts end up
/// identical to an unfaulted run.
#[test]
fn tail_loss_on_the_final_window_is_recovered_through_the_drain() {
    let clean = run(&quiet_scenario()).unwrap();
    assert!(
        clean.window_recovery_rate > 0.99,
        "baseline must be clean, got {}",
        clean.window_recovery_rate
    );

    let mut scenario = quiet_scenario();
    // Generous retry budget: every retransmit inside the blackout is
    // lost too, and the recovering one only lands after it lifts.
    scenario.arq = Some(ArqConfig {
        max_retries: 12,
        ..ArqConfig::default()
    });
    scenario.faults = FaultPlan::new().with(FaultEvent {
        start_s: 11.0,
        end_s: 11.4,
        kind: FaultKind::LinkDegrade {
            stream: None,
            loss: LossModel::Bernoulli { p: 1.0 },
        },
    });
    let report = run(&scenario).unwrap();
    let t = report.transport.expect("ARQ was on");
    assert!(t.nacks_sent > 0, "{t:?}");
    assert!(t.gap_recoveries > 0, "{t:?}");
    assert_eq!(t.give_ups, 0, "{t:?}");
    assert!(report.channel.lost > 0, "the blackout must cost packets");
    assert_eq!(report.dropped_windows, 0);
    assert_eq!(report.salvaged_windows, 0);
    assert_eq!(report.window_recovery_rate, clean.window_recovery_rate);
    assert_eq!(report.confusion.tp + report.confusion.fp, clean.confusion.tp + clean.confusion.fp);
    assert_eq!(report.confusion.tn + report.confusion.fn_, clean.confusion.tn + clean.confusion.fn_);
}

/// A dead link under a strict ARQ is a hard failure, and it surfaces as
/// `RetryBudgetExhausted` from `run` itself — not as a quietly empty
/// report.
#[test]
fn strict_arq_surfaces_retry_budget_exhaustion_from_run() {
    let mut scenario = quiet_scenario();
    scenario.link.loss_prob = 1.0;
    scenario.arq = Some(ArqConfig {
        strict: true,
        max_retries: 2,
        ..ArqConfig::default()
    });
    let err = run(&scenario).expect_err("a dead strict link cannot produce a report");
    assert!(
        matches!(err, WiotError::RetryBudgetExhausted { .. }),
        "{err:?}"
    );
}

/// The same dead link without `strict` degrades gracefully: the run
/// completes, every packet is accounted for as a give-up, and the
/// recovery rate honestly reports zero.
#[test]
fn non_strict_arq_counts_give_ups_instead_of_failing() {
    let mut scenario = quiet_scenario();
    scenario.link.loss_prob = 1.0;
    scenario.arq = Some(ArqConfig {
        max_retries: 2,
        ..ArqConfig::default()
    });
    let report = run(&scenario).unwrap();
    let t = report.transport.expect("ARQ was on");
    assert!(t.give_ups > 0, "{t:?}");
    assert_eq!(t.gap_recoveries, 0, "{t:?}");
    assert_eq!(report.window_recovery_rate, 0.0);
}

/// A duplicating radio MAC under ARQ: every duplicate is discarded at
/// the receiver, and the window stream is byte-identical to the clean
/// run — duplication must never double-feed a chunk into assembly.
#[test]
fn arq_discards_duplicates_without_double_counting_windows() {
    let clean = run(&quiet_scenario()).unwrap();

    let mut scenario = quiet_scenario();
    scenario.link.dup_prob = 0.35;
    scenario.arq = Some(ArqConfig::default());
    let report = run(&scenario).unwrap();
    let t = report.transport.expect("ARQ was on");
    assert!(report.channel.duplicated > 0, "{:?}", report.channel);
    assert!(t.duplicates_discarded > 0, "{t:?}");
    assert_eq!(t.give_ups, 0, "{t:?}");
    assert_eq!(report.dropped_windows, 0);
    assert_eq!(report.window_recovery_rate, clean.window_recovery_rate);
    assert_eq!(report.confusion.fp, clean.confusion.fp);
    assert_eq!(report.confusion.tn, clean.confusion.tn);
}

/// Loss and duplication together: retransmissions themselves get
/// duplicated, so the receiver sees the same recovered sequence number
/// more than once. Gap recovery and dedup must not fight — each hole is
/// filled exactly once and the extra copies are discarded.
#[test]
fn duplicated_retransmissions_are_deduplicated_once_recovered() {
    let ch = Channel::with_config(
        ChannelConfig {
            loss: LossModel::Bernoulli { p: 0.15 },
            dup_prob: 0.5,
            base_delay_ms: 5,
            jitter_ms: 3,
            ..ChannelConfig::default()
        },
        0xD0D0,
    )
    .unwrap();
    let mut link = ArqLink::new(ch, ArqConfig::default()).unwrap();
    let mut got = Vec::new();
    let mut now = 0u64;
    for seq in 0..120 {
        link.send(now, packet(seq));
        got.extend(link.pump(now).unwrap().iter().map(|d| d.packet.seq));
        now += 10;
    }
    for _ in 0..300 {
        now += 10;
        got.extend(link.pump(now).unwrap().iter().map(|d| d.packet.seq));
        if link.idle() {
            break;
        }
    }
    let s = link.stats();
    assert!(s.gap_recoveries > 0, "{s:?}");
    assert!(s.duplicates_discarded > 0, "{s:?}");
    assert_eq!(s.give_ups, 0, "{s:?}");
    // Exactly-once delivery: every sequence number, no repeats.
    let mut sorted = got.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), got.len(), "a duplicate leaked through");
    assert_eq!(sorted, (0..120).collect::<Vec<_>>());
}
