//! Property-based tests for the WIoT environment: channel statistics,
//! packetization integrity, and attacker containment.

use physio_sim::record::Record;
use physio_sim::subject::bank;
use proptest::prelude::*;
use wiot::attacker::{AttackMode, Attacker};
use wiot::channel::Channel;
use wiot::device::{SensorDevice, SensorPacket, Stream};

fn ecg_packet(start: usize, len: usize, fill: f64) -> SensorPacket {
    SensorPacket {
        stream: Stream::Ecg,
        seq: (start / len.max(1)) as u64,
        start_sample: start,
        samples: vec![fill; len],
        peaks: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn channel_loss_rate_tracks_parameter(loss_pct in 0u32..=90, seed in any::<u64>()) {
        let p = loss_pct as f64 / 100.0;
        let mut ch = Channel::new(p, 0, 0, seed).unwrap();
        for i in 0..2000 {
            ch.transmit(0, ecg_packet(i, 4, 0.0));
        }
        prop_assert!((ch.loss_rate() - p).abs() < 0.05, "target {p} got {}", ch.loss_rate());
    }

    #[test]
    fn channel_delay_bounded(delay in 0u64..100, jitter in 0u64..50, seed in any::<u64>()) {
        let mut ch = Channel::new(0.0, delay, jitter, seed).unwrap();
        for i in 0..200 {
            let ds = ch.transmit(1000, ecg_packet(i, 4, 0.0));
            prop_assert_eq!(ds.len(), 1);
            prop_assert!(ds[0].at_ms >= 1000 + delay);
            prop_assert!(ds[0].at_ms <= 1000 + delay + jitter);
        }
    }

    #[test]
    fn devices_packetize_losslessly(subject in 0usize..12, seed in any::<u64>(), chunk_ds in 1u32..20) {
        let b = bank();
        let r = Record::synthesize(&b[subject], 6.0, seed);
        let chunk_s = chunk_ds as f64 / 10.0;
        let mut dev = SensorDevice::ecg(&r, chunk_s);
        let mut collected = Vec::new();
        while let Some(p) = dev.poll() {
            prop_assert_eq!(p.start_sample, collected.len());
            collected.extend(p.samples);
        }
        prop_assert_eq!(&collected[..], &r.ecg[..collected.len()]);
        // At most one trailing partial chunk is dropped.
        let chunk_len = (chunk_s * r.fs).round() as usize;
        prop_assert!(r.len() - collected.len() < chunk_len.max(1));
    }

    #[test]
    fn attacker_never_touches_abp_or_outside_window(
        start in 0u64..5_000,
        len in 1u64..5_000,
        now in 0u64..15_000,
        seed in any::<u64>(),
    ) {
        let mut att = Attacker::new(AttackMode::Freeze, start, start + len, seed);
        let abp = SensorPacket {
            stream: Stream::Abp,
            seq: 0,
            start_sample: 0,
            samples: vec![77.0; 16],
            peaks: vec![3],
        };
        prop_assert_eq!(att.intercept(now, abp.clone(), 360.0), abp);

        let ecg = ecg_packet(0, 16, 0.42);
        let out = att.intercept(now, ecg.clone(), 360.0);
        if (start..start + len).contains(&now) {
            prop_assert!(att.hijacked_packets() > 0);
        } else {
            prop_assert_eq!(out, ecg);
        }
    }

    #[test]
    fn substitution_attacker_output_is_donor_material(
        seed in any::<u64>(),
        start_chunk in 0usize..20,
    ) {
        let b = bank();
        let donor = Record::synthesize(&b[2], 12.0, seed);
        let mut att = Attacker::new(
            AttackMode::Substitute { donor: donor.clone() },
            0,
            60_000,
            seed,
        );
        let len = 180;
        let start = start_chunk * len;
        let out = att.intercept(10, ecg_packet(start, len, 0.0), 360.0);
        // Every output sample exists somewhere in the donor ECG at the
        // co-located position.
        let s = start % donor.ecg.len().saturating_sub(len).max(1);
        prop_assert_eq!(&out.samples[..], &donor.ecg[s..s + len]);
    }

    #[test]
    fn noise_injection_bounded_by_amplitude(amp_mpct in 1u32..200, seed in any::<u64>()) {
        let amp = amp_mpct as f64 / 100.0;
        let mut att = Attacker::new(AttackMode::NoiseInject { amplitude_mv: amp }, 0, 60_000, seed);
        let clean = ecg_packet(0, 64, 0.5);
        let out = att.intercept(5, clean.clone(), 360.0);
        for (o, c) in out.samples.iter().zip(&clean.samples) {
            prop_assert!((o - c).abs() <= amp + 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Base-station accounting invariant: every window index up to the
    /// last logged one appears exactly once in the log, and the emitted/
    /// dropped/rejected counters match the log.
    #[test]
    fn basestation_window_log_is_a_partition(loss_pct in 0u32..20, seed in any::<u64>()) {
        use amulet_sim::apps::SiftApp;
        use sift::config::SiftConfig;
        use sift::features::Version;
        use sift::trainer::train_for_subject;
        use wiot::basestation::{BaseStation, WindowOutcome};

        let cfg = SiftConfig {
            train_s: 60.0,
            max_positive_per_donor: Some(10),
            ..SiftConfig::default()
        };
        let model = train_for_subject(&bank(), 0, Version::Reduced, &cfg, 7).unwrap();
        let app = SiftApp::new(Version::Reduced, model.embedded().clone(), cfg.clone()).unwrap();
        let mut bs = BaseStation::new(app, cfg, 0.5).unwrap();

        let record = Record::synthesize(&bank()[0], 30.0, seed);
        let mut ecg = SensorDevice::ecg(&record, 0.5);
        let mut abp = SensorDevice::abp(&record, 0.5);
        let mut ch = Channel::new(loss_pct as f64 / 100.0, 0, 0, seed ^ 0xF00).unwrap();
        let mut now = 0u64;
        loop {
            let (pe, pa) = (ecg.poll(), abp.poll());
            if pe.is_none() && pa.is_none() {
                break;
            }
            for p in [pe, pa].into_iter().flatten() {
                for d in ch.transmit(now, p) {
                    bs.receive(d).unwrap();
                }
            }
            now += 500;
        }
        bs.flush().unwrap();

        let log = bs.window_log();
        // Indices strictly increasing, no duplicates, no gaps.
        for (i, &(idx, _)) in log.iter().enumerate() {
            prop_assert_eq!(idx, i, "window log must be gap-free and ordered");
        }
        let stats = bs.stats();
        let emitted = log
            .iter()
            .filter(|(_, o)| matches!(o, WindowOutcome::Emitted { .. }))
            .count() as u64;
        let dropped = log
            .iter()
            .filter(|(_, o)| matches!(o, WindowOutcome::Dropped))
            .count() as u64;
        prop_assert_eq!(stats.windows_emitted, emitted);
        prop_assert_eq!(stats.windows_dropped, dropped);
        // 30 s of 3 s windows: at most 10 windows ever logged.
        prop_assert!(log.len() <= 10);
        // With no loss, all 10 must be emitted.
        if loss_pct == 0 {
            prop_assert_eq!(emitted, 10);
        }
    }
}
