use crate::device::Stream;
use std::error::Error;
use std::fmt;

/// Error type for the WIoT environment simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WiotError {
    /// A scenario was configured inconsistently.
    InvalidScenario {
        /// Violated constraint.
        reason: &'static str,
    },
    /// The ARQ layer exhausted its retry budget for a packet while the
    /// transport was configured as strict (see
    /// [`crate::transport::ArqConfig::strict`]).
    RetryBudgetExhausted {
        /// Stream whose packet could not be delivered.
        stream: Stream,
        /// Sequence number of the abandoned packet.
        seq: u64,
    },
    /// A sensor stream stopped delivering data for longer than the
    /// base-station watchdog tolerates while the watchdog was
    /// configured as strict.
    StreamStalled {
        /// The silent stream.
        stream: Stream,
        /// How long the stream has been silent, ms.
        silent_ms: u64,
    },
    /// An error from the platform simulation.
    Amulet(amulet_sim::AmuletError),
    /// An error from the SIFT pipeline.
    Sift(sift::SiftError),
}

impl fmt::Display for WiotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WiotError::InvalidScenario { reason } => write!(f, "invalid scenario: {reason}"),
            WiotError::RetryBudgetExhausted { stream, seq } => {
                write!(f, "retry budget exhausted for {stream} packet #{seq}")
            }
            WiotError::StreamStalled { stream, silent_ms } => {
                write!(f, "{stream} stream stalled: silent for {silent_ms} ms")
            }
            WiotError::Amulet(e) => write!(f, "platform error: {e}"),
            WiotError::Sift(e) => write!(f, "sift error: {e}"),
        }
    }
}

impl Error for WiotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WiotError::Amulet(e) => Some(e),
            WiotError::Sift(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amulet_sim::AmuletError> for WiotError {
    fn from(e: amulet_sim::AmuletError) -> Self {
        WiotError::Amulet(e)
    }
}

impl From<sift::SiftError> for WiotError {
    fn from(e: sift::SiftError) -> Self {
        WiotError::Sift(e)
    }
}

impl From<ml::MlError> for WiotError {
    fn from(e: ml::MlError) -> Self {
        WiotError::Sift(sift::SiftError::Ml(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e = WiotError::from(sift::SiftError::NoDonors);
        assert!(e.source().is_some());
        let e = WiotError::from(amulet_sim::AmuletError::BatteryExhausted);
        assert!(e.to_string().contains("battery"));
        assert!(WiotError::InvalidScenario { reason: "x" }
            .source()
            .is_none());
    }

    #[test]
    fn transport_fault_variants_display() {
        let e = WiotError::RetryBudgetExhausted {
            stream: Stream::Ecg,
            seq: 42,
        };
        assert!(e.to_string().contains("ecg"));
        assert!(e.to_string().contains("42"));
        assert!(e.source().is_none());
        let e = WiotError::StreamStalled {
            stream: Stream::Abp,
            silent_ms: 5000,
        };
        assert!(e.to_string().contains("abp"));
        assert!(e.to_string().contains("5000"));
    }
}
