use std::error::Error;
use std::fmt;

/// Error type for the WIoT environment simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WiotError {
    /// A scenario was configured inconsistently.
    InvalidScenario {
        /// Violated constraint.
        reason: &'static str,
    },
    /// An error from the platform simulation.
    Amulet(amulet_sim::AmuletError),
    /// An error from the SIFT pipeline.
    Sift(sift::SiftError),
}

impl fmt::Display for WiotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WiotError::InvalidScenario { reason } => write!(f, "invalid scenario: {reason}"),
            WiotError::Amulet(e) => write!(f, "platform error: {e}"),
            WiotError::Sift(e) => write!(f, "sift error: {e}"),
        }
    }
}

impl Error for WiotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WiotError::Amulet(e) => Some(e),
            WiotError::Sift(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amulet_sim::AmuletError> for WiotError {
    fn from(e: amulet_sim::AmuletError) -> Self {
        WiotError::Amulet(e)
    }
}

impl From<sift::SiftError> for WiotError {
    fn from(e: sift::SiftError) -> Self {
        WiotError::Sift(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e = WiotError::from(sift::SiftError::NoDonors);
        assert!(e.source().is_some());
        let e = WiotError::from(amulet_sim::AmuletError::BatteryExhausted);
        assert!(e.to_string().contains("battery"));
        assert!(WiotError::InvalidScenario { reason: "x" }.source().is_none());
    }
}
