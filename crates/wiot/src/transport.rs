//! Reliable transport on the sensor → base-station hop.
//!
//! The raw [`Channel`](crate::channel::Channel) loses, duplicates, and
//! reorders packets; [`ArqLink`] wraps it with a lightweight ARQ so
//! most losses never reach the detector:
//!
//! * the receiver watches sequence numbers and issues a **NACK** for
//!   each gap (either observed directly when a later packet overtakes
//!   it, or inferred by timeout for tail losses),
//! * the sender keeps a **bounded retransmit buffer** of recent packets
//!   (a real sensor has a few kB of RAM, so old packets are evicted and
//!   become unrecoverable),
//! * each NACKed packet is retransmitted under an **exponential
//!   backoff** until a per-packet **retry budget** is exhausted,
//! * everything the link does is counted in [`TransportStats`].
//!
//! Both ends live in one object because the link is simulated
//! end-to-end; the protocol state is still strictly split between the
//! sender half (buffer, retry accounting) and receiver half (dedup,
//! gap tracking), so the abstraction mirrors a real split
//! implementation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::channel::{Channel, Delivery};
use crate::device::{SensorPacket, Stream};
use crate::WiotError;

/// ARQ tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArqConfig {
    /// Retransmission budget per packet; a packet still missing after
    /// this many retransmits is given up on.
    pub max_retries: u32,
    /// First-retry backoff, ms; doubles on every further retry.
    pub base_backoff_ms: u64,
    /// Sender-side retransmit buffer capacity, packets. Oldest entries
    /// are evicted when full (and become unrecoverable).
    pub buffer_cap: usize,
    /// How long a packet may be overdue before the receiver NACKs it,
    /// ms. Also the tail-loss detection timeout after the send time.
    pub nack_delay_ms: u64,
    /// When `true`, exhausting a packet's retry budget is a hard
    /// [`WiotError::RetryBudgetExhausted`] instead of a counted
    /// give-up. Off by default: losing a chunk is survivable (the base
    /// station can salvage the window).
    pub strict: bool,
}

impl Default for ArqConfig {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base_backoff_ms: 10,
            buffer_cap: 64,
            nack_delay_ms: 30,
            strict: false,
        }
    }
}

impl ArqConfig {
    fn validate(&self) -> Result<(), WiotError> {
        if self.buffer_cap == 0 {
            return Err(WiotError::InvalidScenario {
                reason: "ARQ retransmit buffer capacity must be positive",
            });
        }
        Ok(())
    }
}

/// Counters of everything the ARQ layer did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// First-time data packets offered to the link.
    pub data_sent: u64,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// NACKs issued by the receiver.
    pub nacks_sent: u64,
    /// Gaps that were eventually filled by a retransmission.
    pub gap_recoveries: u64,
    /// Packets abandoned after the retry budget ran out (or after
    /// eviction from the retransmit buffer).
    pub give_ups: u64,
    /// Duplicate arrivals discarded by the receiver.
    pub duplicates_discarded: u64,
    /// Packets evicted from the full retransmit buffer.
    pub buffer_evictions: u64,
}

impl TransportStats {
    /// Retransmissions per first-time data packet — the adaptive
    /// engine's view of how hard the link is working.
    pub fn retransmit_rate(&self) -> f64 {
        if self.data_sent == 0 {
            0.0
        } else {
            self.retransmits as f64 / self.data_sent as f64
        }
    }
}

/// Receiver-side bookkeeping for one missing sequence number.
#[derive(Debug, Clone, Copy)]
struct Gap {
    /// Retransmissions requested so far.
    attempts: u32,
    /// Earliest time of the next NACK, ms (exponential backoff).
    next_retry_ms: u64,
}

/// A buffered copy of a sent packet, for retransmission.
#[derive(Debug, Clone)]
struct Buffered {
    sent_ms: u64,
    packet: SensorPacket,
}

/// An ARQ-protected link: a [`Channel`] plus sender/receiver protocol
/// state.
#[derive(Debug, Clone)]
pub struct ArqLink {
    channel: Channel,
    config: ArqConfig,
    /// Retry budget currently in force. Starts at
    /// [`ArqConfig::max_retries`]; the survival policy may tighten it
    /// at runtime under low battery.
    retry_max: u32,
    /// Extra backoff doublings applied to every retransmission on top
    /// of the attempt count (survival-policy backoff widening).
    retry_extra_shift: u32,
    stats: TransportStats,
    /// Sender: bounded history of sent packets, oldest first.
    buffer: VecDeque<Buffered>,
    /// Packets in the air, unordered; pumped out by `at_ms`.
    in_flight: Vec<Delivery>,
    /// Receiver: next sequence number not yet fully accounted for.
    next_expected: u64,
    /// Receiver: out-of-order sequence numbers already delivered.
    delivered_ahead: BTreeSet<u64>,
    /// Receiver: missing sequence numbers under recovery.
    gaps: BTreeMap<u64, Gap>,
    /// Highest sequence number handed to `send` (+1), for tail-loss
    /// detection.
    sent_horizon: u64,
}

impl ArqLink {
    /// Wrap `channel` with ARQ under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] for an invalid config.
    pub fn new(channel: Channel, config: ArqConfig) -> Result<Self, WiotError> {
        config.validate()?;
        Ok(Self {
            channel,
            retry_max: config.max_retries,
            retry_extra_shift: 0,
            config,
            stats: TransportStats::default(),
            buffer: VecDeque::new(),
            in_flight: Vec::new(),
            next_expected: 0,
            delivered_ahead: BTreeSet::new(),
            gaps: BTreeMap::new(),
            sent_horizon: 0,
        })
    }

    /// Send a first-time data packet at `now_ms`. A copy is buffered
    /// for possible retransmission (evicting the oldest entry when the
    /// buffer is full).
    pub fn send(&mut self, now_ms: u64, packet: SensorPacket) {
        self.stats.data_sent += 1;
        self.sent_horizon = self.sent_horizon.max(packet.seq + 1);
        if self.buffer.len() == self.config.buffer_cap {
            self.buffer.pop_front();
            self.stats.buffer_evictions += 1;
        }
        self.buffer.push_back(Buffered {
            sent_ms: now_ms,
            packet: packet.clone(),
        });
        let copies = self.channel.transmit(now_ms, packet);
        self.in_flight.extend(copies);
    }

    /// Advance the link to `now_ms`: collect every packet that has
    /// arrived, discard duplicates, NACK + retransmit overdue gaps, and
    /// return the fresh arrivals (in arrival order).
    ///
    /// # Errors
    ///
    /// In strict mode ([`ArqConfig::strict`]), returns
    /// [`WiotError::RetryBudgetExhausted`] when a packet's retry budget
    /// runs out (or its buffered copy was evicted before recovery).
    pub fn pump(&mut self, now_ms: u64) -> Result<Vec<Delivery>, WiotError> {
        let arrivals = self.collect_arrivals(now_ms);
        let mut out = Vec::new();
        for delivery in arrivals {
            let seq = delivery.packet.seq;
            if self.is_delivered(seq) {
                self.stats.duplicates_discarded += 1;
                continue;
            }
            if self.gaps.remove(&seq).is_some() {
                self.stats.gap_recoveries += 1;
            }
            self.note_gaps_before(seq, now_ms);
            self.mark_delivered(seq);
            out.push(delivery);
        }
        self.detect_tail_losses(now_ms);
        self.service_gaps(now_ms)?;
        Ok(out)
    }

    /// Whether the link still has packets in the air, gaps under
    /// recovery, or tail losses whose detection timeout has not yet
    /// expired (useful for end-of-session draining).
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.gaps.is_empty() && !self.has_unresolved_tail()
    }

    /// A buffered packet at or past `next_expected` that never arrived:
    /// either a gap already under recovery, or a tail loss that
    /// `detect_tail_losses` will pick up once its timeout expires.
    fn has_unresolved_tail(&self) -> bool {
        self.buffer.iter().any(|b| {
            b.packet.seq >= self.next_expected && !self.delivered_ahead.contains(&b.packet.seq)
        })
    }

    /// Transport-layer counters.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Re-tune the retry posture at runtime: a new per-packet retry
    /// budget and extra backoff doublings per retransmission. The
    /// survival policy widens backoff and tightens the budget under
    /// low battery so a bad link cannot drain the cell with radio
    /// retries. Gaps already under recovery keep their attempt counts;
    /// only the budget they are judged against changes.
    pub fn set_retry_budget(&mut self, max_retries: u32, extra_shift: u32) {
        self.retry_max = max_retries;
        self.retry_extra_shift = extra_shift;
    }

    /// The retry posture currently in force, `(max_retries,
    /// extra_shift)`.
    pub fn retry_budget(&self) -> (u32, u32) {
        (self.retry_max, self.retry_extra_shift)
    }

    /// The underlying channel (e.g. for loss statistics).
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// The underlying channel, mutably (e.g. for a fault plan's degrade
    /// override).
    pub fn channel_mut(&mut self) -> &mut Channel {
        &mut self.channel
    }

    fn stream(&self) -> Stream {
        // All packets on one link share a stream; fall back to Ecg when
        // nothing was sent yet (only reachable in error paths).
        self.buffer
            .front()
            .map(|b| b.packet.stream)
            .unwrap_or(Stream::Ecg)
    }

    /// Remove and return everything arriving by `now_ms`, in stable
    /// `at_ms` order.
    fn collect_arrivals(&mut self, now_ms: u64) -> Vec<Delivery> {
        let mut arrived = Vec::new();
        let mut still_flying = Vec::with_capacity(self.in_flight.len());
        for d in self.in_flight.drain(..) {
            if d.at_ms <= now_ms {
                arrived.push(d);
            } else {
                still_flying.push(d);
            }
        }
        self.in_flight = still_flying;
        // Stable: equal at_ms keeps transmission order, so replays are
        // byte-identical.
        arrived.sort_by_key(|d| d.at_ms);
        arrived
    }

    fn is_delivered(&self, seq: u64) -> bool {
        seq < self.next_expected || self.delivered_ahead.contains(&seq)
    }

    fn mark_delivered(&mut self, seq: u64) {
        if seq == self.next_expected {
            self.next_expected += 1;
            while self.delivered_ahead.remove(&self.next_expected) {
                self.next_expected += 1;
            }
        } else {
            self.delivered_ahead.insert(seq);
        }
    }

    /// A packet with sequence `seq` just arrived: everything below it
    /// that is neither delivered nor already tracked is a fresh gap.
    fn note_gaps_before(&mut self, seq: u64, now_ms: u64) {
        for missing in self.next_expected..seq {
            if !self.delivered_ahead.contains(&missing) {
                self.gaps.entry(missing).or_insert(Gap {
                    attempts: 0,
                    next_retry_ms: now_ms + self.config.nack_delay_ms,
                });
            }
        }
    }

    /// Tail losses have no later arrival to expose them; infer them
    /// from the send time instead.
    fn detect_tail_losses(&mut self, now_ms: u64) {
        for b in &self.buffer {
            let seq = b.packet.seq;
            if seq < self.next_expected
                || self.delivered_ahead.contains(&seq)
                || self.gaps.contains_key(&seq)
            {
                continue;
            }
            if now_ms >= b.sent_ms + self.config.nack_delay_ms {
                self.gaps.insert(
                    seq,
                    Gap {
                        attempts: 0,
                        next_retry_ms: now_ms,
                    },
                );
            }
        }
    }

    /// NACK and retransmit every due gap; abandon gaps whose budget ran
    /// out.
    fn service_gaps(&mut self, now_ms: u64) -> Result<(), WiotError> {
        let stream = self.stream();
        let due: Vec<u64> = self
            .gaps
            .iter()
            .filter(|(_, g)| now_ms >= g.next_retry_ms)
            .map(|(&seq, _)| seq)
            .collect();
        let mut exhausted: Option<u64> = None;
        for seq in due {
            let Some(gap) = self.gaps.get_mut(&seq) else {
                continue;
            };
            if gap.attempts >= self.retry_max {
                self.gaps.remove(&seq);
                self.stats.give_ups += 1;
                // Unrecoverable: stop waiting for it so in-order
                // release can move past the hole.
                self.mark_delivered(seq);
                exhausted.get_or_insert(seq);
                continue;
            }
            self.stats.nacks_sent += 1;
            let copy = self
                .buffer
                .iter()
                .find(|b| b.packet.seq == seq)
                .map(|b| b.packet.clone());
            match copy {
                Some(packet) => {
                    gap.attempts += 1;
                    // Exponential backoff, shift-capped so it cannot
                    // overflow on absurd budgets.
                    let backoff = self.config.base_backoff_ms
                        << (gap.attempts + self.retry_extra_shift).min(16);
                    gap.next_retry_ms = now_ms + backoff.max(1);
                    self.stats.retransmits += 1;
                    let copies = self.channel.transmit(now_ms, packet);
                    self.in_flight.extend(copies);
                }
                None => {
                    // Evicted from the retransmit buffer before the
                    // NACK: unrecoverable.
                    self.gaps.remove(&seq);
                    self.stats.give_ups += 1;
                    self.mark_delivered(seq);
                    exhausted.get_or_insert(seq);
                }
            }
        }
        match exhausted {
            Some(seq) if self.config.strict => Err(WiotError::RetryBudgetExhausted { stream, seq }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelConfig, LossModel};

    fn packet(seq: u64) -> SensorPacket {
        SensorPacket {
            stream: Stream::Ecg,
            seq,
            start_sample: seq as usize * 8,
            samples: vec![seq as f64; 8],
            peaks: vec![],
        }
    }

    /// Drive `n` packets through the link at 10 ms spacing, pumping
    /// each tick and draining afterwards; returns delivered seqs.
    fn run(link: &mut ArqLink, n: u64) -> Vec<u64> {
        let mut got = Vec::new();
        let mut now = 0u64;
        for seq in 0..n {
            link.send(now, packet(seq));
            got.extend(link.pump(now).unwrap().iter().map(|d| d.packet.seq));
            now += 10;
        }
        for _ in 0..200 {
            now += 10;
            got.extend(link.pump(now).unwrap().iter().map(|d| d.packet.seq));
            if link.idle() {
                break;
            }
        }
        got
    }

    #[test]
    fn lossless_link_is_transparent() {
        let mut link = ArqLink::new(Channel::perfect(), ArqConfig::default()).unwrap();
        let got = run(&mut link, 50);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        let s = link.stats();
        assert_eq!(s.data_sent, 50);
        assert_eq!(s.retransmits, 0);
        assert_eq!(s.nacks_sent, 0);
        assert_eq!(s.give_ups, 0);
    }

    #[test]
    fn recovers_all_packets_under_random_loss() {
        let ch = Channel::new(0.2, 5, 3, 42).unwrap();
        let mut link = ArqLink::new(ch, ArqConfig::default()).unwrap();
        let mut got = run(&mut link, 100);
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "{:?}", link.stats());
        let s = link.stats();
        assert!(s.retransmits > 0, "{s:?}");
        assert!(s.gap_recoveries > 0, "{s:?}");
        assert_eq!(s.give_ups, 0, "{s:?}");
    }

    #[test]
    fn recovers_under_burst_loss() {
        let ch = Channel::with_config(
            ChannelConfig {
                loss: LossModel::GilbertElliott {
                    p_good_to_bad: 0.05,
                    p_bad_to_good: 0.4,
                    loss_good: 0.01,
                    loss_bad: 0.7,
                },
                base_delay_ms: 5,
                jitter_ms: 3,
                ..ChannelConfig::default()
            },
            7,
        )
        .unwrap();
        let mut link = ArqLink::new(ch, ArqConfig::default()).unwrap();
        let mut got = run(&mut link, 100);
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(link.stats().gap_recoveries > 0);
    }

    #[test]
    fn duplicates_are_discarded() {
        let ch = Channel::with_config(
            ChannelConfig {
                dup_prob: 1.0,
                ..ChannelConfig::default()
            },
            3,
        )
        .unwrap();
        let mut link = ArqLink::new(ch, ArqConfig::default()).unwrap();
        let got = run(&mut link, 20);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert_eq!(link.stats().duplicates_discarded, 20);
    }

    #[test]
    fn dead_link_exhausts_budget_without_error_by_default() {
        let ch = Channel::new(1.0, 0, 0, 1).unwrap();
        let mut link = ArqLink::new(ch, ArqConfig::default()).unwrap();
        let got = run(&mut link, 10);
        assert!(got.is_empty());
        let s = link.stats();
        assert_eq!(s.give_ups, 10, "{s:?}");
        assert!(s.retransmits > 0);
        assert!(link.idle());
    }

    #[test]
    fn strict_mode_surfaces_retry_budget_exhaustion() {
        let ch = Channel::new(1.0, 0, 0, 1).unwrap();
        let mut link = ArqLink::new(
            ch,
            ArqConfig {
                strict: true,
                max_retries: 2,
                ..ArqConfig::default()
            },
        )
        .unwrap();
        link.send(0, packet(0));
        let mut err = None;
        for t in 1..100 {
            if let Err(e) = link.pump(t * 10) {
                err = Some(e);
                break;
            }
        }
        assert!(
            matches!(
                err,
                Some(WiotError::RetryBudgetExhausted {
                    stream: Stream::Ecg,
                    seq: 0
                })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn buffer_eviction_is_counted_and_bounds_memory() {
        let mut link = ArqLink::new(
            Channel::perfect(),
            ArqConfig {
                buffer_cap: 4,
                ..ArqConfig::default()
            },
        )
        .unwrap();
        for seq in 0..10 {
            link.send(0, packet(seq));
        }
        assert_eq!(link.stats().buffer_evictions, 6);
        assert!(link.buffer.len() <= 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let drive = || {
            let ch = Channel::new(0.3, 5, 4, 99).unwrap();
            let mut link = ArqLink::new(ch, ArqConfig::default()).unwrap();
            let got = run(&mut link, 60);
            (got, link.stats())
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn zero_buffer_cap_rejected() {
        assert!(ArqLink::new(
            Channel::perfect(),
            ArqConfig {
                buffer_cap: 0,
                ..ArqConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn runtime_retry_budget_tightens_and_widens() {
        // A dead link with the default budget retries 5 times per
        // packet; after tightening to 1 it retries once and gives up
        // sooner, and the widened backoff spaces retries further out.
        let drive = |max: u32, shift: u32| {
            let ch = Channel::new(1.0, 0, 0, 1).unwrap();
            let mut link = ArqLink::new(ch, ArqConfig::default()).unwrap();
            link.set_retry_budget(max, shift);
            assert_eq!(link.retry_budget(), (max, shift));
            run(&mut link, 5);
            link.stats()
        };
        let tight = drive(1, 2);
        let normal = drive(5, 0);
        assert_eq!(tight.give_ups, 5);
        assert_eq!(normal.give_ups, 5);
        assert!(
            tight.retransmits < normal.retransmits,
            "tight {tight:?} vs normal {normal:?}"
        );
    }

    #[test]
    fn retransmit_rate_reflects_effort() {
        let mut s = TransportStats::default();
        assert_eq!(s.retransmit_rate(), 0.0);
        s.data_sent = 100;
        s.retransmits = 25;
        assert!((s.retransmit_rate() - 0.25).abs() < 1e-12);
    }
}
