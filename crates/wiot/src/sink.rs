//! The sink: the resource-rich endpoint of the WIoT environment.
//!
//! "The sink is \[a\] resource-rich device responsible for providing
//! expensive but non safety-critical operations such as local storage of
//! historical patient information" (paper §I). Here it archives what the
//! base station forwards: alerts and periodic vitals history.

use amulet_sim::machine::Alert;

/// Default archive capacities. The sink is "resource-rich", but a
/// multi-day soak must still run in flat memory; these bounds hold
/// weeks of realistic traffic.
const DEFAULT_ALERT_CAP: usize = 8_192;
const DEFAULT_VITALS_CAP: usize = 32_768;

/// One archived vitals sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VitalsEntry {
    /// Timestamp, ms.
    pub at_ms: u64,
    /// Heart rate, bpm.
    pub heart_rate_bpm: f64,
}

/// The sink's storage: bounded archives with oldest-first eviction.
#[derive(Debug, Clone)]
pub struct Sink {
    alerts: Vec<Alert>,
    vitals: Vec<VitalsEntry>,
    alert_cap: usize,
    vitals_cap: usize,
    alerts_evicted: u64,
    vitals_evicted: u64,
}

impl Default for Sink {
    fn default() -> Self {
        Self {
            alerts: Vec::new(),
            vitals: Vec::new(),
            alert_cap: DEFAULT_ALERT_CAP,
            vitals_cap: DEFAULT_VITALS_CAP,
            alerts_evicted: 0,
            vitals_evicted: 0,
        }
    }
}

impl Sink {
    /// Fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the archive capacities (each at least 1).
    pub fn with_caps(mut self, alert_cap: usize, vitals_cap: usize) -> Self {
        self.alert_cap = alert_cap.max(1);
        self.vitals_cap = vitals_cap.max(1);
        self
    }

    /// Archive alerts forwarded from the base station; duplicates
    /// (same app + timestamp) are kept only once. Past the capacity the
    /// oldest alerts are evicted (and counted).
    pub fn archive_alerts(&mut self, alerts: &[Alert]) {
        for a in alerts {
            if !self
                .alerts
                .iter()
                .any(|b| b.at_ms == a.at_ms && b.app == a.app && b.message == a.message)
            {
                if self.alerts.len() >= self.alert_cap {
                    self.alerts.remove(0);
                    self.alerts_evicted += 1;
                }
                self.alerts.push(a.clone());
            }
        }
    }

    /// Archive one vitals sample, evicting the oldest past the cap.
    pub fn archive_vitals(&mut self, at_ms: u64, heart_rate_bpm: f64) {
        if self.vitals.len() >= self.vitals_cap {
            self.vitals.remove(0);
            self.vitals_evicted += 1;
        }
        self.vitals.push(VitalsEntry {
            at_ms,
            heart_rate_bpm,
        });
    }

    /// Alerts evicted from the bounded archive so far.
    pub fn alerts_evicted(&self) -> u64 {
        self.alerts_evicted
    }

    /// Vitals samples evicted from the bounded archive so far.
    pub fn vitals_evicted(&self) -> u64 {
        self.vitals_evicted
    }

    /// All archived alerts, in arrival order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// All archived vitals.
    pub fn vitals(&self) -> &[VitalsEntry] {
        &self.vitals
    }

    /// Alerts within `[from_ms, to_ms)`.
    pub fn alerts_between(&self, from_ms: u64, to_ms: u64) -> Vec<&Alert> {
        self.alerts
            .iter()
            .filter(|a| (from_ms..to_ms).contains(&a.at_ms))
            .collect()
    }

    /// Mean heart rate over the archive, if any samples exist.
    pub fn mean_heart_rate(&self) -> Option<f64> {
        if self.vitals.is_empty() {
            return None;
        }
        Some(self.vitals.iter().map(|v| v.heart_rate_bpm).sum::<f64>() / self.vitals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(at_ms: u64, msg: &str) -> Alert {
        Alert {
            at_ms,
            app: "sift-simplified".into(),
            message: msg.into(),
        }
    }

    #[test]
    fn archives_and_dedups_alerts() {
        let mut s = Sink::new();
        s.archive_alerts(&[alert(1, "a"), alert(2, "b")]);
        s.archive_alerts(&[alert(1, "a"), alert(3, "c")]);
        assert_eq!(s.alerts().len(), 3);
    }

    #[test]
    fn alert_range_query() {
        let mut s = Sink::new();
        s.archive_alerts(&[alert(5, "x"), alert(15, "y"), alert(25, "z")]);
        let hits = s.alerts_between(10, 20);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].message, "y");
    }

    #[test]
    fn bounded_archives_evict_oldest() {
        let mut s = Sink::new().with_caps(2, 3);
        s.archive_alerts(&[alert(1, "a"), alert(2, "b"), alert(3, "c")]);
        assert_eq!(s.alerts().len(), 2);
        assert_eq!(s.alerts_evicted(), 1);
        assert_eq!(s.alerts()[0].message, "b");
        for t in 0..5 {
            s.archive_vitals(t, 60.0 + t as f64);
        }
        assert_eq!(s.vitals().len(), 3);
        assert_eq!(s.vitals_evicted(), 2);
        assert_eq!(s.vitals()[0].at_ms, 2);
    }

    #[test]
    fn vitals_history_and_mean() {
        let mut s = Sink::new();
        assert_eq!(s.mean_heart_rate(), None);
        s.archive_vitals(0, 60.0);
        s.archive_vitals(3000, 70.0);
        assert_eq!(s.vitals().len(), 2);
        assert_eq!(s.mean_heart_rate(), Some(65.0));
    }
}
