//! Deterministic end-to-end scenarios: sensors → attacker → channel →
//! base station → sink, scored against ground truth.

use crate::attacker::{AttackMode, Attacker};
use crate::basestation::{BaseStation, WindowOutcome};
use crate::channel::Channel;
use crate::device::SensorDevice;
use crate::sink::Sink;
use crate::WiotError;
use amulet_sim::apps::SiftApp;
use ml::metrics::ConfusionMatrix;
use ml::Label;
use physio_sim::record::Record;
use physio_sim::subject::bank;
use sift::config::SiftConfig;
use sift::features::Version;
use sift::trainer::train_for_subject;

/// Wireless-link parameters for a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Packet-loss probability.
    pub loss_prob: f64,
    /// Base one-way delay, ms.
    pub base_delay_ms: u64,
    /// Uniform jitter bound, ms.
    pub jitter_ms: u64,
}

impl Default for LinkParams {
    fn default() -> Self {
        Self {
            loss_prob: 0.0,
            base_delay_ms: 5,
            jitter_ms: 3,
        }
    }
}

/// An attack to stage during the scenario.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// What the adversary does.
    pub mode: AttackMode,
    /// Attack start, seconds into the session.
    pub start_s: f64,
    /// Attack end, seconds into the session.
    pub end_s: f64,
}

/// A full scenario description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index of the wearer in the subject bank.
    pub victim: usize,
    /// Detector version deployed on the base station.
    pub version: Version,
    /// Session length in seconds.
    pub duration_s: f64,
    /// Optional staged attack.
    pub attack: Option<AttackSpec>,
    /// Wireless link parameters.
    pub link: LinkParams,
    /// Pipeline/training configuration.
    pub config: SiftConfig,
    /// Sensor packet length in seconds (must divide the window).
    pub chunk_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    /// A baseline scenario for `victim` with sensible defaults and a
    /// shortened training phase (callers doing full Table II scale use
    /// [`SiftConfig::default`]).
    pub fn new(victim: usize, version: Version, duration_s: f64) -> Self {
        Self {
            victim,
            version,
            duration_s,
            attack: None,
            link: LinkParams::default(),
            config: SiftConfig {
                train_s: 60.0,
                max_positive_per_donor: Some(15),
                ..SiftConfig::default()
            },
            chunk_s: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of running a scenario.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Window-level confusion matrix (truth: ≥ 50 % of the window inside
    /// the attack interval ⇒ altered; 0 % ⇒ genuine).
    pub confusion: ConfusionMatrix,
    /// Windows excluded from scoring because the attack covered only
    /// part of them.
    pub ambiguous_windows: usize,
    /// Windows dropped by the base station (lost packets).
    pub dropped_windows: usize,
    /// Latency from attack start to the first alert on an attacked
    /// window, ms (None when no attack or never detected).
    pub detection_latency_ms: Option<u64>,
    /// Observed channel loss rate.
    pub channel_loss_rate: f64,
    /// Battery fraction remaining at the end of the session.
    pub battery_left: f64,
    /// The sink with the archived alerts.
    pub sink: Sink,
}

/// Run `scenario` to completion.
///
/// # Errors
///
/// Returns [`WiotError::InvalidScenario`] for inconsistent parameters
/// and propagates training and platform errors.
pub fn run(scenario: &Scenario) -> Result<SimReport, WiotError> {
    let subjects = bank();
    if scenario.victim >= subjects.len() {
        return Err(WiotError::InvalidScenario {
            reason: "victim index out of range",
        });
    }
    if let Some(a) = &scenario.attack {
        if a.start_s >= a.end_s || a.end_s > scenario.duration_s {
            return Err(WiotError::InvalidScenario {
                reason: "attack interval must be non-empty and inside the session",
            });
        }
    }

    // Offline training, then deployment.
    let model = train_for_subject(
        &subjects,
        scenario.victim,
        scenario.version,
        &scenario.config,
        scenario.seed,
    )?;
    let app = SiftApp::new(
        scenario.version,
        model.embedded().clone(),
        scenario.config.clone(),
    )?;
    let mut station = BaseStation::new(app, scenario.config.clone(), scenario.chunk_s)?;

    // Live session data (unseen by training).
    let live = Record::synthesize(
        &subjects[scenario.victim],
        scenario.duration_s,
        scenario.seed ^ 0x11FE,
    );
    let mut ecg_dev = SensorDevice::ecg(&live, scenario.chunk_s);
    let mut abp_dev = SensorDevice::abp(&live, scenario.chunk_s);

    let mut attacker = scenario.attack.as_ref().map(|spec| {
        Attacker::new(
            spec.mode.clone(),
            (spec.start_s * 1000.0) as u64,
            (spec.end_s * 1000.0) as u64,
            scenario.seed ^ 0xA77,
        )
    });

    let mut ecg_channel = Channel::new(
        scenario.link.loss_prob,
        scenario.link.base_delay_ms,
        scenario.link.jitter_ms,
        scenario.seed ^ 0xC41,
    );
    let mut abp_channel = Channel::new(
        scenario.link.loss_prob,
        scenario.link.base_delay_ms,
        scenario.link.jitter_ms,
        scenario.seed ^ 0xC42,
    );

    // Drive the session chunk by chunk.
    let chunk_ms = (scenario.chunk_s * 1000.0) as u64;
    let mut now_ms = 0u64;
    loop {
        let pe = ecg_dev.poll();
        let pa = abp_dev.poll();
        if pe.is_none() && pa.is_none() {
            break;
        }
        if let Some(mut p) = pe {
            if let Some(att) = attacker.as_mut() {
                p = att.intercept(now_ms, p, live.fs);
            }
            if let Some(d) = ecg_channel.transmit(now_ms, p) {
                station.receive(d)?;
            }
        }
        if let Some(p) = pa {
            if let Some(d) = abp_channel.transmit(now_ms, p) {
                station.receive(d)?;
            }
        }
        now_ms += chunk_ms;
        station.advance_time(chunk_ms);
    }
    station.flush()?;

    // Score the window log against ground truth.
    let window_ms = (scenario.config.window_s * 1000.0) as u64;
    let attack_span = scenario
        .attack
        .as_ref()
        .map(|a| ((a.start_s * 1000.0) as u64, (a.end_s * 1000.0) as u64));
    let mut confusion = ConfusionMatrix::default();
    let mut ambiguous = 0usize;
    let mut dropped = 0usize;
    let mut latency: Option<u64> = None;
    for &(idx, outcome) in station.window_log() {
        let w_start = idx as u64 * window_ms;
        let w_end = w_start + window_ms;
        let overlap = attack_span
            .map(|(a0, a1)| {
                let lo = w_start.max(a0);
                let hi = w_end.min(a1);
                hi.saturating_sub(lo) as f64 / window_ms as f64
            })
            .unwrap_or(0.0);
        let truth = if overlap >= 0.5 {
            Some(Label::Positive)
        } else if overlap == 0.0 {
            Some(Label::Negative)
        } else {
            None
        };
        match outcome {
            WindowOutcome::Dropped | WindowOutcome::Rejected => dropped += 1,
            WindowOutcome::Emitted { alerted } => {
                let predicted = if alerted {
                    Label::Positive
                } else {
                    Label::Negative
                };
                match truth {
                    Some(t) => confusion.record(t, predicted),
                    None => ambiguous += 1,
                }
                if alerted && overlap > 0.0 && latency.is_none() {
                    let (a0, _) = attack_span.expect("overlap implies attack");
                    latency = Some(w_end.saturating_sub(a0));
                }
            }
        }
    }

    let mut sink = Sink::new();
    sink.archive_alerts(station.alerts());

    Ok(SimReport {
        confusion,
        ambiguous_windows: ambiguous,
        dropped_windows: dropped,
        detection_latency_ms: latency,
        channel_loss_rate: (ecg_channel.loss_rate() + abp_channel.loss_rate()) / 2.0,
        battery_left: station
            .os()
            .meter()
            .battery_fraction_left(station.os().energy_model()),
        sink,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_session_has_few_false_alerts() {
        let s = Scenario::new(0, Version::Simplified, 60.0);
        let r = run(&s).unwrap();
        assert!(r.confusion.fp + r.confusion.tn == 20);
        let fp_rate = r.confusion.false_positive_rate().unwrap();
        assert!(fp_rate < 0.3, "fp rate {fp_rate}");
        assert!(r.detection_latency_ms.is_none());
        assert!(r.battery_left > 0.99);
    }

    #[test]
    fn substitution_attack_is_detected() {
        let donor = Record::synthesize(&bank()[5], 60.0, 4242);
        let mut s = Scenario::new(0, Version::Simplified, 60.0);
        s.attack = Some(AttackSpec {
            mode: AttackMode::Substitute { donor },
            start_s: 21.0,
            end_s: 45.0,
        });
        let r = run(&s).unwrap();
        assert!(r.confusion.tp + r.confusion.fn_ >= 7, "{:?}", r.confusion);
        let fn_rate = r.confusion.false_negative_rate().unwrap();
        assert!(fn_rate < 0.4, "fn rate {fn_rate}");
        let latency = r.detection_latency_ms.expect("attack should be seen");
        assert!(latency <= 9_000, "latency {latency} ms");
        assert!(!r.sink.alerts().is_empty());
    }

    #[test]
    fn freeze_attack_triggers_degenerate_alerts() {
        let mut s = Scenario::new(1, Version::Simplified, 30.0);
        s.attack = Some(AttackSpec {
            mode: AttackMode::Freeze,
            start_s: 9.0,
            end_s: 21.0,
        });
        let r = run(&s).unwrap();
        assert!(
            r.confusion.tp >= 3,
            "freeze should be flagged: {:?}",
            r.confusion
        );
    }

    #[test]
    fn lossy_link_degrades_gracefully() {
        let mut s = Scenario::new(0, Version::Reduced, 60.0);
        s.link.loss_prob = 0.08;
        let r = run(&s).unwrap();
        assert!(r.dropped_windows > 0);
        assert!(r.channel_loss_rate > 0.02);
        // Still scores the windows that survived.
        assert!(r.confusion.total() > 0);
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let mut s = Scenario::new(99, Version::Original, 10.0);
        assert!(run(&s).is_err());
        s = Scenario::new(0, Version::Original, 10.0);
        s.attack = Some(AttackSpec {
            mode: AttackMode::Freeze,
            start_s: 5.0,
            end_s: 3.0,
        });
        assert!(run(&s).is_err());
    }

    #[test]
    fn deterministic_runs() {
        let s = Scenario::new(2, Version::Reduced, 30.0);
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        assert_eq!(a.confusion, b.confusion);
        assert_eq!(a.dropped_windows, b.dropped_windows);
    }
}
