//! Deterministic end-to-end scenarios: sensors → attacker → faults →
//! channel/ARQ → base station → sink, scored against ground truth.
//!
//! A scenario optionally carries a [`FaultPlan`] (timed link
//! degradation, sensor dropout, stuck sensors, brownout reboots, clock
//! drift), an ARQ configuration for the wireless hop, and the base
//! station's graceful-degradation knobs (partial-window salvage, stream
//! watchdog). Everything is driven from the single scenario seed, so a
//! faulted run replays byte-identically.

use crate::attacker::{AttackMode, Attacker};
use crate::basestation::{BaseStation, WindowOutcome};
use crate::channel::{Channel, ChannelConfig, ChannelStats, Delivery, LossModel};
use crate::device::{SensorDevice, Stream};
use crate::faults::{FaultPlan, FaultSummary};
use crate::adaptive::LinkQuality;
use crate::persist::Persistence;
use crate::sink::Sink;
use crate::survival::{
    window_is_skipped, SurvivalAction, SurvivalConfig, SurvivalInputs, SurvivalPolicy,
    SurvivalVerdict,
};
use crate::transport::{ArqConfig, ArqLink, TransportStats};
use crate::WiotError;
use amulet_sim::apps::SiftApp;
use amulet_sim::costs::{detector_cycles, tsetlin_classifier_cycles, OpCosts};
use amulet_sim::energy::BatteryState;
use ml::metrics::ConfusionMatrix;
use ml::{BackendKind, DetectorBackend, DetectorModel, Label};
use physio_sim::record::{Record, SynthProfile};
use physio_sim::subject::{bank, Subject};
use sift::config::SiftConfig;
use sift::features::Version;
use sift::trainer::SiftModel;
use sift::zoo::{train_backend_for_subject, tsetlin_pairs};
use telemetry::{CounterId, EventCode, GaugeId, Telemetry, TelemetryReport};

/// Wireless-link parameters for a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Packet-loss probability (independent Bernoulli loss; ignored
    /// when [`LinkParams::loss`] is set).
    pub loss_prob: f64,
    /// Base one-way delay, ms.
    pub base_delay_ms: u64,
    /// Uniform jitter bound, ms.
    pub jitter_ms: u64,
    /// Full loss-process override (e.g. Gilbert–Elliott burst loss);
    /// `None` means Bernoulli at `loss_prob`.
    pub loss: Option<LossModel>,
    /// Probability a delivered packet is duplicated by the radio MAC.
    pub dup_prob: f64,
    /// Probability a delivered packet takes the late (reordering) path.
    pub reorder_prob: f64,
    /// Extra delay of a reordered packet, ms.
    pub reorder_extra_ms: u64,
    /// Probability a delivered packet's payload is corrupted.
    pub corrupt_prob: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        Self {
            loss_prob: 0.0,
            base_delay_ms: 5,
            jitter_ms: 3,
            loss: None,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_extra_ms: 0,
            corrupt_prob: 0.0,
        }
    }
}

impl LinkParams {
    fn to_channel_config(self) -> ChannelConfig {
        ChannelConfig {
            loss: self
                .loss
                .unwrap_or(LossModel::Bernoulli { p: self.loss_prob }),
            base_delay_ms: self.base_delay_ms,
            jitter_ms: self.jitter_ms,
            dup_prob: self.dup_prob,
            reorder_prob: self.reorder_prob,
            reorder_extra_ms: self.reorder_extra_ms,
            corrupt_prob: self.corrupt_prob,
            ..ChannelConfig::default()
        }
    }
}

/// An attack to stage during the scenario.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// What the adversary does.
    pub mode: AttackMode,
    /// Attack start, seconds into the session.
    pub start_s: f64,
    /// Attack end, seconds into the session.
    pub end_s: f64,
}

/// A full scenario description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index of the wearer in the subject bank.
    pub victim: usize,
    /// Detector version deployed on the base station.
    pub version: Version,
    /// Detector backend family deployed on the base station
    /// ([`BackendKind::Svm`] reproduces the paper's pipeline exactly;
    /// other registered backends train from the same enrollment data).
    pub backend: BackendKind,
    /// Session length in seconds.
    pub duration_s: f64,
    /// Optional staged attack.
    pub attack: Option<AttackSpec>,
    /// Wireless link parameters.
    pub link: LinkParams,
    /// Timed environment faults injected during the session.
    pub faults: FaultPlan,
    /// ARQ on the sensor → base-station hop; `None` leaves the link
    /// unprotected.
    pub arq: Option<ArqConfig>,
    /// Salvage windows missing at most this many chunks (across both
    /// channels); `None` drops every incomplete window.
    pub salvage_max_missing: Option<usize>,
    /// Stream watchdog timeout, ms; `None` disables the watchdog.
    pub watchdog_timeout_ms: Option<u64>,
    /// Crash-consistent checkpointing: commit detector state to the
    /// simulated FRAM every tick and recover it after brownout reboots
    /// (on by default). `false` reproduces the legacy behavior where a
    /// reboot silently kept SRAM state alive and torn-write /
    /// bit-rot faults have nothing to corrupt.
    pub persist: bool,
    /// Closed-loop survival policy (`wiot::survival`): battery- and
    /// channel-aware graceful degradation of detector version, sampling
    /// duty cycle and transport retry budget. `None` (the default)
    /// leaves every legacy code path byte-identical — the policy layer
    /// does not exist in the simulation at all.
    pub survival: Option<SurvivalConfig>,
    /// Pipeline/training configuration.
    pub config: SiftConfig,
    /// Sensor packet length in seconds (must divide the window).
    pub chunk_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Which kernels synthesize the live session record.
    /// [`SynthProfile::Reference`] (the default) is the digest-pinned
    /// historical path; [`SynthProfile::Turbo`] is the documented
    /// fidelity/throughput tradeoff for fleet-scale runs. Training data
    /// is always synthesized with the reference kernels.
    pub synth: SynthProfile,
}

impl Scenario {
    /// A baseline scenario for `victim` with sensible defaults and a
    /// shortened training phase (callers doing full Table II scale use
    /// [`SiftConfig::default`]).
    pub fn new(victim: usize, version: Version, duration_s: f64) -> Self {
        Self {
            victim,
            version,
            backend: BackendKind::Svm,
            duration_s,
            attack: None,
            link: LinkParams::default(),
            faults: FaultPlan::new(),
            arq: None,
            salvage_max_missing: None,
            watchdog_timeout_ms: None,
            persist: true,
            survival: None,
            config: SiftConfig {
                train_s: 60.0,
                max_positive_per_donor: Some(15),
                ..SiftConfig::default()
            },
            chunk_s: 0.5,
            seed: 0xC0FFEE,
            synth: SynthProfile::default(),
        }
    }

    /// The same scenario hardened for a hostile environment: ARQ on the
    /// links, one-chunk salvage, and a 3-window stream watchdog.
    #[must_use]
    pub fn with_reliability(mut self) -> Self {
        self.arq = Some(ArqConfig::default());
        self.salvage_max_missing = Some(1);
        self.watchdog_timeout_ms = Some((self.config.window_s * 3.0 * 1000.0) as u64);
        self
    }
}

/// Result of running a scenario.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Window-level confusion matrix (truth: ≥ 50 % of the window inside
    /// the attack interval ⇒ altered; 0 % ⇒ genuine).
    pub confusion: ConfusionMatrix,
    /// Windows excluded from scoring because the attack covered only
    /// part of them.
    pub ambiguous_windows: usize,
    /// Windows dropped by the base station (lost packets) or rejected
    /// by the quality gate.
    pub dropped_windows: usize,
    /// Windows repaired by zero-order-hold salvage and dispatched
    /// flagged degraded.
    pub salvaged_windows: usize,
    /// Fraction of the session's expected detection windows that
    /// reached the detector (emitted or salvaged).
    pub window_recovery_rate: f64,
    /// Latency from attack start to the first alert on an attacked
    /// window, ms (None when no attack or never detected).
    pub detection_latency_ms: Option<u64>,
    /// Observed channel loss rate (mean of both links).
    pub channel_loss_rate: f64,
    /// Channel traffic counters, summed over both links.
    pub channel: ChannelStats,
    /// ARQ counters, summed over both links (`None` when ARQ was off).
    pub transport: Option<TransportStats>,
    /// Everything the fault plan actually did.
    pub faults: FaultSummary,
    /// Stream-stalled alerts the watchdog raised.
    pub stall_alerts: usize,
    /// Battery fraction remaining at the end of the session.
    pub battery_left: f64,
    /// Final telemetry snapshot: counters, per-stage span statistics
    /// and the event ring. `None` unless [`DeviceOptions::telemetry`]
    /// enabled the sink — and never an input to anything above.
    pub telemetry: Option<TelemetryReport>,
    /// What the survival policy did (`None` when [`Scenario::survival`]
    /// was off).
    pub survival: Option<SurvivalReport>,
    /// The sink with the archived alerts.
    pub sink: Sink,
}

/// Everything the survival policy did over one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalReport {
    /// Every actuation, in decision order (tick-stamped).
    pub actions: Vec<SurvivalAction>,
    /// Detector version switches performed (reflash count).
    pub version_switches: u64,
    /// Sensor chunks suppressed by the duty cycle.
    pub duty_skipped_chunks: u64,
    /// Times the transport retry posture was reconfigured.
    pub retry_reconfigs: u64,
    /// Policy ticks spent at or below the low-battery threshold.
    pub low_battery_ticks: u64,
    /// Detector version in force when the session ended.
    pub final_version: Version,
    /// Modeled battery state of charge at session end, permille.
    pub final_soc_permille: u16,
    /// First simulated instant the modeled battery crossed the
    /// configured cutoff, ms (`None` if it never did).
    pub cutoff_at_ms: Option<u64>,
    /// Policy ticks spent in each version, indexed
    /// `[Original, Simplified, Reduced]`.
    pub occupancy_ticks: [u64; 3],
}

/// One sensor → base-station link: raw channel or ARQ-protected.
enum Link {
    Raw {
        channel: Channel,
        in_flight: Vec<Delivery>,
    },
    Arq(ArqLink),
}

impl Link {
    fn new(config: ChannelConfig, seed: u64, arq: Option<ArqConfig>) -> Result<Self, WiotError> {
        let channel = Channel::with_config(config, seed)?;
        Ok(match arq {
            Some(cfg) => Link::Arq(ArqLink::new(channel, cfg)?),
            None => Link::Raw {
                channel,
                in_flight: Vec::new(),
            },
        })
    }

    fn send(&mut self, now_ms: u64, packet: crate::device::SensorPacket) {
        match self {
            Link::Raw { channel, in_flight } => {
                in_flight.extend(channel.transmit(now_ms, packet));
            }
            Link::Arq(link) => link.send(now_ms, packet),
        }
    }

    fn pump(&mut self, now_ms: u64) -> Result<Vec<Delivery>, WiotError> {
        match self {
            Link::Raw { in_flight, .. } => {
                let mut arrived = Vec::new();
                let mut flying = Vec::with_capacity(in_flight.len());
                for d in in_flight.drain(..) {
                    if d.at_ms <= now_ms {
                        arrived.push(d);
                    } else {
                        flying.push(d);
                    }
                }
                *in_flight = flying;
                arrived.sort_by_key(|d| d.at_ms);
                Ok(arrived)
            }
            Link::Arq(link) => link.pump(now_ms),
        }
    }

    fn idle(&self) -> bool {
        match self {
            Link::Raw { in_flight, .. } => in_flight.is_empty(),
            Link::Arq(link) => link.idle(),
        }
    }

    fn channel(&self) -> &Channel {
        match self {
            Link::Raw { channel, .. } => channel,
            Link::Arq(link) => link.channel(),
        }
    }

    fn set_degrade(&mut self, loss: Option<LossModel>) -> Result<(), WiotError> {
        match self {
            Link::Raw { channel, .. } => channel.set_degrade(loss),
            Link::Arq(link) => link.channel_mut().set_degrade(loss),
        }
    }

    fn transport_stats(&self) -> Option<TransportStats> {
        match self {
            Link::Raw { .. } => None,
            Link::Arq(link) => Some(link.stats()),
        }
    }

    /// Apply the survival policy's retry posture (no-op on a raw link —
    /// there is no retransmission to budget).
    fn set_retry_budget(&mut self, max_retries: u32, extra_shift: u32) {
        if let Link::Arq(link) = self {
            link.set_retry_budget(max_retries, extra_shift);
        }
    }
}

pub(crate) fn add_channel_stats(a: ChannelStats, b: ChannelStats) -> ChannelStats {
    ChannelStats {
        sent: a.sent + b.sent,
        lost: a.lost + b.lost,
        duplicated: a.duplicated + b.duplicated,
        reordered: a.reordered + b.reordered,
        corrupted: a.corrupted + b.corrupted,
    }
}

pub(crate) fn add_transport_stats(a: TransportStats, b: TransportStats) -> TransportStats {
    TransportStats {
        data_sent: a.data_sent + b.data_sent,
        retransmits: a.retransmits + b.retransmits,
        nacks_sent: a.nacks_sent + b.nacks_sent,
        gap_recoveries: a.gap_recoveries + b.gap_recoveries,
        give_ups: a.give_ups + b.give_ups,
        duplicates_discarded: a.duplicates_discarded + b.duplicates_discarded,
        buffer_evictions: a.buffer_evictions + b.buffer_evictions,
    }
}

/// Construction options for a [`DeviceSim`] beyond the scenario itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceOptions<'a> {
    /// Pre-trained gold model to deploy instead of training inline
    /// (SVM-backed scenarios only). The fleet engine enrolls every
    /// subject once (`sift::trainer`'s `ModelBank`) and shares one
    /// model across all devices wearing the same subject; `None`
    /// trains from the scenario seed as before.
    pub model: Option<&'a SiftModel>,
    /// Pre-trained deployable backend model. Takes precedence over
    /// `model`; its backend family must match the scenario's. This is
    /// how the fleet engine injects non-SVM bank entries.
    pub deployed: Option<&'a DetectorModel>,
    /// Enable the base station's feature uplink
    /// ([`BaseStation::with_feature_uplink`]) so the sink can re-score
    /// window batches with one batched SVM call per device.
    pub feature_uplink: bool,
    /// Attach an enabled [`telemetry::Telemetry`] sink to the station's
    /// OS: fault/window events land in the bounded ring as they happen
    /// and [`SimReport::telemetry`] carries the final snapshot. Purely
    /// observational — a traced run is bit-identical to an untraced one.
    pub telemetry: bool,
    /// Wear this subject instead of `bank()[scenario.victim]`. This is
    /// how the campaign engine runs population-scale cohorts without
    /// materializing a bank per device. An override requires an
    /// injected model (`deployed` or `model`) — inline training reads
    /// the legacy bank — and is incompatible with the survival policy,
    /// whose hot-swap retraining does the same.
    pub subject: Option<&'a Subject>,
}

/// Stable index of a version in per-version tables:
/// `[Original, Simplified, Reduced]`.
fn version_index(v: Version) -> usize {
    match v {
        Version::Original => 0,
        Version::Simplified => 1,
        Version::Reduced => 2,
    }
}

/// Host-side carrier of the survival policy inside a [`DeviceSim`]:
/// the integer policy core plus everything the simulation needs to
/// feed and actuate it (battery integration, per-version current
/// table, lazily trained models for hot-swaps, the action log).
struct SurvivalRuntime {
    policy: SurvivalPolicy,
    battery: BatteryState,
    /// Baseline (sleep) system current, µA.
    baseline_ua: u64,
    /// Detector current on top of baseline per version, µA, indexed
    /// by [`version_index`].
    active_delta_ua: [u64; 3],
    /// Per-version deployable models for version hot-swaps, trained
    /// lazily from the scenario seed on first switch into a version
    /// (the provisioned version's model is seeded at construction).
    /// All rungs use the scenario's backend family.
    models: Vec<(Version, DetectorModel)>,
    actions: Vec<SurvivalAction>,
    retry_reconfigs: u64,
    /// Whole windows the duty cycle suppressed (for the backlog
    /// sensor; chunks are counted in the fault summary).
    duty_skipped_windows: u64,
    last_skipped_window: Option<u64>,
    occupancy_ticks: [u64; 3],
    cutoff_at_ms: Option<u64>,
    window_ms: u64,
}

impl SurvivalRuntime {
    /// Build the runtime for a device provisioned with `ceiling` whose
    /// enrolled model is `embedded`. The per-version current table is
    /// the energy model's duty-cycle-weighted average (the Table III
    /// lever), rounded once to integer µA so the battery integration
    /// stays exact.
    fn new(
        cfg: SurvivalConfig,
        scenario: &Scenario,
        model: &amulet_sim::energy::EnergyModel,
        deployed: DetectorModel,
    ) -> Self {
        let baseline = model.currents.baseline_ua();
        let costs = OpCosts::default();
        let mut active_delta_ua = [0u64; 3];
        for v in Version::ALL {
            let mut cycles = detector_cycles(v, &scenario.config, &costs, 4.0);
            if scenario.backend == BackendKind::Tsetlin {
                cycles.ml_classifier = tsetlin_classifier_cycles(
                    v.feature_count(),
                    tsetlin_pairs(v) as usize,
                    &costs,
                );
            }
            let avg = model.average_current_for_cycles_ua(cycles.total(), scenario.config.window_s);
            active_delta_ua[version_index(v)] = (avg - baseline).max(0.0).round() as u64;
        }
        Self {
            policy: SurvivalPolicy::new(cfg, scenario.version),
            battery: BatteryState::from_model(model).with_initial_permille(cfg.initial_soc_permille),
            baseline_ua: baseline.round() as u64,
            active_delta_ua,
            models: vec![(scenario.version, deployed)],
            actions: Vec::new(),
            retry_reconfigs: 0,
            duty_skipped_windows: 0,
            last_skipped_window: None,
            occupancy_ticks: [0; 3],
            cutoff_at_ms: None,
            window_ms: (scenario.config.window_s * 1000.0) as u64,
        }
    }

    /// Average system current under the policy's current posture, µA:
    /// duty cycling scales only the detector's share, never the
    /// baseline (the display and radio stay on).
    fn current_ua(&self) -> u64 {
        let delta = self.active_delta_ua[version_index(self.policy.version())];
        let (skip, of) = self.policy.duty();
        let of = u64::from(of.max(1));
        let kept = of - u64::from(skip).min(of);
        self.baseline_ua + delta * kept / of
    }

    /// The deployable model for `version` in the scenario's backend
    /// family, training and caching it on first use (deterministic:
    /// same subjects, same scenario seed).
    fn model_for(
        &mut self,
        version: Version,
        scenario: &Scenario,
    ) -> Result<DetectorModel, WiotError> {
        if let Some((_, m)) = self.models.iter().find(|(v, _)| *v == version) {
            return Ok(m.clone());
        }
        let m = train_backend_for_subject(
            &bank(),
            scenario.victim,
            version,
            scenario.backend,
            &scenario.config,
            scenario.seed,
        )?;
        self.models.push((version, m.clone()));
        Ok(m)
    }
}

/// Where a [`DeviceSim`] is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sensors still producing chunks.
    Streaming,
    /// Sensors exhausted; in-flight packets and retransmissions drain.
    Draining,
    /// Flushed and watchdog-polled; only scoring remains.
    Finished,
}

/// One simulated device: a full sensors → attacker → faults →
/// channel/ARQ → base-station pipeline advanced one chunk tick at a
/// time.
///
/// [`run`] drives a single `DeviceSim` to completion; the fleet engine
/// (`crate::fleet`) owns many and steps each on a worker thread. All
/// state is owned (`Send`), so whole devices can migrate across
/// threads; determinism comes solely from the scenario seed.
pub struct DeviceSim {
    scenario: Scenario,
    live_fs: f64,
    station: BaseStation,
    ecg_dev: SensorDevice,
    abp_dev: SensorDevice,
    attacker: Option<Attacker>,
    links: [Link; 2],
    persist: Option<Persistence>,
    survival: Option<SurvivalRuntime>,
    fault_summary: FaultSummary,
    /// Whether any link ran degraded on the previous tick (edge
    /// detection for the `FaultLinkDegrade` telemetry event).
    degraded_prev: bool,
    /// Hold value per stream for stuck-at injection.
    stuck_hold: [f64; 2],
    /// Window-log entries already replayed to an adaptive attacker.
    feedback_cursor: usize,
    chunk_ms: u64,
    now_ms: u64,
    prev_ms: u64,
    drain_ticks: u32,
    phase: Phase,
}

impl std::fmt::Debug for DeviceSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSim")
            .field("victim", &self.scenario.victim)
            .field("now_ms", &self.now_ms)
            .field("phase", &self.phase)
            .finish()
    }
}

impl DeviceSim {
    /// Build a device for `scenario`, training its model inline.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] for inconsistent
    /// parameters and propagates training and platform errors.
    pub fn new(scenario: &Scenario) -> Result<Self, WiotError> {
        Self::with_options(scenario, DeviceOptions::default())
    }

    /// Build a device with explicit [`DeviceOptions`] (model injection,
    /// feature uplink).
    ///
    /// # Errors
    ///
    /// As [`DeviceSim::new`]; additionally rejects an injected model
    /// whose detector version does not match the scenario's.
    pub fn with_options(
        scenario: &Scenario,
        options: DeviceOptions<'_>,
    ) -> Result<Self, WiotError> {
        // With a subject override the legacy bank is never touched
        // (population-scale campaigns would otherwise rebuild it per
        // device); without one, behavior is exactly as before.
        let subjects = if options.subject.is_none() {
            bank()
        } else {
            Vec::new()
        };
        if options.subject.is_some() {
            if scenario.survival.is_some() {
                return Err(WiotError::InvalidScenario {
                    reason: "subject override is incompatible with the survival policy",
                });
            }
        } else if scenario.victim >= subjects.len() {
            return Err(WiotError::InvalidScenario {
                reason: "victim index out of range",
            });
        }
        if let Some(a) = &scenario.attack {
            if a.start_s >= a.end_s || a.end_s > scenario.duration_s {
                return Err(WiotError::InvalidScenario {
                    reason: "attack interval must be non-empty and inside the session",
                });
            }
        }
        scenario.faults.validate(scenario.duration_s)?;

        // Deploy the injected model, or train offline then deploy.
        let deployed: DetectorModel = if let Some(d) = options.deployed {
            if d.kind() != scenario.backend {
                return Err(WiotError::InvalidScenario {
                    reason: "injected deployed model backend does not match the scenario",
                });
            }
            if d.dim() != scenario.version.feature_count() {
                return Err(WiotError::InvalidScenario {
                    reason: "injected model version does not match the scenario",
                });
            }
            d.clone()
        } else if let Some(model) = options.model {
            if scenario.backend != BackendKind::Svm {
                return Err(WiotError::InvalidScenario {
                    reason: "gold model injection deploys the SVM backend only",
                });
            }
            if model.version() != scenario.version {
                return Err(WiotError::InvalidScenario {
                    reason: "injected model version does not match the scenario",
                });
            }
            model.embedded().clone().into()
        } else {
            if options.subject.is_some() {
                return Err(WiotError::InvalidScenario {
                    reason: "subject override requires an injected deployed model",
                });
            }
            train_backend_for_subject(
                &subjects,
                scenario.victim,
                scenario.version,
                scenario.backend,
                &scenario.config,
                scenario.seed,
            )?
        };
        let app = SiftApp::new(scenario.version, deployed.clone(), scenario.config.clone())?;
        let mut station = BaseStation::new(app, scenario.config.clone(), scenario.chunk_s)?;
        if let Some(max_missing) = scenario.salvage_max_missing {
            station = station.with_salvage(max_missing);
        }
        if let Some(timeout_ms) = scenario.watchdog_timeout_ms {
            station = station.with_watchdog(timeout_ms, false)?;
        }
        if options.feature_uplink {
            station = station.with_feature_uplink(scenario.version);
        }
        if options.telemetry {
            station.os_mut().attach_telemetry(Telemetry::enabled());
        }
        // The survival policy layer, if this scenario runs one. Built
        // before the first checkpoint commit so policy-enabled runs
        // persist the 16-byte survival suffix from generation 1 on.
        let survival = scenario
            .survival
            .map(|cfg| SurvivalRuntime::new(cfg, scenario, station.os().energy_model(), deployed.clone()));

        // Crash-consistent checkpointing: charge the NVRAM region to the
        // station's FRAM map and seed generation 1 so even a reboot on
        // the very first tick has something to resume from.
        let persist = if scenario.persist {
            let mut p = Persistence::new(scenario.version, deployed)?;
            p.reserve(&mut station)?;
            if let Some(rt) = survival.as_ref() {
                p.enable_survival(rt.policy.snapshot());
            }
            p.commit(0, 0)?;
            Some(p)
        } else {
            None
        };

        // Live session data (unseen by training).
        let victim_subject = match options.subject {
            Some(s) => s,
            None => &subjects[scenario.victim],
        };
        let live = Record::synthesize_profiled(
            victim_subject,
            scenario.duration_s,
            scenario.seed ^ 0x11FE,
            scenario.synth,
        );
        let ecg_dev = SensorDevice::ecg(&live, scenario.chunk_s);
        let abp_dev = SensorDevice::abp(&live, scenario.chunk_s);

        let attacker = scenario.attack.as_ref().map(|spec| {
            Attacker::new(
                spec.mode.clone(),
                (spec.start_s * 1000.0) as u64,
                (spec.end_s * 1000.0) as u64,
                scenario.seed ^ 0xA77,
            )
        });

        let link_config = scenario.link.to_channel_config();
        let links = [
            Link::new(link_config.clone(), scenario.seed ^ 0xC41, scenario.arq)?,
            Link::new(link_config, scenario.seed ^ 0xC42, scenario.arq)?,
        ];

        Ok(Self {
            chunk_ms: (scenario.chunk_s * 1000.0) as u64,
            scenario: scenario.clone(),
            live_fs: live.fs,
            station,
            ecg_dev,
            abp_dev,
            attacker,
            links,
            persist,
            survival,
            fault_summary: FaultSummary::default(),
            degraded_prev: false,
            stuck_hold: [0.0f64; 2],
            feedback_cursor: 0,
            now_ms: 0,
            prev_ms: 0,
            drain_ticks: 0,
            phase: Phase::Streaming,
        })
    }

    /// Pump both links and feed arrivals to the station, in
    /// delivery-time order across both links (stable sort: equal times
    /// keep ECG first).
    fn deliver_arrivals(&mut self) -> Result<(), WiotError> {
        let mut arrivals = self.links[0].pump(self.now_ms)?;
        arrivals.extend(self.links[1].pump(self.now_ms)?);
        arrivals.sort_by_key(|d| d.at_ms);
        for d in arrivals {
            self.station.receive(d)?;
        }
        Ok(())
    }

    /// One streaming tick. Returns `false` (consuming no tick) once both
    /// sensors are exhausted.
    fn step_stream(&mut self) -> Result<bool, WiotError> {
        let pe = self.ecg_dev.poll();
        let pa = self.abp_dev.poll();
        if pe.is_none() && pa.is_none() {
            return Ok(false);
        }

        // NVRAM bit rot first (no reboot by itself — the corruption
        // waits in FRAM until the next restore detects and discards
        // it, or the next commit overwrites the slot).
        for (byte, bit) in self.scenario.faults.bitrot_between(self.prev_ms, self.now_ms) {
            if let Some(p) = self.persist.as_mut() {
                p.flip_bit(byte, bit);
                self.fault_summary.bitrot_flips += 1;
                self.station.os_mut().telemetry_mut().event(
                    self.now_ms,
                    EventCode::FaultBitRot,
                    byte as u64,
                    u64::from(bit),
                );
            }
        }
        // Brownout reboots scheduled since the last tick.
        let reboots = self
            .scenario
            .faults
            .reboots_between(self.prev_ms, self.now_ms);
        for _ in 0..reboots {
            self.power_cycle()?;
        }
        // Torn-commit power failures: the checkpoint write sequence is
        // cut after `cut` bytes, then the station power-cycles. Without
        // persistence there is no commit to tear, but the power still
        // fails.
        for cut in self
            .scenario
            .faults
            .torn_checkpoints_between(self.prev_ms, self.now_ms)
        {
            if let Some(p) = self.persist.as_mut() {
                let stats = self.station.stats();
                p.commit_torn(
                    (stats.windows_emitted + stats.windows_salvaged) as u32,
                    self.station.alerts().len() as u32,
                    cut,
                )?;
                self.fault_summary.torn_commits += 1;
                self.station.os_mut().telemetry_mut().event(
                    self.now_ms,
                    EventCode::FaultTornCommit,
                    cut as u64,
                    0,
                );
            }
            self.power_cycle()?;
        }

        // Survival policy: integrate the battery model over this tick
        // and run the 1 Hz control loop (no-op when disabled).
        self.step_survival()?;

        // Link-degradation episodes.
        let mut any_degraded = false;
        for (i, stream) in [Stream::Ecg, Stream::Abp].iter().enumerate() {
            let want = self.scenario.faults.degrade(*stream, self.now_ms).copied();
            if want.is_some() != self.links[i].channel().is_degraded() || want.is_some() {
                self.links[i].set_degrade(want)?;
            }
            any_degraded |= want.is_some();
        }
        if any_degraded {
            self.fault_summary.degraded_link_ms += self.chunk_ms;
        }
        if any_degraded != self.degraded_prev {
            // Edge-triggered: one event per episode boundary, with the
            // gauge tracking the level in between.
            let tele = self.station.os_mut().telemetry_mut();
            tele.event(
                self.now_ms,
                EventCode::FaultLinkDegrade,
                u64::from(any_degraded),
                0,
            );
            tele.gauge_set(GaugeId::LinkDegraded, i64::from(any_degraded));
            self.degraded_prev = any_degraded;
        }

        // Offer each packet to its (possibly faulted) sensor and link.
        for (i, (stream, packet)) in [(Stream::Ecg, pe), (Stream::Abp, pa)]
            .into_iter()
            .enumerate()
        {
            let Some(mut p) = packet else { continue };
            // Survival duty cycle: a suppressed window's chunks never
            // leave the sensor — on the real device the ADC and radio
            // would not even have run.
            if let Some(rt) = self.survival.as_mut() {
                let (skip, of) = rt.policy.duty();
                let idx = self.now_ms / rt.window_ms;
                if window_is_skipped(idx, skip, of) {
                    self.fault_summary.duty_skipped_chunks += 1;
                    if rt.last_skipped_window != Some(idx) {
                        rt.last_skipped_window = Some(idx);
                        rt.duty_skipped_windows += 1;
                    }
                    continue;
                }
            }
            if stream == Stream::Ecg {
                if let Some(att) = self.attacker.as_mut() {
                    p = att.intercept(self.now_ms, p, self.live_fs);
                }
            }
            if self.scenario.faults.is_dropout(stream, self.now_ms) {
                self.fault_summary.dropout_chunks += 1;
                self.station.os_mut().telemetry_mut().event(
                    self.now_ms,
                    EventCode::FaultDropout,
                    i as u64,
                    0,
                );
                continue;
            }
            if self.scenario.faults.is_stuck(stream, self.now_ms) {
                // Frozen ADC: flat payload at the last healthy value,
                // no peak annotations.
                for s in p.samples.iter_mut() {
                    *s = self.stuck_hold[i];
                }
                p.peaks.clear();
                self.fault_summary.stuck_chunks += 1;
                self.station.os_mut().telemetry_mut().event(
                    self.now_ms,
                    EventCode::FaultStuck,
                    i as u64,
                    0,
                );
            } else if let Some(&last) = p.samples.last() {
                self.stuck_hold[i] = last;
            }
            let skew_ms = self.scenario.faults.clock_skew_ms(stream, self.now_ms);
            self.fault_summary.max_clock_skew_ms =
                self.fault_summary.max_clock_skew_ms.max(skew_ms);
            self.links[i].send(self.now_ms + skew_ms, p);
        }

        self.deliver_arrivals()?;
        self.station.poll_watchdog(self.now_ms)?;
        self.pump_attacker_feedback();

        // Commit the detector's stream position every tick: whatever
        // the next brownout destroys, at most one tick of progress is
        // lost and the enrolled model never is. With the survival
        // policy on, its decision state rides along as a fixed suffix,
        // so a reboot resumes the same degradation posture.
        if let Some(p) = self.persist.as_mut() {
            if let Some(rt) = self.survival.as_ref() {
                p.set_survival(rt.policy.snapshot());
            }
            let stats = self.station.stats();
            p.commit(
                (stats.windows_emitted + stats.windows_salvaged) as u32,
                self.station.alerts().len() as u32,
            )?;
        }

        self.prev_ms = self.now_ms;
        self.now_ms += self.chunk_ms;
        self.station.advance_time(self.chunk_ms);
        Ok(true)
    }

    /// Replay newly resolved windows to an adaptive attacker: each
    /// window overlapping the attack interval reports whether the
    /// detector alerted, driving the attacker's threshold probe (a
    /// bisection on the blend factor). The adversary here stands in
    /// for one who observes the victim's alarm side-channel. No-op —
    /// and RNG-free — for every other attack class.
    fn pump_attacker_feedback(&mut self) {
        let Some(att) = self.attacker.as_mut() else {
            return;
        };
        if !att.wants_feedback() {
            return;
        }
        let window_ms = (self.scenario.config.window_s * 1000.0) as u64;
        let (a0, a1) = att.window_ms();
        let log = self.station.window_log();
        for &(idx, outcome) in log.iter().skip(self.feedback_cursor) {
            let w_start = idx as u64 * window_ms;
            if w_start + window_ms <= a0 || w_start >= a1 {
                continue;
            }
            if let WindowOutcome::Emitted { alerted } | WindowOutcome::Salvaged { alerted } =
                outcome
            {
                att.feedback(alerted);
            }
        }
        self.feedback_cursor = log.len();
    }

    /// One tick of the survival layer: integrate the battery model,
    /// and at 1 Hz sample the sensors (state of charge, smoothed link
    /// badness, backlog), step the policy, and actuate whatever it
    /// decided. A no-op when the scenario runs without a policy.
    fn step_survival(&mut self) -> Result<(), WiotError> {
        let Some(rt) = self.survival.as_mut() else {
            return Ok(());
        };
        let scale = u64::from(rt.policy.config().drain_scale.max(1));
        let current = rt.current_ua().saturating_mul(scale);
        rt.battery.drain(current, self.chunk_ms);
        if !self.now_ms.is_multiple_of(1000) {
            return Ok(());
        }

        let soc = rt.battery.soc_permille();
        if rt.cutoff_at_ms.is_none() && rt.policy.is_cutoff(soc) {
            rt.cutoff_at_ms = Some(self.now_ms);
        }
        if soc <= rt.policy.config().retry_tight_below_permille {
            self.fault_summary.low_battery_ticks += 1;
        }
        // Link badness: channel loss plus retransmission drag, folded
        // to permille host-side before it crosses into the integer
        // policy core.
        let loss =
            (self.links[0].channel().loss_rate() + self.links[1].channel().loss_rate()) / 2.0;
        let retransmit_rate = match (self.links[0].transport_stats(), self.links[1].transport_stats())
        {
            (Some(a), Some(b)) => {
                let sent = (a.data_sent + b.data_sent).max(1) as f64;
                (a.retransmits + b.retransmits) as f64 / sent
            }
            _ => 0.0,
        };
        let badness = LinkQuality {
            loss_rate: loss,
            retransmit_rate,
        }
        .badness_permille();
        // Backlog: windows whose time has passed but that neither
        // resolved at the station nor were duty-skipped at the source.
        let expected = self.now_ms / rt.window_ms;
        let resolved = self.station.window_log().len() as u64 + rt.duty_skipped_windows;
        let backlog = expected.saturating_sub(resolved).min(u64::from(u16::MAX)) as u16;

        let verdict = rt.policy.step(SurvivalInputs {
            soc_permille: soc,
            link_badness_permille: badness,
            backlog_windows: backlog,
        });
        rt.occupancy_ticks[version_index(rt.policy.version())] += 1;
        if verdict.is_quiescent() {
            return Ok(());
        }
        self.actuate_survival(verdict)
    }

    /// Carry out the policy's decisions: retry budget on both links,
    /// duty cycle (applied at the packet-offer gate), and — the
    /// expensive one — a detector reflash for a version switch, with
    /// the FRAM checkpoint re-reserved and re-targeted at the new
    /// build.
    fn actuate_survival(&mut self, verdict: SurvivalVerdict) -> Result<(), WiotError> {
        if let Some(action @ SurvivalAction::SetRetry {
            max_retries,
            backoff_extra_shift,
            ..
        }) = verdict.retry
        {
            for link in self.links.iter_mut() {
                link.set_retry_budget(u32::from(max_retries), u32::from(backoff_extra_shift));
            }
            if let Some(rt) = self.survival.as_mut() {
                rt.retry_reconfigs += 1;
                rt.actions.push(action);
            }
            self.station.os_mut().telemetry_mut().event(
                self.now_ms,
                EventCode::SurvivalAction,
                2,
                (u64::from(max_retries) << 8) | u64::from(backoff_extra_shift),
            );
        }
        if let Some(action @ SurvivalAction::SetDuty { skip, of, .. }) = verdict.duty {
            if let Some(rt) = self.survival.as_mut() {
                rt.actions.push(action);
            }
            self.station.os_mut().telemetry_mut().event(
                self.now_ms,
                EventCode::SurvivalAction,
                1,
                (u64::from(skip) << 8) | u64::from(of),
            );
        }
        if let Some(action @ SurvivalAction::SetVersion { to, .. }) = verdict.version {
            let Some(rt) = self.survival.as_mut() else {
                return Ok(());
            };
            let model = rt.model_for(to, &self.scenario)?;
            let app = SiftApp::new(to, model.clone(), self.scenario.config.clone())?;
            // The reflash drops the FRAM checkpoint reservation along
            // with the old image's memory map: re-charge it and point
            // subsequent commits at the new build.
            self.station.swap_detector(app)?;
            if let Some(p) = self.persist.as_mut() {
                p.reserve(&mut self.station)?;
                p.set_version(to, model)?;
            }
            if let Some(rt) = self.survival.as_mut() {
                rt.actions.push(action);
            }
            self.station.os_mut().telemetry_mut().event(
                self.now_ms,
                EventCode::SurvivalAction,
                0,
                version_index(to) as u64,
            );
        }
        Ok(())
    }

    /// A brownout power cycle: the station loses its SRAM-resident
    /// window-assembly state, and (with persistence on) the detector is
    /// rebuilt from the newest valid FRAM checkpoint — rolling back to
    /// the previous generation when the newest slot is torn or rotted,
    /// never resuming from corrupt bytes.
    fn power_cycle(&mut self) -> Result<(), WiotError> {
        self.station.reboot();
        self.fault_summary.reboots += 1;
        // The sink lives in the OS, not the rebooted app state, so it
        // survives the power cycle and can witness it.
        self.station.os_mut().telemetry_mut().event(
            self.now_ms,
            EventCode::FaultReboot,
            self.fault_summary.reboots,
            0,
        );
        if let Some(p) = self.persist.as_mut() {
            match self.survival.as_mut() {
                Some(rt) => {
                    // The checkpoint carries the survival suffix: a
                    // valid restore resyncs the policy and re-actuates
                    // the link-side knobs (the duty gate reads policy
                    // state directly; a cross-version checkpoint was
                    // already hot-swapped by the recovery itself).
                    if let Some(snap) = p.recover_survival(
                        &mut self.station,
                        &self.scenario.config,
                        &mut self.fault_summary,
                    )? {
                        rt.policy.restore(snap);
                        let (max, shift) = rt.policy.retry();
                        for link in self.links.iter_mut() {
                            link.set_retry_budget(u32::from(max), u32::from(shift));
                        }
                    }
                }
                None => {
                    p.recover(
                        &mut self.station,
                        &self.scenario.config,
                        &mut self.fault_summary,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// One drain tick: in-flight packets and pending retransmissions
    /// may still complete windows after the sensors stop. Returns
    /// `false` once the links are idle (or the drain budget is spent).
    fn step_drain(&mut self) -> Result<bool, WiotError> {
        if self.links.iter().all(Link::idle) || self.drain_ticks >= 1_000 {
            return Ok(false);
        }
        self.now_ms += self.chunk_ms;
        self.station.advance_time(self.chunk_ms);
        self.deliver_arrivals()?;
        self.drain_ticks += 1;
        Ok(true)
    }

    /// Advance the device by one chunk tick. Returns `true` while the
    /// session is still in progress, `false` once it has fully finished
    /// (sensors exhausted, links drained, station flushed).
    ///
    /// # Errors
    ///
    /// Propagates platform errors (e.g. battery exhaustion, strict
    /// watchdog stalls).
    pub fn step(&mut self) -> Result<bool, WiotError> {
        match self.phase {
            Phase::Streaming => {
                if self.step_stream()? {
                    return Ok(true);
                }
                self.phase = Phase::Draining;
                self.step()
            }
            Phase::Draining => {
                if self.step_drain()? {
                    return Ok(true);
                }
                self.station.flush()?;
                self.station.poll_watchdog(self.now_ms)?;
                self.phase = Phase::Finished;
                Ok(false)
            }
            Phase::Finished => Ok(false),
        }
    }

    /// Drive the device until [`DeviceSim::step`] reports completion.
    ///
    /// # Errors
    ///
    /// As [`DeviceSim::step`].
    pub fn run_to_completion(&mut self) -> Result<(), WiotError> {
        while self.step()? {}
        Ok(())
    }

    /// Simulated device clock, ms.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Everything the fault plan has done so far (including checkpoint
    /// recovery counters).
    pub fn fault_summary(&self) -> FaultSummary {
        self.fault_summary
    }

    /// The device's base station (window log, stats, OS meters).
    pub fn station(&self) -> &BaseStation {
        &self.station
    }

    /// Per-window outcomes `(window index, outcome)` in window order —
    /// the verdict sequence golden traces pin.
    pub fn window_log(&self) -> &std::collections::VecDeque<(usize, WindowOutcome)> {
        self.station.window_log()
    }

    /// Drain the station's feature-uplink queue (empty unless
    /// [`DeviceOptions::feature_uplink`] was set).
    pub fn take_uplinked_features(&mut self) -> Vec<(usize, Vec<f32>)> {
        self.station.take_uplinked_features()
    }

    /// Flush the session's terminal state into the telemetry sink and
    /// snapshot it: one timestamped event per window outcome and stall
    /// alert, the channel/ARQ/fault counters (recorded exactly once,
    /// from the same final stats the report carries), and the battery
    /// gauge. `None` when the sink is disabled — the entire method is
    /// then a single branch.
    fn snapshot_telemetry(&mut self) -> Option<TelemetryReport> {
        if !self.station.os().telemetry().is_enabled() {
            return None;
        }
        let window_ms = (self.scenario.config.window_s * 1000.0) as u64;
        let log: Vec<(usize, WindowOutcome)> =
            self.station.window_log().iter().copied().collect();
        let channel =
            add_channel_stats(self.links[0].channel().stats(), self.links[1].channel().stats());
        let transport = match (self.links[0].transport_stats(), self.links[1].transport_stats()) {
            (Some(a), Some(b)) => Some(add_transport_stats(a, b)),
            _ => None,
        };
        let stalls: Vec<u64> = self
            .station
            .alerts()
            .iter()
            .filter(|a| a.app == "watchdog")
            .map(|a| a.at_ms)
            .collect();
        let battery_permille = (self
            .station
            .os()
            .meter()
            .battery_fraction_left(self.station.os().energy_model())
            * 1000.0) as i64;
        let faults = self.fault_summary;
        let survival_counts = self
            .survival
            .as_ref()
            .map(|rt| (u64::from(rt.policy.switches()), rt.retry_reconfigs));

        let tele = self.station.os_mut().telemetry_mut();
        for &(idx, outcome) in &log {
            let t = idx as u64 * window_ms;
            match outcome {
                WindowOutcome::Dropped => {
                    tele.event(t, EventCode::WindowDropped, idx as u64, 0);
                    tele.count(CounterId::WindowsDropped, 1);
                }
                WindowOutcome::Rejected => {
                    tele.event(t, EventCode::WindowRejected, idx as u64, 0);
                    tele.count(CounterId::WindowsRejected, 1);
                }
                WindowOutcome::Emitted { alerted } => {
                    tele.event(t, EventCode::WindowEmitted, idx as u64, u64::from(alerted));
                    tele.count(CounterId::WindowsEmitted, 1);
                    if alerted {
                        tele.count(CounterId::AlertsRaised, 1);
                    }
                }
                WindowOutcome::Salvaged { alerted } => {
                    tele.event(t, EventCode::WindowSalvaged, idx as u64, u64::from(alerted));
                    tele.count(CounterId::WindowsSalvaged, 1);
                    if alerted {
                        tele.count(CounterId::AlertsRaised, 1);
                    }
                }
            }
        }
        for &at_ms in &stalls {
            tele.event(at_ms, EventCode::StallAlert, 0, 0);
        }
        tele.count(CounterId::StallAlerts, stalls.len() as u64);
        tele.count(CounterId::PacketsSent, channel.sent);
        tele.count(CounterId::PacketsLost, channel.lost);
        tele.count(CounterId::PacketsDuplicated, channel.duplicated);
        tele.count(CounterId::PacketsReordered, channel.reordered);
        tele.count(CounterId::PacketsCorrupted, channel.corrupted);
        if let Some(t) = transport {
            tele.count(CounterId::ArqDataSent, t.data_sent);
            tele.count(CounterId::ArqRetransmits, t.retransmits);
            tele.count(CounterId::ArqNacksSent, t.nacks_sent);
            tele.count(CounterId::ArqGapRecoveries, t.gap_recoveries);
            tele.count(CounterId::ArqGiveUps, t.give_ups);
            tele.count(CounterId::ArqDuplicatesDiscarded, t.duplicates_discarded);
            tele.count(CounterId::ArqBufferEvictions, t.buffer_evictions);
        }
        tele.count(CounterId::FaultReboots, faults.reboots);
        tele.count(CounterId::FaultTornCommits, faults.torn_commits);
        tele.count(CounterId::FaultBitrotFlips, faults.bitrot_flips);
        tele.count(CounterId::FaultDropoutChunks, faults.dropout_chunks);
        tele.count(CounterId::FaultStuckChunks, faults.stuck_chunks);
        tele.count(CounterId::CheckpointRecoveries, faults.recoveries);
        tele.count(CounterId::CheckpointRollbacks, faults.rollbacks);
        if let Some((switches, retry_reconfigs)) = survival_counts {
            tele.count(CounterId::SurvivalVersionSwitches, switches);
            tele.count(CounterId::SurvivalDutySkippedChunks, faults.duty_skipped_chunks);
            tele.count(CounterId::SurvivalRetryReconfigs, retry_reconfigs);
            tele.count(CounterId::SurvivalLowBatteryTicks, faults.low_battery_ticks);
        }
        tele.gauge_set(GaugeId::BatteryPermille, battery_permille);
        self.station.os().telemetry().report()
    }

    /// Finish the session (if still running) and score it into a
    /// [`SimReport`].
    ///
    /// # Errors
    ///
    /// As [`DeviceSim::step`].
    pub fn into_report(mut self) -> Result<SimReport, WiotError> {
        self.run_to_completion()?;
        let telemetry = self.snapshot_telemetry();
        let survival = self.survival.take().map(|rt| SurvivalReport {
            version_switches: u64::from(rt.policy.switches()),
            duty_skipped_chunks: self.fault_summary.duty_skipped_chunks,
            retry_reconfigs: rt.retry_reconfigs,
            low_battery_ticks: self.fault_summary.low_battery_ticks,
            final_version: rt.policy.version(),
            final_soc_permille: rt.battery.soc_permille(),
            cutoff_at_ms: rt.cutoff_at_ms,
            occupancy_ticks: rt.occupancy_ticks,
            actions: rt.actions,
        });
        let scenario = &self.scenario;
        let station = &self.station;
        let links = &self.links;

        // Score the window log against ground truth.
        let window_ms = (scenario.config.window_s * 1000.0) as u64;
        let attack_span = scenario
            .attack
            .as_ref()
            .map(|a| ((a.start_s * 1000.0) as u64, (a.end_s * 1000.0) as u64));
        let attack_class = scenario.attack.as_ref().map(|a| a.mode.class_index());
        let mut faults = self.fault_summary;
        let mut confusion = ConfusionMatrix::default();
        let mut ambiguous = 0usize;
        let mut dropped = 0usize;
        let mut latency: Option<u64> = None;
        for &(idx, outcome) in station.window_log() {
            let w_start = idx as u64 * window_ms;
            let w_end = w_start + window_ms;
            let overlap = attack_span
                .map(|(a0, a1)| {
                    let lo = w_start.max(a0);
                    let hi = w_end.min(a1);
                    hi.saturating_sub(lo) as f64 / window_ms as f64
                })
                .unwrap_or(0.0);
            let truth = if overlap >= 0.5 {
                Some(Label::Positive)
            } else if overlap == 0.0 {
                Some(Label::Negative)
            } else {
                None
            };
            match outcome {
                WindowOutcome::Dropped | WindowOutcome::Rejected => dropped += 1,
                WindowOutcome::Emitted { alerted } | WindowOutcome::Salvaged { alerted } => {
                    let predicted = if alerted {
                        Label::Positive
                    } else {
                        Label::Negative
                    };
                    match truth {
                        Some(t) => {
                            confusion.record(t, predicted);
                            // Per-attack-class hit/miss ledger for the
                            // campaign engine (outside the frozen digest).
                            if t == Label::Positive {
                                if let Some(ci) = attack_class {
                                    if alerted {
                                        faults.attack_windows_tp[ci] += 1;
                                    } else {
                                        faults.attack_windows_fn[ci] += 1;
                                    }
                                }
                            }
                        }
                        None => ambiguous += 1,
                    }
                    if alerted && overlap > 0.0 && latency.is_none() {
                        if let Some((a0, _)) = attack_span {
                            latency = Some(w_end.saturating_sub(a0));
                        }
                    }
                }
            }
        }

        let mut sink = Sink::new();
        sink.archive_alerts(station.alerts());

        let stats = station.stats();
        let expected_windows = (scenario.duration_s / scenario.config.window_s)
            .floor()
            .max(1.0);
        let recovered = stats.windows_emitted + stats.windows_salvaged;
        let stall_alerts = station
            .alerts()
            .iter()
            .filter(|a| a.app == "watchdog")
            .count();

        Ok(SimReport {
            confusion,
            ambiguous_windows: ambiguous,
            dropped_windows: dropped,
            salvaged_windows: stats.windows_salvaged as usize,
            window_recovery_rate: recovered as f64 / expected_windows,
            detection_latency_ms: latency,
            channel_loss_rate: (links[0].channel().loss_rate() + links[1].channel().loss_rate())
                / 2.0,
            channel: add_channel_stats(links[0].channel().stats(), links[1].channel().stats()),
            transport: match (links[0].transport_stats(), links[1].transport_stats()) {
                (Some(a), Some(b)) => Some(add_transport_stats(a, b)),
                _ => None,
            },
            faults,
            stall_alerts,
            battery_left: station
                .os()
                .meter()
                .battery_fraction_left(station.os().energy_model()),
            telemetry,
            survival,
            sink,
        })
    }
}

/// Run `scenario` to completion on a single device.
///
/// # Errors
///
/// Returns [`WiotError::InvalidScenario`] for inconsistent parameters
/// and propagates training and platform errors.
pub fn run(scenario: &Scenario) -> Result<SimReport, WiotError> {
    DeviceSim::new(scenario)?.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind};

    #[test]
    fn quiet_session_has_few_false_alerts() {
        let s = Scenario::new(0, Version::Simplified, 60.0);
        let r = run(&s).unwrap();
        assert!(r.confusion.fp + r.confusion.tn == 20);
        let fp_rate = r.confusion.false_positive_rate().unwrap();
        assert!(fp_rate < 0.3, "fp rate {fp_rate}");
        assert!(r.detection_latency_ms.is_none());
        assert!(r.battery_left > 0.99);
        assert!(r.transport.is_none());
        assert_eq!(r.salvaged_windows, 0);
        assert!((r.window_recovery_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn substitution_attack_is_detected() {
        let donor = Record::synthesize(&bank()[5], 60.0, 4242);
        let mut s = Scenario::new(0, Version::Simplified, 60.0);
        s.attack = Some(AttackSpec {
            mode: AttackMode::Substitute { donor },
            start_s: 21.0,
            end_s: 45.0,
        });
        let r = run(&s).unwrap();
        assert!(r.confusion.tp + r.confusion.fn_ >= 7, "{:?}", r.confusion);
        let fn_rate = r.confusion.false_negative_rate().unwrap();
        assert!(fn_rate < 0.4, "fn rate {fn_rate}");
        let latency = r.detection_latency_ms.expect("attack should be seen");
        assert!(latency <= 9_000, "latency {latency} ms");
        assert!(!r.sink.alerts().is_empty());
    }

    #[test]
    fn freeze_attack_triggers_degenerate_alerts() {
        let mut s = Scenario::new(1, Version::Simplified, 30.0);
        s.attack = Some(AttackSpec {
            mode: AttackMode::Freeze,
            start_s: 9.0,
            end_s: 21.0,
        });
        let r = run(&s).unwrap();
        assert!(
            r.confusion.tp >= 3,
            "freeze should be flagged: {:?}",
            r.confusion
        );
    }

    #[test]
    fn lossy_link_degrades_gracefully() {
        let mut s = Scenario::new(0, Version::Reduced, 60.0);
        s.link.loss_prob = 0.08;
        let r = run(&s).unwrap();
        assert!(r.dropped_windows > 0);
        assert!(r.channel_loss_rate > 0.02);
        // Still scores the windows that survived.
        assert!(r.confusion.total() > 0);
        assert!(r.window_recovery_rate < 1.0);
    }

    #[test]
    fn arq_recovers_what_the_raw_link_loses() {
        let mut s = Scenario::new(0, Version::Reduced, 60.0);
        s.link.loss_prob = 0.08;
        let raw = run(&s).unwrap();
        s.arq = Some(ArqConfig::default());
        let arq = run(&s).unwrap();
        let t = arq.transport.expect("ARQ was on");
        assert!(t.retransmits > 0, "{t:?}");
        assert!(
            arq.window_recovery_rate > raw.window_recovery_rate,
            "arq {} vs raw {}",
            arq.window_recovery_rate,
            raw.window_recovery_rate
        );
    }

    #[test]
    fn fault_plan_counters_reach_the_report() {
        let mut s = Scenario::new(0, Version::Reduced, 60.0);
        s.faults = FaultPlan::new()
            .with(FaultEvent {
                start_s: 10.0,
                end_s: 15.0,
                kind: FaultKind::SensorDropout {
                    stream: Stream::Abp,
                },
            })
            .with(FaultEvent {
                start_s: 20.0,
                end_s: 25.0,
                kind: FaultKind::SensorStuck {
                    stream: Stream::Ecg,
                },
            })
            .with(FaultEvent {
                start_s: 30.0,
                end_s: 30.0,
                kind: FaultKind::DeviceReboot,
            })
            .with(FaultEvent {
                start_s: 40.0,
                end_s: 50.0,
                kind: FaultKind::LinkDegrade {
                    stream: None,
                    loss: LossModel::Bernoulli { p: 0.8 },
                },
            });
        let r = run(&s).unwrap();
        assert_eq!(r.faults.dropout_chunks, 10, "{:?}", r.faults);
        assert_eq!(r.faults.stuck_chunks, 10, "{:?}", r.faults);
        assert_eq!(r.faults.reboots, 1);
        assert!(r.faults.degraded_link_ms >= 9_000, "{:?}", r.faults);
        assert!(r.dropped_windows > 0, "degrade episode should cost windows");
    }

    #[test]
    fn checkpoint_recovery_survives_reboots_torn_commits_and_bit_rot() {
        let payload = sift::checkpoint::encoded_len(Version::Simplified);
        let seq = amulet_sim::nvram::CheckpointStore::commit_sequence_len(payload);
        let mut s = Scenario::new(0, Version::Simplified, 30.0);
        s.faults = FaultPlan::new()
            .with(FaultEvent {
                start_s: 9.3,
                end_s: 9.3,
                kind: FaultKind::DeviceReboot,
            })
            .with(FaultEvent {
                start_s: 15.2,
                end_s: 15.2,
                // Mid-header cut: past the payload, before the final
                // magic — the classic detectable torn write.
                kind: FaultKind::TornCheckpoint { cut_bytes: seq - 6 },
            })
            // Bit rot then a reboot in the same tick window: the
            // corrupted slot must be detected and rolled back, never
            // resumed from.
            .with(FaultEvent {
                start_s: 20.6,
                end_s: 20.6,
                kind: FaultKind::CheckpointBitRot { byte: 40, bit: 2 },
            })
            .with(FaultEvent {
                start_s: 20.7,
                end_s: 20.7,
                kind: FaultKind::DeviceReboot,
            });
        let r = run(&s).unwrap();
        assert_eq!(r.faults.reboots, 3, "{:?}", r.faults);
        assert_eq!(r.faults.torn_commits, 1);
        assert_eq!(r.faults.bitrot_flips, 1);
        assert_eq!(r.faults.recoveries, 3, "{:?}", r.faults);
        assert_eq!(r.faults.recovery_failures, 0, "{:?}", r.faults);
        assert!(r.faults.rollbacks >= 1, "{:?}", r.faults);
        // Detection kept working across all three power cycles.
        assert!(r.confusion.total() > 0);
    }

    #[test]
    fn no_persist_reboots_without_recovery() {
        let mut s = Scenario::new(0, Version::Simplified, 30.0);
        s.persist = false;
        s.faults = FaultPlan::new().with(FaultEvent {
            start_s: 9.3,
            end_s: 9.3,
            kind: FaultKind::DeviceReboot,
        });
        let r = run(&s).unwrap();
        assert_eq!(r.faults.reboots, 1);
        assert_eq!(r.faults.recoveries, 0);
        assert_eq!(r.faults.torn_commits, 0);
    }

    #[test]
    fn persistence_is_behaviorally_invisible_without_faults() {
        // The checkpoint engine must not perturb detection: same seed,
        // persist on vs off, identical verdict sequence and battery.
        let mut s = Scenario::new(2, Version::Reduced, 30.0);
        let with = run(&s).unwrap();
        s.persist = false;
        let without = run(&s).unwrap();
        assert_eq!(with.confusion, without.confusion);
        assert_eq!(with.dropped_windows, without.dropped_windows);
        assert_eq!(
            with.battery_left.to_bits(),
            without.battery_left.to_bits(),
            "commits must charge no energy"
        );
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let mut s = Scenario::new(99, Version::Original, 10.0);
        assert!(run(&s).is_err());
        s = Scenario::new(0, Version::Original, 10.0);
        s.attack = Some(AttackSpec {
            mode: AttackMode::Freeze,
            start_s: 5.0,
            end_s: 3.0,
        });
        assert!(run(&s).is_err());
        s = Scenario::new(0, Version::Original, 10.0);
        s.faults = FaultPlan::new().with(FaultEvent {
            start_s: 50.0,
            end_s: 60.0,
            kind: FaultKind::DeviceReboot,
        });
        assert!(run(&s).is_err(), "fault outside the session");
    }

    #[test]
    fn telemetry_is_behaviorally_invisible_and_captures_the_session() {
        // Same seed, sink on vs off: identical verdicts, identical
        // battery bits — and the traced run's counters agree with the
        // report's own numbers.
        let mut s = Scenario::new(0, Version::Reduced, 30.0);
        s.link.loss_prob = 0.08;
        s.faults = FaultPlan::new().with(FaultEvent {
            start_s: 9.3,
            end_s: 9.3,
            kind: FaultKind::DeviceReboot,
        });
        let plain = run(&s).unwrap();
        let traced = DeviceSim::with_options(
            &s,
            DeviceOptions {
                telemetry: true,
                ..DeviceOptions::default()
            },
        )
        .unwrap()
        .into_report()
        .unwrap();
        assert_eq!(plain.confusion, traced.confusion);
        assert_eq!(plain.dropped_windows, traced.dropped_windows);
        assert_eq!(
            plain.battery_left.to_bits(),
            traced.battery_left.to_bits(),
            "telemetry must charge no energy"
        );
        assert!(plain.telemetry.is_none());
        let report = traced.telemetry.expect("sink was enabled");
        assert_eq!(report.counter(CounterId::FaultReboots), traced.faults.reboots);
        assert_eq!(report.counter(CounterId::PacketsSent), traced.channel.sent);
        assert_eq!(
            (report.counter(CounterId::WindowsDropped)
                + report.counter(CounterId::WindowsRejected)) as usize,
            traced.dropped_windows
        );
        assert!(report
            .events
            .iter()
            .any(|e| e.code == EventCode::FaultReboot));
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.code, EventCode::WindowEmitted | EventCode::WindowDropped)));
    }

    #[test]
    fn deterministic_runs() {
        let s = Scenario::new(2, Version::Reduced, 30.0);
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        assert_eq!(a.confusion, b.confusion);
        assert_eq!(a.dropped_windows, b.dropped_windows);
    }

    #[test]
    fn quiescent_survival_policy_is_behaviorally_invisible() {
        // At full battery on a clean link the policy never actuates, so
        // a policy-enabled run must be bit-identical to a policy-off
        // run: same verdicts, same battery bits.
        let mut s = Scenario::new(2, Version::Reduced, 30.0);
        let off = run(&s).unwrap();
        s.survival = Some(SurvivalConfig::default());
        let on = run(&s).unwrap();
        assert_eq!(off.confusion, on.confusion);
        assert_eq!(off.dropped_windows, on.dropped_windows);
        assert_eq!(
            off.battery_left.to_bits(),
            on.battery_left.to_bits(),
            "a quiescent policy must charge no energy"
        );
        let sr = on.survival.expect("policy was on");
        assert!(sr.actions.is_empty(), "{:?}", sr.actions);
        assert_eq!(sr.version_switches, 0);
        assert_eq!(sr.final_version, Version::Reduced);
        assert_eq!(sr.duty_skipped_chunks, 0);
        // 30 s of real-time drain truncates at most one permille.
        assert!(sr.final_soc_permille >= 999);
        assert!(off.survival.is_none());
    }

    #[test]
    fn survival_policy_degrades_down_the_ladder_under_accelerated_drain() {
        // Scale the modeled drain so a 60 s session traverses the whole
        // discharge curve: the policy must walk Original → Simplified →
        // Reduced, thin the duty cycle, tighten the retry budget, and
        // stamp the battery cutoff.
        let mut s = Scenario::new(0, Version::Original, 60.0).with_reliability();
        s.survival = Some(SurvivalConfig {
            min_dwell_ticks: 5,
            drain_scale: 60_000,
            ..SurvivalConfig::default()
        });
        let r = run(&s).unwrap();
        let sr = r.survival.expect("policy was on");
        assert!(sr.version_switches >= 2, "{:?}", sr.actions);
        assert_eq!(sr.final_version, Version::Reduced);
        assert!(sr.duty_skipped_chunks > 0);
        assert_eq!(r.faults.duty_skipped_chunks, sr.duty_skipped_chunks);
        assert!(sr.retry_reconfigs >= 1);
        assert!(sr.low_battery_ticks > 0);
        assert_eq!(r.faults.low_battery_ticks, sr.low_battery_ticks);
        assert!(sr.cutoff_at_ms.is_some(), "soc {} ‰", sr.final_soc_permille);
        // Time was spent in every rung of the ladder.
        assert!(sr.occupancy_ticks.iter().all(|&t| t > 0), "{:?}", sr.occupancy_ticks);
        // Detection kept working right through both reflashes.
        assert!(r.confusion.total() > 0);
    }

    #[test]
    fn survival_policy_survives_brownouts_and_stays_deterministic() {
        // Brownout reboots mid-degradation: the policy state must come
        // back from the FRAM checkpoint (not reset to full power), and
        // the whole faulted run must replay byte-identically.
        let mut s = Scenario::new(1, Version::Original, 60.0).with_reliability();
        s.survival = Some(SurvivalConfig {
            min_dwell_ticks: 5,
            drain_scale: 60_000,
            ..SurvivalConfig::default()
        });
        s.faults = FaultPlan::new()
            .with(FaultEvent {
                start_s: 21.3,
                end_s: 21.3,
                kind: FaultKind::DeviceReboot,
            })
            .with(FaultEvent {
                start_s: 40.6,
                end_s: 40.6,
                kind: FaultKind::DeviceReboot,
            });
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        assert_eq!(a.faults.reboots, 2);
        assert_eq!(a.faults.recoveries, 2, "{:?}", a.faults);
        assert_eq!(a.faults.recovery_failures, 0, "{:?}", a.faults);
        let sa = a.survival.as_ref().expect("policy was on");
        let sb = b.survival.as_ref().expect("policy was on");
        assert_eq!(sa, sb, "policy decisions must replay identically");
        assert_eq!(a.confusion, b.confusion);
        // Degradation was not undone by the reboots.
        assert_eq!(sa.final_version, Version::Reduced);
        assert!(sa.version_switches >= 2);
    }

    #[test]
    fn survival_telemetry_counters_capture_the_session() {
        let mut s = Scenario::new(0, Version::Original, 60.0).with_reliability();
        s.survival = Some(SurvivalConfig {
            min_dwell_ticks: 5,
            drain_scale: 60_000,
            ..SurvivalConfig::default()
        });
        let traced = DeviceSim::with_options(
            &s,
            DeviceOptions {
                telemetry: true,
                ..DeviceOptions::default()
            },
        )
        .unwrap()
        .into_report()
        .unwrap();
        let sr = traced.survival.as_ref().expect("policy was on");
        let tele = traced.telemetry.as_ref().expect("sink was on");
        assert_eq!(
            tele.counter(CounterId::SurvivalVersionSwitches),
            sr.version_switches
        );
        assert_eq!(
            tele.counter(CounterId::SurvivalDutySkippedChunks),
            sr.duty_skipped_chunks
        );
        assert_eq!(
            tele.counter(CounterId::SurvivalRetryReconfigs),
            sr.retry_reconfigs
        );
        assert_eq!(
            tele.counter(CounterId::SurvivalLowBatteryTicks),
            sr.low_battery_ticks
        );
        // Every actuation left a tick-stamped event in the ring.
        let actuations = tele
            .events
            .iter()
            .filter(|e| e.code == EventCode::SurvivalAction)
            .count();
        assert_eq!(actuations, sr.actions.len());
    }
}
