//! The base station: an Amulet reassembling sensor streams into
//! detection windows and running the SIFT app on them.
//!
//! Incoming ECG/ABP packets are slotted into `w`-second windows; once a
//! window has every chunk of both channels, it is posted to the OS as a
//! `SnippetReady` event for the detector (and any other installed app).
//! Windows with missing chunks — lost packets — are dropped and counted:
//! a real device cannot fabricate samples.

use crate::channel::Delivery;
use crate::device::Stream;
use crate::WiotError;
use amulet_sim::apps::{HeartRateApp, SiftApp};
use amulet_sim::event::AmuletEvent;
use amulet_sim::machine::{Alert, App};
use amulet_sim::os::AmuletOs;
use amulet_sim::profiler::ResourceProfiler;
use amulet_sim::toolchain::FirmwareImage;
use physio_sim::quality::{assess, QualityConfig};
use sift::config::SiftConfig;
use sift::snippet::Snippet;
use std::collections::BTreeMap;

/// Window-assembly state for one channel.
#[derive(Debug, Clone)]
struct PartialWindow {
    chunks: Vec<Option<Vec<f64>>>,
    peaks: Vec<usize>,
}

/// Statistics of the base station's stream reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaseStationStats {
    /// Complete windows delivered to the apps.
    pub windows_emitted: u64,
    /// Windows discarded due to missing chunks.
    pub windows_dropped: u64,
    /// Packets accepted into windows.
    pub packets_received: u64,
    /// Windows rejected by the quality gate.
    pub windows_rejected: u64,
}

/// What happened to one detection window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOutcome {
    /// The window reached the apps; `alerted` records whether the
    /// detector raised an alert on it.
    Emitted {
        /// Whether the detector alerted.
        alerted: bool,
    },
    /// The window was dropped (missing chunks).
    Dropped,
    /// The window was rejected by the quality gate before reaching the
    /// detector (excess noise / clipping).
    Rejected,
}

/// The base station device.
pub struct BaseStation {
    os: AmuletOs,
    config: SiftConfig,
    chunk_len: usize,
    chunks_per_window: usize,
    ecg: BTreeMap<usize, PartialWindow>,
    abp: BTreeMap<usize, PartialWindow>,
    emitted_through: usize,
    stats: BaseStationStats,
    window_log: Vec<(usize, WindowOutcome)>,
    quality_gate: Option<QualityConfig>,
}

impl std::fmt::Debug for BaseStation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseStation")
            .field("stats", &self.stats)
            .field("apps", &self.os.app_names())
            .finish()
    }
}

impl BaseStation {
    /// Boot a base station running `detector` (and a heart-rate app) for
    /// packets of `chunk_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] if the chunk does not
    /// evenly divide the detection window, and propagates firmware
    /// static-check failures.
    pub fn new(detector: SiftApp, config: SiftConfig, chunk_s: f64) -> Result<Self, WiotError> {
        let window_samples = config.window_samples();
        let chunk_len = (chunk_s * config.fs).round() as usize;
        if chunk_len == 0 || !window_samples.is_multiple_of(chunk_len) {
            return Err(WiotError::InvalidScenario {
                reason: "chunk length must evenly divide the detection window",
            });
        }
        let mut os = AmuletOs::new();
        let hr = HeartRateApp::with_sample_rate(config.fs);
        let image = FirmwareImage::build(
            vec![detector.resource_spec(), hr.resource_spec()],
            &ResourceProfiler::default(),
        )
        .map_err(WiotError::from)?;
        os.install(&image, vec![Box::new(detector), Box::new(hr)])?;
        Ok(Self {
            os,
            chunks_per_window: window_samples / chunk_len,
            chunk_len,
            config,
            ecg: BTreeMap::new(),
            abp: BTreeMap::new(),
            emitted_through: 0,
            stats: BaseStationStats::default(),
            window_log: Vec::new(),
            quality_gate: None,
        })
    }

    /// Enable the signal-quality gate: windows whose channels fail the
    /// assessment are rejected before spending detector cycles.
    ///
    /// The gate intentionally does **not** screen out flat-lined
    /// channels — a frozen sensor must reach the detector so it can
    /// raise a security alert rather than being silently discarded; the
    /// provided configuration should therefore keep
    /// [`QualityConfig::max_flat_run_frac`] at `1.0`.
    pub fn with_quality_gate(mut self, config: QualityConfig) -> Self {
        self.quality_gate = Some(config);
        self
    }

    /// Accept one delivered packet and dispatch any completed windows.
    ///
    /// # Errors
    ///
    /// Propagates platform errors (e.g. battery exhaustion).
    pub fn receive(&mut self, delivery: Delivery) -> Result<(), WiotError> {
        let packet = delivery.packet;
        if packet.samples.len() != self.chunk_len {
            return Err(WiotError::InvalidScenario {
                reason: "packet length does not match configured chunk size",
            });
        }
        self.stats.packets_received += 1;
        let window_samples = self.config.window_samples();
        let window_idx = packet.start_sample / window_samples;
        let chunk_idx = (packet.start_sample % window_samples) / self.chunk_len;
        let chunks_per_window = self.chunks_per_window;
        let map = match packet.stream {
            Stream::Ecg => &mut self.ecg,
            Stream::Abp => &mut self.abp,
        };
        let w = map.entry(window_idx).or_insert_with(|| PartialWindow {
            chunks: vec![None; chunks_per_window],
            peaks: Vec::new(),
        });
        let offset = chunk_idx * self.chunk_len;
        for &rel in &packet.peaks {
            w.peaks.push(offset + rel);
        }
        w.chunks[chunk_idx] = Some(packet.samples);
        self.try_emit()?;
        Ok(())
    }

    /// Whether window `idx` has every chunk of both channels.
    fn window_complete(&self, idx: usize) -> bool {
        self.ecg.get(&idx).is_some_and(complete) && self.abp.get(&idx).is_some_and(complete)
    }

    /// Assemble, gate, and dispatch the complete window `idx`, recording
    /// its outcome and advancing the emission cursor.
    fn emit_window(&mut self, idx: usize) -> Result<(), WiotError> {
        let e = self.ecg.remove(&idx).expect("caller verified completeness");
        let a = self.abp.remove(&idx).expect("caller verified completeness");
        let snippet = assemble(e, a)?;
        if let Some(gate) = &self.quality_gate {
            let fs = self.config.fs;
            let noisy = |samples: &[f64], peaks: &[usize]| {
                assess(samples, peaks, fs, gate)
                    .map(|q| !q.is_usable())
                    .unwrap_or(false)
            };
            if noisy(&snippet.ecg, &snippet.r_peaks) || noisy(&snippet.abp, &snippet.sys_peaks) {
                self.window_log.push((idx, WindowOutcome::Rejected));
                self.stats.windows_rejected += 1;
                self.emitted_through = self.emitted_through.max(idx + 1);
                return Ok(());
            }
        }
        let alerts_before = self.os.alerts().len();
        self.os.post(AmuletEvent::SnippetReady(snippet));
        self.os.run_until_idle()?;
        let alerted = self.os.alerts().len() > alerts_before;
        self.window_log.push((idx, WindowOutcome::Emitted { alerted }));
        self.stats.windows_emitted += 1;
        self.emitted_through = self.emitted_through.max(idx + 1);
        Ok(())
    }

    /// Emit every window (in order) whose both channels are complete;
    /// windows older than a completed one that are still incomplete are
    /// dropped.
    fn try_emit(&mut self) -> Result<(), WiotError> {
        loop {
            let idx = self.emitted_through;
            if self.window_complete(idx) {
                self.emit_window(idx)?;
                continue;
            }
            // If any later window completed while this one is missing
            // chunks whose packets can no longer arrive (we assume
            // bounded reordering of one window), drop the stale one.
            let newer_complete = self
                .ecg
                .range(idx + 2..)
                .any(|(_, w)| complete(w))
                || self.abp.range(idx + 2..).any(|(_, w)| complete(w));
            if newer_complete {
                self.ecg.remove(&idx);
                self.abp.remove(&idx);
                self.window_log.push((idx, WindowOutcome::Dropped));
                self.stats.windows_dropped += 1;
                self.emitted_through += 1;
                continue;
            }
            return Ok(());
        }
    }

    /// Advance the device clock (charging sleep current).
    pub fn advance_time(&mut self, ms: u64) {
        self.os.advance_time(ms);
    }

    /// End of session: dispatch any still-pending windows that are in
    /// fact complete (they may have been blocked behind a lost one),
    /// then drop the rest — their missing chunks can no longer arrive.
    ///
    /// # Errors
    ///
    /// Propagates platform errors from dispatching the complete windows.
    pub fn flush(&mut self) -> Result<(), WiotError> {
        let mut pending: Vec<usize> = self.ecg.keys().chain(self.abp.keys()).copied().collect();
        pending.sort_unstable();
        pending.dedup();
        for idx in pending {
            if self.window_complete(idx) {
                self.emit_window(idx)?;
            } else {
                self.ecg.remove(&idx);
                self.abp.remove(&idx);
                self.window_log.push((idx, WindowOutcome::Dropped));
                self.stats.windows_dropped += 1;
                self.emitted_through = self.emitted_through.max(idx + 1);
            }
        }
        Ok(())
    }

    /// Alerts raised by the installed apps so far.
    pub fn alerts(&self) -> &[Alert] {
        self.os.alerts()
    }

    /// Reassembly statistics.
    pub fn stats(&self) -> BaseStationStats {
        self.stats
    }

    /// Per-window outcomes `(window index, outcome)`, in window order —
    /// the ground truth-free record the scenario runner scores against.
    pub fn window_log(&self) -> &[(usize, WindowOutcome)] {
        &self.window_log
    }

    /// The underlying OS (for inspection: display, meter, memory).
    pub fn os(&self) -> &AmuletOs {
        &self.os
    }

    /// The underlying OS, mutably (used by the adaptive engine to swap
    /// detector apps).
    pub fn os_mut(&mut self) -> &mut AmuletOs {
        &mut self.os
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SiftConfig {
        &self.config
    }
}

fn complete(w: &PartialWindow) -> bool {
    w.chunks.iter().all(Option::is_some)
}

fn assemble(ecg: PartialWindow, abp: PartialWindow) -> Result<Snippet, WiotError> {
    let mut e = Vec::new();
    for c in ecg.chunks {
        e.extend(c.expect("window verified complete"));
    }
    let mut a = Vec::new();
    for c in abp.chunks {
        a.extend(c.expect("window verified complete"));
    }
    let mut r_peaks = ecg.peaks;
    r_peaks.sort_unstable();
    r_peaks.dedup();
    let mut sys_peaks = abp.peaks;
    sys_peaks.sort_unstable();
    sys_peaks.dedup();
    Snippet::new(e, a, r_peaks, sys_peaks).map_err(WiotError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::device::SensorDevice;
    use physio_sim::record::Record;
    use physio_sim::subject::bank;
    use sift::features::Version;
    use sift::trainer::train_for_subject;

    fn quick_config() -> SiftConfig {
        SiftConfig {
            train_s: 60.0,
            max_positive_per_donor: Some(15),
            ..SiftConfig::default()
        }
    }

    fn station() -> BaseStation {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Simplified, &cfg, 7).unwrap();
        let app = SiftApp::new(Version::Simplified, model.embedded().clone(), cfg.clone()).unwrap();
        BaseStation::new(app, cfg, 0.5).unwrap()
    }

    fn stream_record(bs: &mut BaseStation, record: &Record, channel: &mut Channel) {
        let mut ecg = SensorDevice::ecg(record, 0.5);
        let mut abp = SensorDevice::abp(record, 0.5);
        let mut now = 0u64;
        loop {
            let (pe, pa) = (ecg.poll(), abp.poll());
            if pe.is_none() && pa.is_none() {
                break;
            }
            for p in [pe, pa].into_iter().flatten() {
                if let Some(d) = channel.transmit(now, p) {
                    bs.receive(d).unwrap();
                }
            }
            now += 500;
            bs.advance_time(500);
        }
    }

    #[test]
    fn perfect_channel_emits_every_window() {
        let mut bs = station();
        let r = Record::synthesize(&bank()[0], 30.0, 99);
        stream_record(&mut bs, &r, &mut Channel::perfect());
        assert_eq!(bs.stats().windows_emitted, 10);
        assert_eq!(bs.stats().windows_dropped, 0);
        // Genuine data: few alerts.
        assert!(bs.alerts().len() <= 2, "{} alerts", bs.alerts().len());
    }

    #[test]
    fn lossy_channel_drops_windows_not_correctness() {
        let mut bs = station();
        let r = Record::synthesize(&bank()[0], 60.0, 99);
        let mut ch = Channel::new(0.1, 0, 0, 5);
        stream_record(&mut bs, &r, &mut ch);
        let s = bs.stats();
        assert!(s.windows_dropped > 0, "{s:?}");
        assert!(s.windows_emitted > 0, "{s:?}");
        assert!(s.windows_emitted + s.windows_dropped <= 20);
    }

    #[test]
    fn misaligned_chunk_rejected() {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Reduced, &cfg, 7).unwrap();
        let app = SiftApp::new(Version::Reduced, model.embedded().clone(), cfg.clone()).unwrap();
        // 0.7 s chunks do not divide a 3 s window.
        assert!(matches!(
            BaseStation::new(app, cfg, 0.7),
            Err(WiotError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn heart_rate_app_sees_the_same_windows() {
        let mut bs = station();
        let r = Record::synthesize(&bank()[0], 15.0, 3);
        stream_record(&mut bs, &r, &mut Channel::perfect());
        let hr_lines = bs
            .os()
            .display()
            .lines()
            .iter()
            .filter(|l| l.app == "heartrate")
            .count();
        assert_eq!(hr_lines, 5);
    }
}

#[cfg(test)]
mod quality_gate_tests {
    use super::*;
    use crate::channel::Channel;
    use crate::device::SensorDevice;
    use physio_sim::record::Record;
    use physio_sim::subject::bank;
    use sift::features::Version;
    use sift::trainer::train_for_subject;

    fn quick_config() -> SiftConfig {
        SiftConfig {
            train_s: 60.0,
            max_positive_per_donor: Some(15),
            ..SiftConfig::default()
        }
    }

    /// A gate config that screens noise but deliberately ignores
    /// flat-lining (frozen sensors must reach the detector).
    fn noise_only_gate() -> QualityConfig {
        QualityConfig {
            max_flat_run_frac: 1.0,
            max_clip_frac: 1.0,
            hr_band_bpm: (0.0, 10_000.0),
            noise_weight: 1.0,
        }
    }

    fn gated_station() -> BaseStation {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Simplified, &cfg, 7).unwrap();
        let app =
            SiftApp::new(Version::Simplified, model.embedded().clone(), cfg.clone()).unwrap();
        BaseStation::new(app, cfg, 0.5)
            .unwrap()
            .with_quality_gate(noise_only_gate())
    }

    fn stream(bs: &mut BaseStation, record: &Record) {
        let mut ecg = SensorDevice::ecg(record, 0.5);
        let mut abp = SensorDevice::abp(record, 0.5);
        let mut ch = Channel::perfect();
        let mut now = 0u64;
        loop {
            let (pe, pa) = (ecg.poll(), abp.poll());
            if pe.is_none() && pa.is_none() {
                break;
            }
            for p in [pe, pa].into_iter().flatten() {
                if let Some(d) = ch.transmit(now, p) {
                    bs.receive(d).unwrap();
                }
            }
            now += 500;
        }
    }

    #[test]
    fn clean_windows_pass_the_gate() {
        let mut bs = gated_station();
        let r = Record::synthesize(&bank()[0], 15.0, 42);
        stream(&mut bs, &r);
        assert_eq!(bs.stats().windows_rejected, 0);
        assert_eq!(bs.stats().windows_emitted, 5);
    }

    #[test]
    fn heavy_broadband_noise_is_rejected_before_the_detector() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut bs = gated_station();
        let mut r = Record::synthesize(&bank()[0], 15.0, 42);
        let mut rng = StdRng::seed_from_u64(9);
        for s in r.ecg.iter_mut() {
            *s += rng.gen_range(-2.0..2.0);
        }
        stream(&mut bs, &r);
        let stats = bs.stats();
        assert!(
            stats.windows_rejected >= 4,
            "expected rejects, got {stats:?}"
        );
    }

    #[test]
    fn frozen_channel_still_reaches_the_detector_and_alerts() {
        let mut bs = gated_station();
        let mut r = Record::synthesize(&bank()[0], 15.0, 42);
        // Flat-line the entire ECG: a physical-compromise freeze.
        for s in r.ecg.iter_mut() {
            *s = 0.42;
        }
        r.r_peaks.clear();
        stream(&mut bs, &r);
        let stats = bs.stats();
        assert_eq!(stats.windows_rejected, 0, "gate must not eat freezes");
        assert!(
            bs.alerts().len() >= 4,
            "detector should alert on frozen windows: {stats:?}"
        );
    }
}
