//! The base station: an Amulet reassembling sensor streams into
//! detection windows and running the SIFT app on them.
//!
//! Incoming ECG/ABP packets are slotted into `w`-second windows; once a
//! window has every chunk of both channels, it is posted to the OS as a
//! `SnippetReady` event for the detector (and any other installed app).
//! Windows with missing chunks — lost packets — are dropped and counted
//! by default: a real device cannot fabricate samples. With
//! [`BaseStation::with_salvage`], *nearly* complete windows (at most a
//! configured number of missing chunks) are repaired by zero-order-hold
//! filling and still dispatched, flagged as salvaged rather than
//! silently dropped. A per-stream watchdog
//! ([`BaseStation::with_watchdog`]) notices streams that stop arriving
//! entirely and raises a distinct stream-stalled alert through the
//! Amulet event system.

use crate::channel::Delivery;
use crate::device::Stream;
use crate::WiotError;
use amulet_sim::apps::{HeartRateApp, SiftApp, WatchdogApp};
use amulet_sim::event::AmuletEvent;
use amulet_sim::machine::{Alert, App};
use amulet_sim::os::AmuletOs;
use amulet_sim::profiler::ResourceProfiler;
use amulet_sim::toolchain::FirmwareImage;
use physio_sim::quality::{assess, QualityConfig};
use sift::config::SiftConfig;
use sift::features::Version;
use sift::flavor::extract_amulet_f32;
use sift::snippet::Snippet;
use std::collections::{BTreeMap, VecDeque};

/// Default cap on the per-window outcome log: generous for any test or
/// scoring run, flat for week-long soaks.
const DEFAULT_WINDOW_LOG_CAP: usize = 16_384;

/// Window-assembly state for one channel.
#[derive(Debug, Clone)]
struct PartialWindow {
    chunks: Vec<Option<Vec<f64>>>,
    peaks: Vec<usize>,
}

/// Statistics of the base station's stream reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaseStationStats {
    /// Complete windows delivered to the apps.
    pub windows_emitted: u64,
    /// Windows discarded due to missing chunks.
    pub windows_dropped: u64,
    /// Packets accepted into windows.
    pub packets_received: u64,
    /// Windows rejected by the quality gate.
    pub windows_rejected: u64,
    /// Nearly complete windows repaired by zero-order-hold filling and
    /// still dispatched (see [`BaseStation::with_salvage`]).
    pub windows_salvaged: u64,
    /// Brownout reboots performed ([`BaseStation::reboot`]).
    pub reboots: u64,
    /// Old window-log entries evicted by the log cap.
    pub log_evicted: u64,
}

/// What happened to one detection window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOutcome {
    /// The window reached the apps; `alerted` records whether the
    /// detector raised an alert on it.
    Emitted {
        /// Whether the detector alerted.
        alerted: bool,
    },
    /// The window was dropped (missing chunks).
    Dropped,
    /// The window was rejected by the quality gate before reaching the
    /// detector (excess noise / clipping).
    Rejected,
    /// The window was missing chunks but was repaired by zero-order-hold
    /// filling and dispatched anyway — degraded, not dropped.
    Salvaged {
        /// Whether the detector alerted on the repaired window.
        alerted: bool,
    },
}

/// Per-stream watchdog configuration.
#[derive(Debug, Clone, Copy)]
struct Watchdog {
    timeout_ms: u64,
    strict: bool,
}

/// The base station device.
pub struct BaseStation {
    os: AmuletOs,
    config: SiftConfig,
    chunk_len: usize,
    chunks_per_window: usize,
    ecg: BTreeMap<usize, PartialWindow>,
    abp: BTreeMap<usize, PartialWindow>,
    emitted_through: usize,
    stats: BaseStationStats,
    window_log: VecDeque<(usize, WindowOutcome)>,
    window_log_cap: usize,
    quality_gate: Option<QualityConfig>,
    /// Maximum missing chunks (across both channels) a window may have
    /// and still be repaired; `None` disables salvage.
    salvage_max_missing: Option<usize>,
    watchdog: Option<Watchdog>,
    /// When set, every window that reaches the apps also has its
    /// feature vector extracted and queued for the sink uplink
    /// ([`BaseStation::with_feature_uplink`]).
    feature_uplink: Option<Version>,
    /// Queued `(window index, features)` pairs awaiting
    /// [`BaseStation::take_uplinked_features`].
    uplinked: Vec<(usize, Vec<f32>)>,
    /// Version of the currently installed detector app (tracked across
    /// [`BaseStation::swap_detector`] reflashes). Uplink-extracted
    /// features are only shared with the detector when this matches the
    /// uplink version — a reflashed detector must extract its own.
    detector_version: Version,
    /// Last arrival time per stream `[ecg, abp]`, ms; session start
    /// counts as an implicit arrival so a never-seen stream still trips
    /// the watchdog.
    last_arrival_ms: [u64; 2],
    /// Whether each stream is currently flagged stalled (cleared by the
    /// next arrival, so a recovery → second stall re-alerts).
    stalled: [bool; 2],
}

fn stream_slot(stream: Stream) -> usize {
    match stream {
        Stream::Ecg => 0,
        Stream::Abp => 1,
    }
}

impl std::fmt::Debug for BaseStation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseStation")
            .field("stats", &self.stats)
            .field("apps", &self.os.app_names())
            .finish()
    }
}

impl BaseStation {
    /// Boot a base station running `detector` (and a heart-rate app) for
    /// packets of `chunk_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] if the chunk does not
    /// evenly divide the detection window, and propagates firmware
    /// static-check failures.
    pub fn new(detector: SiftApp, config: SiftConfig, chunk_s: f64) -> Result<Self, WiotError> {
        let window_samples = config.window_samples();
        let chunk_len = (chunk_s * config.fs).round() as usize;
        if chunk_len == 0 || !window_samples.is_multiple_of(chunk_len) {
            return Err(WiotError::InvalidScenario {
                reason: "chunk length must evenly divide the detection window",
            });
        }
        let mut os = AmuletOs::new();
        let hr = HeartRateApp::with_sample_rate(config.fs);
        let detector_version = detector.version();
        let image = FirmwareImage::build(
            vec![detector.resource_spec(), hr.resource_spec()],
            &ResourceProfiler::default(),
        )
        .map_err(WiotError::from)?;
        os.install(&image, vec![Box::new(detector), Box::new(hr)])?;
        Ok(Self {
            os,
            chunks_per_window: window_samples / chunk_len,
            chunk_len,
            config,
            ecg: BTreeMap::new(),
            abp: BTreeMap::new(),
            emitted_through: 0,
            stats: BaseStationStats::default(),
            window_log: VecDeque::new(),
            window_log_cap: DEFAULT_WINDOW_LOG_CAP,
            quality_gate: None,
            salvage_max_missing: None,
            watchdog: None,
            feature_uplink: None,
            uplinked: Vec::new(),
            detector_version,
            last_arrival_ms: [0; 2],
            stalled: [false; 2],
        })
    }

    /// Enable the feature uplink: every window that passes the quality
    /// gate and reaches the apps also has its `version` feature vector
    /// extracted and queued (a handful of floats per 3-second window,
    /// far cheaper to ship than raw samples). The fleet engine drains
    /// the queue with [`BaseStation::take_uplinked_features`] and
    /// re-scores whole batches at the sink with one batched SVM call —
    /// on-device detection is unchanged.
    pub fn with_feature_uplink(mut self, version: Version) -> Self {
        self.feature_uplink = Some(version);
        self
    }

    /// Enable partial-window salvage: a window missing at most
    /// `max_missing` chunks (counted across both channels) is repaired
    /// by zero-order-hold filling and dispatched flagged as
    /// [`WindowOutcome::Salvaged`] instead of being dropped. The paper's
    /// detector features are robust to a short held segment; losing the
    /// whole window to one lost packet is the worse failure.
    pub fn with_salvage(mut self, max_missing: usize) -> Self {
        self.salvage_max_missing = Some(max_missing);
        self
    }

    /// Cap the per-window outcome log at `cap` entries (oldest evicted,
    /// counted in [`BaseStationStats::log_evicted`]) so multi-hour soaks
    /// run in flat memory.
    pub fn with_window_log_cap(mut self, cap: usize) -> Self {
        self.window_log_cap = cap.max(1);
        self
    }

    /// Install the stream-liveness watchdog: [`poll_watchdog`] raises a
    /// stream-stalled alert (via the [`WatchdogApp`]) for any stream
    /// silent longer than `timeout_ms`. With `strict`, a stall is also a
    /// hard [`WiotError::StreamStalled`].
    ///
    /// [`poll_watchdog`]: BaseStation::poll_watchdog
    ///
    /// # Errors
    ///
    /// Propagates firmware static-check failures from installing the
    /// watchdog app.
    pub fn with_watchdog(mut self, timeout_ms: u64, strict: bool) -> Result<Self, WiotError> {
        let app = WatchdogApp::new();
        let image = FirmwareImage::build(vec![app.resource_spec()], &ResourceProfiler::default())
            .map_err(WiotError::from)?;
        self.os.install_addon(&image, vec![Box::new(app)])?;
        self.watchdog = Some(Watchdog { timeout_ms, strict });
        Ok(self)
    }

    /// Enable the signal-quality gate: windows whose channels fail the
    /// assessment are rejected before spending detector cycles.
    ///
    /// The gate intentionally does **not** screen out flat-lined
    /// channels — a frozen sensor must reach the detector so it can
    /// raise a security alert rather than being silently discarded; the
    /// provided configuration should therefore keep
    /// [`QualityConfig::max_flat_run_frac`] at `1.0`.
    pub fn with_quality_gate(mut self, config: QualityConfig) -> Self {
        self.quality_gate = Some(config);
        self
    }

    /// Accept one delivered packet and dispatch any completed windows.
    ///
    /// # Errors
    ///
    /// Propagates platform errors (e.g. battery exhaustion).
    pub fn receive(&mut self, delivery: Delivery) -> Result<(), WiotError> {
        let packet = delivery.packet;
        if packet.samples.len() != self.chunk_len {
            return Err(WiotError::InvalidScenario {
                reason: "packet length does not match configured chunk size",
            });
        }
        self.stats.packets_received += 1;
        let slot = stream_slot(packet.stream);
        // Only a chunk carrying signal feeds the watchdog: a stuck
        // sensor keeps transmitting a flat, peak-less payload, and that
        // must read as a stalled stream, not a live one.
        if !packet.peaks.is_empty() || !is_flat(&packet.samples) {
            self.last_arrival_ms[slot] = self.last_arrival_ms[slot].max(delivery.at_ms);
            self.stalled[slot] = false;
        }
        let window_samples = self.config.window_samples();
        let window_idx = packet.start_sample / window_samples;
        let chunk_idx = (packet.start_sample % window_samples) / self.chunk_len;
        let chunks_per_window = self.chunks_per_window;
        let map = match packet.stream {
            Stream::Ecg => &mut self.ecg,
            Stream::Abp => &mut self.abp,
        };
        let w = map.entry(window_idx).or_insert_with(|| PartialWindow {
            chunks: vec![None; chunks_per_window],
            peaks: Vec::new(),
        });
        let offset = chunk_idx * self.chunk_len;
        for &rel in &packet.peaks {
            w.peaks.push(offset + rel);
        }
        w.chunks[chunk_idx] = Some(packet.samples);
        self.try_emit()?;
        Ok(())
    }

    /// Whether window `idx` has every chunk of both channels.
    fn window_complete(&self, idx: usize) -> bool {
        self.ecg.get(&idx).is_some_and(complete) && self.abp.get(&idx).is_some_and(complete)
    }

    /// Append to the window log, evicting the oldest entry past the cap.
    fn log_window(&mut self, idx: usize, outcome: WindowOutcome) {
        if self.window_log.len() >= self.window_log_cap {
            self.window_log.pop_front();
            self.stats.log_evicted += 1;
        }
        self.window_log.push_back((idx, outcome));
    }

    /// Assemble, gate, and dispatch the complete window `idx`, recording
    /// its outcome and advancing the emission cursor. Callers check
    /// [`Self::window_complete`] first; a half-present window is left
    /// untouched rather than torn down.
    fn emit_window(&mut self, idx: usize) -> Result<(), WiotError> {
        let Some(e) = self.ecg.remove(&idx) else {
            return Ok(());
        };
        let Some(a) = self.abp.remove(&idx) else {
            self.ecg.insert(idx, e);
            return Ok(());
        };
        self.dispatch_window(idx, e, a, false)
    }

    /// Dispatch an assembled (complete or repaired) window through the
    /// quality gate and the apps.
    fn dispatch_window(
        &mut self,
        idx: usize,
        ecg: PartialWindow,
        abp: PartialWindow,
        salvaged: bool,
    ) -> Result<(), WiotError> {
        let snippet = assemble(ecg, abp)?;
        if let Some(gate) = &self.quality_gate {
            let fs = self.config.fs;
            let noisy = |samples: &[f64], peaks: &[usize]| {
                assess(samples, peaks, fs, gate)
                    .map(|q| !q.is_usable())
                    .unwrap_or(false)
            };
            if noisy(&snippet.ecg, &snippet.r_peaks) || noisy(&snippet.abp, &snippet.sys_peaks) {
                self.log_window(idx, WindowOutcome::Rejected);
                self.stats.windows_rejected += 1;
                self.emitted_through = self.emitted_through.max(idx + 1);
                return Ok(());
            }
        }
        let mut shared_features = None;
        if let Some(version) = self.feature_uplink {
            // Windows the extractor cannot featurise (e.g. too few
            // peaks) are skipped, mirroring the detector's own bail-out.
            if let Ok(features) = extract_amulet_f32(version, &snippet, &self.config) {
                // When the uplink extracts the exact vector the installed
                // detector would compute (same version, same config, same
                // window), hand it along so the device skips the second
                // extraction. After a cross-version reflash the detector
                // must extract its own features again.
                if version == self.detector_version {
                    shared_features = Some(features.clone());
                }
                self.uplinked.push((idx, features));
            }
        }
        let alerts_before = self.os.alerts().len();
        self.os.post(match shared_features {
            Some(features) => AmuletEvent::SnippetScored(snippet, features),
            None => AmuletEvent::SnippetReady(snippet),
        });
        self.os.run_until_idle()?;
        let alerted = self.os.alerts().len() > alerts_before;
        if salvaged {
            self.log_window(idx, WindowOutcome::Salvaged { alerted });
            self.stats.windows_salvaged += 1;
        } else {
            self.log_window(idx, WindowOutcome::Emitted { alerted });
            self.stats.windows_emitted += 1;
        }
        self.emitted_through = self.emitted_through.max(idx + 1);
        Ok(())
    }

    /// Missing chunks of window `idx` on one channel map (an absent
    /// entry means every chunk is missing).
    fn missing_chunks(
        map: &BTreeMap<usize, PartialWindow>,
        idx: usize,
        per_window: usize,
    ) -> usize {
        map.get(&idx)
            .map(|w| w.chunks.iter().filter(|c| c.is_none()).count())
            .unwrap_or(per_window)
    }

    /// Resolve an incomplete window whose missing chunks can no longer
    /// arrive: salvage it when enabled and close enough to complete,
    /// otherwise drop it.
    fn resolve_incomplete(&mut self, idx: usize) -> Result<(), WiotError> {
        let per_window = self.chunks_per_window;
        let missing = Self::missing_chunks(&self.ecg, idx, per_window)
            + Self::missing_chunks(&self.abp, idx, per_window);
        if let Some(max_missing) = self.salvage_max_missing {
            if missing <= max_missing {
                let chunk_len = self.chunk_len;
                let mut e = self.ecg.remove(&idx).unwrap_or_else(|| PartialWindow {
                    chunks: vec![None; per_window],
                    peaks: Vec::new(),
                });
                let mut a = self.abp.remove(&idx).unwrap_or_else(|| PartialWindow {
                    chunks: vec![None; per_window],
                    peaks: Vec::new(),
                });
                fill_missing(&mut e, chunk_len);
                fill_missing(&mut a, chunk_len);
                return self.dispatch_window(idx, e, a, true);
            }
        }
        self.ecg.remove(&idx);
        self.abp.remove(&idx);
        self.log_window(idx, WindowOutcome::Dropped);
        self.stats.windows_dropped += 1;
        self.emitted_through = self.emitted_through.max(idx + 1);
        Ok(())
    }

    /// Emit every window (in order) whose both channels are complete;
    /// windows older than a completed one that are still incomplete are
    /// dropped.
    fn try_emit(&mut self) -> Result<(), WiotError> {
        loop {
            let idx = self.emitted_through;
            if self.window_complete(idx) {
                self.emit_window(idx)?;
                continue;
            }
            // If any later window completed while this one is missing
            // chunks whose packets can no longer arrive (we assume
            // bounded reordering of one window), drop the stale one.
            let newer_complete = self.ecg.range(idx + 2..).any(|(_, w)| complete(w))
                || self.abp.range(idx + 2..).any(|(_, w)| complete(w));
            if newer_complete {
                self.resolve_incomplete(idx)?;
                continue;
            }
            return Ok(());
        }
    }

    /// Advance the device clock (charging sleep current).
    pub fn advance_time(&mut self, ms: u64) {
        self.os.advance_time(ms);
    }

    /// End of session: dispatch any still-pending windows that are in
    /// fact complete (they may have been blocked behind a lost one),
    /// then drop the rest — their missing chunks can no longer arrive.
    ///
    /// # Errors
    ///
    /// Propagates platform errors from dispatching the complete windows.
    pub fn flush(&mut self) -> Result<(), WiotError> {
        let mut pending: Vec<usize> = self.ecg.keys().chain(self.abp.keys()).copied().collect();
        pending.sort_unstable();
        pending.dedup();
        for idx in pending {
            if self.window_complete(idx) {
                self.emit_window(idx)?;
            } else {
                self.resolve_incomplete(idx)?;
            }
        }
        Ok(())
    }

    /// A brownout reboot: all in-flight window-assembly state is lost
    /// (partially received windows will later resolve as dropped or
    /// salvaged-from-nothing is impossible, so effectively dropped);
    /// installed apps, the alert log, and the clock persist, as they
    /// live in FRAM on the real device.
    pub fn reboot(&mut self) {
        self.ecg.clear();
        self.abp.clear();
        self.stats.reboots += 1;
    }

    /// Swap the installed detector instance for `app` — the recovery
    /// path after a brownout reboot, rebuilding the detector from the
    /// FRAM checkpoint. The firmware image stays installed; only the
    /// running instance is replaced, so neither the memory map nor the
    /// energy meter moves.
    ///
    /// # Errors
    ///
    /// Propagates [`amulet_sim::AmuletError::UnknownApp`] when no app
    /// of that name is installed (e.g. a checkpoint for a different
    /// detector flavor).
    pub fn restore_detector(&mut self, app: SiftApp) -> Result<(), WiotError> {
        let name = app.name().to_string();
        self.os
            .replace_app(&name, Box::new(app))
            .map_err(WiotError::from)
    }

    /// Hot-swap the detector for a *different* build — the survival
    /// policy's version actuator. Detector apps are named after their
    /// version, so [`BaseStation::restore_detector`] cannot cross
    /// versions; instead the whole firmware image is rebuilt (new
    /// detector, heart-rate app, and the watchdog app when installed)
    /// and [`amulet_sim::os::AmuletOs::reflash`]ed, which is exactly
    /// how a version change deploys on the real Amulet. The clock,
    /// energy meter, and alert log persist across the reflash; the
    /// event queue is cleared (it is idle between scenario ticks) and
    /// **any reserved FRAM checkpoint region is released** — callers
    /// that checkpoint must re-reserve it afterwards.
    ///
    /// # Errors
    ///
    /// Propagates firmware static-check or flash failures from the
    /// rebuilt image.
    pub fn swap_detector(&mut self, app: SiftApp) -> Result<(), WiotError> {
        self.detector_version = app.version();
        let hr = HeartRateApp::with_sample_rate(self.config.fs);
        let mut specs = vec![app.resource_spec(), hr.resource_spec()];
        let mut apps: Vec<Box<dyn App>> = vec![Box::new(app), Box::new(hr)];
        if self.watchdog.is_some() {
            let wd = WatchdogApp::new();
            specs.push(wd.resource_spec());
            apps.push(Box::new(wd));
        }
        let image = FirmwareImage::build(specs, &ResourceProfiler::default())
            .map_err(WiotError::from)?;
        self.os.reflash(&image, apps).map_err(WiotError::from)
    }

    /// Check stream liveness at `now_ms`: every watched stream silent
    /// for longer than the watchdog timeout is flagged, a
    /// `StreamStalled` event is posted through the OS (the watchdog app
    /// turns it into a distinct alert), and the newly stalled streams
    /// are returned. Without [`BaseStation::with_watchdog`] this is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// With a strict watchdog, returns [`WiotError::StreamStalled`] for
    /// the first newly stalled stream; also propagates platform errors
    /// from dispatching the event.
    pub fn poll_watchdog(&mut self, now_ms: u64) -> Result<Vec<Stream>, WiotError> {
        let Some(wd) = self.watchdog else {
            return Ok(Vec::new());
        };
        let mut newly_stalled = Vec::new();
        for stream in [Stream::Ecg, Stream::Abp] {
            let slot = stream_slot(stream);
            let silent_ms = now_ms.saturating_sub(self.last_arrival_ms[slot]);
            if silent_ms >= wd.timeout_ms && !self.stalled[slot] {
                self.stalled[slot] = true;
                self.os.post(AmuletEvent::StreamStalled {
                    stream: stream.to_string(),
                    silent_ms,
                });
                self.os.run_until_idle()?;
                newly_stalled.push(stream);
                if wd.strict {
                    return Err(WiotError::StreamStalled { stream, silent_ms });
                }
            }
        }
        Ok(newly_stalled)
    }

    /// Alerts raised by the installed apps so far.
    pub fn alerts(&self) -> &[Alert] {
        self.os.alerts()
    }

    /// Reassembly statistics.
    pub fn stats(&self) -> BaseStationStats {
        self.stats
    }

    /// Per-window outcomes `(window index, outcome)`, in window order —
    /// the ground truth-free record the scenario runner scores against.
    /// Bounded by [`BaseStation::with_window_log_cap`]; evictions are
    /// counted in [`BaseStationStats::log_evicted`].
    pub fn window_log(&self) -> &VecDeque<(usize, WindowOutcome)> {
        &self.window_log
    }

    /// Drain the feature-uplink queue: `(window index, features)` in
    /// dispatch order. Empty unless [`BaseStation::with_feature_uplink`]
    /// was enabled.
    pub fn take_uplinked_features(&mut self) -> Vec<(usize, Vec<f32>)> {
        std::mem::take(&mut self.uplinked)
    }

    /// The underlying OS (for inspection: display, meter, memory).
    pub fn os(&self) -> &AmuletOs {
        &self.os
    }

    /// The underlying OS, mutably (used by the adaptive engine to swap
    /// detector apps).
    pub fn os_mut(&mut self) -> &mut AmuletOs {
        &mut self.os
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SiftConfig {
        &self.config
    }
}

fn complete(w: &PartialWindow) -> bool {
    w.chunks.iter().all(Option::is_some)
}

/// Whether every sample equals the first — the signature of a frozen
/// ADC (real physiology is never exactly constant over a chunk).
fn is_flat(samples: &[f64]) -> bool {
    samples.windows(2).all(|w| w[0] == w[1])
}

/// Zero-order-hold repair: each missing chunk is filled with the last
/// sample value preceding it (or the first available sample when the
/// window starts with a hole). Returns the number of chunks filled.
fn fill_missing(w: &mut PartialWindow, chunk_len: usize) -> usize {
    let mut hold = w
        .chunks
        .iter()
        .flatten()
        .next()
        .and_then(|c| c.first().copied())
        .unwrap_or(0.0);
    let mut filled = 0;
    for c in w.chunks.iter_mut() {
        match c {
            Some(v) => {
                if let Some(&last) = v.last() {
                    hold = last;
                }
            }
            None => {
                *c = Some(vec![hold; chunk_len]);
                filled += 1;
            }
        }
    }
    filled
}

fn assemble(ecg: PartialWindow, abp: PartialWindow) -> Result<Snippet, WiotError> {
    let mut e = Vec::new();
    for c in ecg.chunks.into_iter().flatten() {
        e.extend(c);
    }
    let mut a = Vec::new();
    for c in abp.chunks.into_iter().flatten() {
        a.extend(c);
    }
    let mut r_peaks = ecg.peaks;
    r_peaks.sort_unstable();
    r_peaks.dedup();
    let mut sys_peaks = abp.peaks;
    sys_peaks.sort_unstable();
    sys_peaks.dedup();
    Snippet::new(e, a, r_peaks, sys_peaks).map_err(WiotError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::device::SensorDevice;
    use physio_sim::record::Record;
    use physio_sim::subject::bank;
    use sift::features::Version;
    use sift::trainer::train_for_subject;

    fn quick_config() -> SiftConfig {
        SiftConfig {
            train_s: 60.0,
            max_positive_per_donor: Some(15),
            ..SiftConfig::default()
        }
    }

    fn station() -> BaseStation {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Simplified, &cfg, 7).unwrap();
        let app = SiftApp::new(Version::Simplified, model.embedded().clone(), cfg.clone()).unwrap();
        BaseStation::new(app, cfg, 0.5).unwrap()
    }

    fn stream_record(bs: &mut BaseStation, record: &Record, channel: &mut Channel) {
        let mut ecg = SensorDevice::ecg(record, 0.5);
        let mut abp = SensorDevice::abp(record, 0.5);
        let mut now = 0u64;
        loop {
            let (pe, pa) = (ecg.poll(), abp.poll());
            if pe.is_none() && pa.is_none() {
                break;
            }
            for p in [pe, pa].into_iter().flatten() {
                for d in channel.transmit(now, p) {
                    bs.receive(d).unwrap();
                }
            }
            now += 500;
            bs.advance_time(500);
        }
    }

    #[test]
    fn perfect_channel_emits_every_window() {
        let mut bs = station();
        let r = Record::synthesize(&bank()[0], 30.0, 99);
        stream_record(&mut bs, &r, &mut Channel::perfect());
        assert_eq!(bs.stats().windows_emitted, 10);
        assert_eq!(bs.stats().windows_dropped, 0);
        // Genuine data: few alerts.
        assert!(bs.alerts().len() <= 2, "{} alerts", bs.alerts().len());
    }

    #[test]
    fn lossy_channel_drops_windows_not_correctness() {
        let mut bs = station();
        let r = Record::synthesize(&bank()[0], 60.0, 99);
        let mut ch = Channel::new(0.1, 0, 0, 5).unwrap();
        stream_record(&mut bs, &r, &mut ch);
        let s = bs.stats();
        assert!(s.windows_dropped > 0, "{s:?}");
        assert!(s.windows_emitted > 0, "{s:?}");
        assert!(s.windows_emitted + s.windows_dropped <= 20);
    }

    #[test]
    fn misaligned_chunk_rejected() {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Reduced, &cfg, 7).unwrap();
        let app = SiftApp::new(Version::Reduced, model.embedded().clone(), cfg.clone()).unwrap();
        // 0.7 s chunks do not divide a 3 s window.
        assert!(matches!(
            BaseStation::new(app, cfg, 0.7),
            Err(WiotError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn salvage_repairs_nearly_complete_windows() {
        // Same lossy run twice: without salvage some windows drop;
        // with salvage (≤ 1 missing chunk) most of those survive.
        let r = Record::synthesize(&bank()[0], 60.0, 99);
        let mut plain = station();
        stream_record(&mut plain, &r, &mut Channel::new(0.04, 0, 0, 5).unwrap());
        let mut salv = station().with_salvage(1);
        stream_record(&mut salv, &r, &mut Channel::new(0.04, 0, 0, 5).unwrap());
        assert!(plain.stats().windows_dropped > 0);
        assert!(salv.stats().windows_salvaged > 0, "{:?}", salv.stats());
        assert!(salv.stats().windows_dropped < plain.stats().windows_dropped);
        assert!(salv
            .window_log()
            .iter()
            .any(|(_, o)| matches!(o, WindowOutcome::Salvaged { .. })));
    }

    #[test]
    fn window_log_cap_bounds_memory() {
        let mut bs = station().with_window_log_cap(3);
        let r = Record::synthesize(&bank()[0], 30.0, 99);
        stream_record(&mut bs, &r, &mut Channel::perfect());
        assert_eq!(bs.window_log().len(), 3);
        assert_eq!(bs.stats().log_evicted, 7);
        // The newest entries survive.
        assert_eq!(bs.window_log().back().map(|&(i, _)| i), Some(9));
    }

    #[test]
    fn watchdog_flags_silent_stream_and_realerts_after_recovery() {
        let mut bs = station().with_watchdog(2_000, false).unwrap();
        // Nothing received: both streams stall after the timeout.
        assert!(bs.poll_watchdog(1_000).unwrap().is_empty());
        let stalled = bs.poll_watchdog(2_500).unwrap();
        assert_eq!(stalled, vec![Stream::Ecg, Stream::Abp]);
        let alerts: Vec<_> = bs.alerts().iter().filter(|a| a.app == "watchdog").collect();
        assert_eq!(alerts.len(), 2);
        assert!(alerts[0].message.contains("stream stalled"));
        // Already flagged: no duplicate alert while still silent.
        assert!(bs.poll_watchdog(3_000).unwrap().is_empty());
        // ECG resumes, then goes silent again: fresh alert.
        let r = Record::synthesize(&bank()[0], 3.0, 1);
        let mut ecg = SensorDevice::ecg(&r, 0.5);
        let p = ecg.poll().unwrap();
        bs.receive(crate::channel::Delivery {
            at_ms: 4_000,
            packet: p,
        })
        .unwrap();
        assert_eq!(bs.poll_watchdog(6_500).unwrap(), vec![Stream::Ecg]);
    }

    #[test]
    fn strict_watchdog_is_a_hard_error() {
        let mut bs = station().with_watchdog(1_000, true).unwrap();
        assert!(matches!(
            bs.poll_watchdog(5_000),
            Err(WiotError::StreamStalled {
                stream: Stream::Ecg,
                silent_ms: 5_000
            })
        ));
    }

    #[test]
    fn reboot_loses_inflight_windows_but_keeps_alert_log() {
        let mut bs = station();
        let r = Record::synthesize(&bank()[0], 30.0, 99);
        let mut ecg = SensorDevice::ecg(&r, 0.5);
        let mut abp = SensorDevice::abp(&r, 0.5);
        // Deliver half a window, then brown out.
        for _ in 0..3 {
            for p in [ecg.poll(), abp.poll()].into_iter().flatten() {
                bs.receive(crate::channel::Delivery {
                    at_ms: 0,
                    packet: p,
                })
                .unwrap();
            }
        }
        bs.reboot();
        assert_eq!(bs.stats().reboots, 1);
        // Stream the rest: window 0 can never complete and is dropped,
        // later windows emit normally.
        let mut ch = Channel::perfect();
        let mut now = 1_500u64;
        loop {
            let (pe, pa) = (ecg.poll(), abp.poll());
            if pe.is_none() && pa.is_none() {
                break;
            }
            for p in [pe, pa].into_iter().flatten() {
                for d in ch.transmit(now, p) {
                    bs.receive(d).unwrap();
                }
            }
            now += 500;
        }
        bs.flush().unwrap();
        let s = bs.stats();
        assert_eq!(s.windows_dropped, 1, "{s:?}");
        assert_eq!(s.windows_emitted, 9, "{s:?}");
    }

    #[test]
    fn restore_detector_swaps_instance_and_rejects_foreign_flavors() {
        let mut bs = station();
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Simplified, &cfg, 8).unwrap();
        let app = SiftApp::new(Version::Simplified, model.embedded().clone(), cfg.clone()).unwrap();
        bs.restore_detector(app).unwrap();
        // The station still detects normally with the swapped instance.
        let r = Record::synthesize(&bank()[0], 15.0, 99);
        stream_record(&mut bs, &r, &mut Channel::perfect());
        assert_eq!(bs.stats().windows_emitted, 5);
        // A different flavor registers under a different app name:
        // there is nothing installed to replace.
        let foreign = train_for_subject(&bank(), 0, Version::Reduced, &cfg, 8).unwrap();
        let foreign = SiftApp::new(Version::Reduced, foreign.embedded().clone(), cfg).unwrap();
        assert!(matches!(
            bs.restore_detector(foreign),
            Err(WiotError::Amulet(_))
        ));
    }

    #[test]
    fn feature_uplink_queues_one_vector_per_dispatched_window() {
        let mut bs = station().with_feature_uplink(Version::Simplified);
        let r = Record::synthesize(&bank()[0], 30.0, 99);
        stream_record(&mut bs, &r, &mut Channel::perfect());
        let uplinked = bs.take_uplinked_features();
        assert_eq!(uplinked.len() as u64, bs.stats().windows_emitted);
        let dim = uplinked[0].1.len();
        assert!(dim > 0);
        for pair in uplinked.windows(2) {
            assert!(pair[0].0 < pair[1].0, "window indices must ascend");
        }
        assert!(uplinked.iter().all(|(_, f)| f.len() == dim));
        // The queue drains: a second take is empty.
        assert!(bs.take_uplinked_features().is_empty());
        // Without the builder, nothing is queued.
        let mut plain = station();
        stream_record(&mut plain, &r, &mut Channel::perfect());
        assert!(plain.take_uplinked_features().is_empty());
    }

    #[test]
    fn heart_rate_app_sees_the_same_windows() {
        let mut bs = station();
        let r = Record::synthesize(&bank()[0], 15.0, 3);
        stream_record(&mut bs, &r, &mut Channel::perfect());
        let hr_lines = bs
            .os()
            .display()
            .lines()
            .iter()
            .filter(|l| l.app == "heartrate")
            .count();
        assert_eq!(hr_lines, 5);
    }
}

#[cfg(test)]
mod quality_gate_tests {
    use super::*;
    use crate::channel::Channel;
    use crate::device::SensorDevice;
    use physio_sim::record::Record;
    use physio_sim::subject::bank;
    use sift::features::Version;
    use sift::trainer::train_for_subject;

    fn quick_config() -> SiftConfig {
        SiftConfig {
            train_s: 60.0,
            max_positive_per_donor: Some(15),
            ..SiftConfig::default()
        }
    }

    /// A gate config that screens noise but deliberately ignores
    /// flat-lining (frozen sensors must reach the detector).
    fn noise_only_gate() -> QualityConfig {
        QualityConfig {
            max_flat_run_frac: 1.0,
            max_clip_frac: 1.0,
            hr_band_bpm: (0.0, 10_000.0),
            noise_weight: 1.0,
        }
    }

    fn gated_station() -> BaseStation {
        let cfg = quick_config();
        let model = train_for_subject(&bank(), 0, Version::Simplified, &cfg, 7).unwrap();
        let app = SiftApp::new(Version::Simplified, model.embedded().clone(), cfg.clone()).unwrap();
        BaseStation::new(app, cfg, 0.5)
            .unwrap()
            .with_quality_gate(noise_only_gate())
    }

    fn stream(bs: &mut BaseStation, record: &Record) {
        let mut ecg = SensorDevice::ecg(record, 0.5);
        let mut abp = SensorDevice::abp(record, 0.5);
        let mut ch = Channel::perfect();
        let mut now = 0u64;
        loop {
            let (pe, pa) = (ecg.poll(), abp.poll());
            if pe.is_none() && pa.is_none() {
                break;
            }
            for p in [pe, pa].into_iter().flatten() {
                for d in ch.transmit(now, p) {
                    bs.receive(d).unwrap();
                }
            }
            now += 500;
        }
    }

    #[test]
    fn clean_windows_pass_the_gate() {
        let mut bs = gated_station();
        let r = Record::synthesize(&bank()[0], 15.0, 42);
        stream(&mut bs, &r);
        assert_eq!(bs.stats().windows_rejected, 0);
        assert_eq!(bs.stats().windows_emitted, 5);
    }

    #[test]
    fn heavy_broadband_noise_is_rejected_before_the_detector() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut bs = gated_station();
        let mut r = Record::synthesize(&bank()[0], 15.0, 42);
        let mut rng = StdRng::seed_from_u64(9);
        for s in r.ecg.iter_mut() {
            *s += rng.gen_range(-2.0..2.0);
        }
        stream(&mut bs, &r);
        let stats = bs.stats();
        assert!(
            stats.windows_rejected >= 4,
            "expected rejects, got {stats:?}"
        );
    }

    #[test]
    fn frozen_channel_still_reaches_the_detector_and_alerts() {
        let mut bs = gated_station();
        let mut r = Record::synthesize(&bank()[0], 15.0, 42);
        // Flat-line the entire ECG: a physical-compromise freeze.
        for s in r.ecg.iter_mut() {
            *s = 0.42;
        }
        r.r_peaks.clear();
        stream(&mut bs, &r);
        let stats = bs.stats();
        assert_eq!(stats.windows_rejected, 0, "gate must not eat freezes");
        assert!(
            bs.alerts().len() >= 4,
            "detector should alert on frozen windows: {stats:?}"
        );
    }
}
