//! Fleet-scale parallel scenario engine.
//!
//! Simulates N wearable devices — each a full sensors → channel/ARQ →
//! base-station → SIFT pipeline ([`crate::scenario::DeviceSim`]) —
//! sharded across an owned `std::thread` worker pool, and reduces the
//! per-device results into one [`FleetReport`].
//!
//! # Determinism under parallelism
//!
//! The headline guarantee: the same fleet seed produces a byte-identical
//! [`FleetReport`] (same [`FleetReport::digest`]) at **any** thread
//! count. Three properties make that hold:
//!
//! 1. Every device's randomness derives from its own seed, split from
//!    the fleet seed with a SplitMix64 stream ([`device_seed`]), so a
//!    device's behaviour never depends on which worker ran it or in
//!    what order.
//! 2. Workers never share mutable state: each device sim is an owned,
//!    `Send` value, and workers only report immutable summaries back
//!    over a channel.
//! 3. The reduction folds summaries strictly in device-index order
//!    (floating-point accumulation order is fixed), and nothing
//!    wall-clock-dependent enters the report — throughput numbers live
//!    in the bench harness, not here.
//!
//! # Enrollment and the sink
//!
//! Training is the expensive part of a scenario, and a fleet wearing
//! twelve subjects does not need to enroll twelve models per device:
//! the engine trains a [`ModelBank`] once up front and shares each
//! subject's model across every device wearing it (`Arc`, read-only).
//! Each device also uplinks its per-window feature vectors
//! ([`crate::basestation::BaseStation::with_feature_uplink`]); the sink
//! re-scores each device's whole window batch with **one** batched
//! backend call ([`ml::DetectorBackend::score_batch_f32`], bit-equal
//! to the scalar path for every backend) instead of per-window calls,
//! which is where fleet-scale margin statistics and per-device outlier
//! flags come from.

use crate::channel::ChannelStats;
use crate::faults::FaultSummary;
use crate::scenario::{DeviceOptions, DeviceSim, Scenario};
use crate::transport::TransportStats;
use crate::WiotError;
use amulet_sim::profiler::UsageSnapshot;
use ml::metrics::ConfusionMatrix;
use ml::{DetectorBackend, DetectorModel, Label};
use physio_sim::subject::{bank, Subject};
use sift::trainer::{ModelBank, SiftModel};
use std::sync::mpsc;
use std::thread;

/// SplitMix64 output function (same constants as the vendored
/// `rand::SeedableRng` seeding path). Shared with the attacker's
/// per-instance seed split (`crate::attacker`).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `device`-th seed split from `fleet_seed`: element `device + 1`
/// of the SplitMix64 stream seeded at `fleet_seed`. O(1) per device,
/// no stream state to thread through workers, and devices draw from
/// well-separated generator states rather than `seed + i`-style
/// neighbouring ones.
pub fn device_seed(fleet_seed: u64, device: usize) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    splitmix64(fleet_seed.wrapping_add(GOLDEN.wrapping_mul(device as u64 + 1)))
}

/// A fleet to simulate: `devices` copies of `template`, each with its
/// own victim (round-robin over the subject bank) and its own seed
/// (split from `seed`).
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of simulated devices.
    pub devices: usize,
    /// Worker threads (clamped to `1..=devices`).
    pub threads: usize,
    /// Fleet master seed.
    pub seed: u64,
    /// Attach a telemetry sink to every device
    /// ([`DeviceOptions::telemetry`]). Observational only: the fleet
    /// digest is byte-identical with the sink on or off.
    pub telemetry: bool,
    /// Per-device scenario; `victim` and `seed` are overridden for each
    /// device.
    pub template: Scenario,
}

impl FleetSpec {
    /// A fleet of `devices` baseline scenarios of `duration_s` seconds
    /// on one worker thread.
    pub fn new(devices: usize, duration_s: f64) -> Self {
        Self {
            devices,
            threads: 1,
            seed: 0xF1EE7,
            telemetry: false,
            template: Scenario::new(0, sift::features::Version::Simplified, duration_s),
        }
    }

    /// Builder-style thread count, clamped to `1..=devices` at
    /// construction time so a zero or oversized request can never reach
    /// the engines (both clamp again defensively, but the spec a caller
    /// inspects should already be honest).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, self.devices.max(1));
        self
    }

    /// Builder-style fleet seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style telemetry toggle.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Everything the reduction keeps about one device. All fields are
/// deterministic functions of the device seed; none depend on thread
/// scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Fleet-wide device index.
    pub device: usize,
    /// Subject the device wears.
    pub victim: usize,
    /// The device's split seed.
    pub seed: u64,
    /// Window-level confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Windows excluded from scoring (partial attack overlap).
    pub ambiguous_windows: usize,
    /// Windows lost to the channel or the quality gate.
    pub dropped_windows: usize,
    /// Windows repaired by salvage.
    pub salvaged_windows: usize,
    /// Fraction of expected windows that reached the detector.
    pub window_recovery_rate: f64,
    /// Attack-start → first-alert latency, ms.
    pub detection_latency_ms: Option<u64>,
    /// Channel counters, both links.
    pub channel: ChannelStats,
    /// ARQ counters, both links (`None` when ARQ was off).
    pub transport: Option<TransportStats>,
    /// Stream-stalled alerts.
    pub stall_alerts: usize,
    /// Everything the fault plan did to this device, including
    /// checkpoint recovery counters. Deliberately **excluded** from
    /// [`FleetReport::digest`]: the digest format is frozen, and with
    /// zero faults these are all zero anyway.
    pub faults: FaultSummary,
    /// Alerts archived at the device's sink.
    pub alerts: usize,
    /// Energy/dispatch counters for this device.
    pub usage: UsageSnapshot,
    /// Windows re-scored by the sink's batched SVM call.
    pub windows_scored: usize,
    /// Windows the sink's batch margins flag as positive.
    pub sink_flagged: usize,
    /// Smallest sink margin (`f64::INFINITY` when nothing was scored).
    pub margin_min: f64,
    /// Sum of sink margins (index order within the device).
    pub margin_sum: f64,
    /// The device's telemetry snapshot (`None` unless
    /// [`FleetSpec::telemetry`] was set). Integer counters only, so the
    /// fleet merge is exact at any thread count; excluded from
    /// [`FleetReport::digest`] like [`DeviceSummary::faults`].
    pub telemetry: Option<telemetry::TelemetryReport>,
}

/// Why a device was flagged as a fleet outlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierReason {
    /// Window recovery below 80 %: the device's link is effectively
    /// down.
    LowRecovery,
    /// False-positive rate above 30 % on ≥ 5 genuine windows: the
    /// device's model misfits its wearer.
    HighFalsePositiveRate,
    /// Battery below 50 % after one session: the device is burning
    /// energy far faster than the fleet.
    LowBattery,
}

impl std::fmt::Display for OutlierReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OutlierReason::LowRecovery => "low window recovery",
            OutlierReason::HighFalsePositiveRate => "high false-positive rate",
            OutlierReason::LowBattery => "low battery",
        })
    }
}

/// One flagged device.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutlier {
    /// Fleet-wide device index.
    pub device: usize,
    /// Subject the device wears.
    pub victim: usize,
    /// Why it was flagged.
    pub reason: OutlierReason,
    /// The offending metric's value.
    pub value: f64,
}

/// Aggregate result of a fleet run. Contains nothing wall-clock
/// dependent: two runs with the same [`FleetSpec`] (any thread count)
/// produce equal reports — see [`FleetReport::digest`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Devices simulated.
    pub devices: usize,
    /// Fleet master seed.
    pub seed: u64,
    /// Total simulated device-time, seconds (`devices × duration`).
    pub simulated_device_s: f64,
    /// Confusion matrix summed over the fleet.
    pub confusion: ConfusionMatrix,
    /// Ambiguous windows summed over the fleet.
    pub ambiguous_windows: usize,
    /// Dropped/rejected windows summed over the fleet.
    pub dropped_windows: usize,
    /// Salvaged windows summed over the fleet.
    pub salvaged_windows: usize,
    /// Mean per-device window recovery (device-index fold order).
    pub mean_window_recovery: f64,
    /// Devices whose detector saw their attack.
    pub detections: usize,
    /// Mean detection latency over detecting devices, ms.
    pub mean_detection_latency_ms: Option<f64>,
    /// Channel counters summed over the fleet.
    pub channel: ChannelStats,
    /// ARQ counters summed over the fleet (`None` when ARQ was off).
    pub transport: Option<TransportStats>,
    /// Merged energy/dispatch counters.
    pub usage: UsageSnapshot,
    /// Windows re-scored by the sink's batched inference.
    pub windows_scored: usize,
    /// Windows the sink flagged positive.
    pub sink_flagged: usize,
    /// Smallest sink margin fleet-wide (`f64::INFINITY` when none).
    pub margin_min: f64,
    /// Mean sink margin fleet-wide (0.0 when none).
    pub margin_mean: f64,
    /// Stream-stalled alerts summed over the fleet.
    pub stall_alerts: usize,
    /// Fault and checkpoint-recovery counters merged over the fleet
    /// ([`FaultSummary::merged`], device-index order). Excluded from
    /// [`FleetReport::digest`] — see [`DeviceSummary::faults`].
    pub faults: FaultSummary,
    /// Devices flagged as outliers, in device order.
    pub outliers: Vec<FleetOutlier>,
    /// Telemetry merged over the fleet in device-index order (`None`
    /// unless [`FleetSpec::telemetry`] was set). The merge drops the
    /// per-device event rings and sums the integer counters/stage
    /// stats, so it is thread-count-stable; excluded from
    /// [`FleetReport::digest`].
    pub telemetry: Option<telemetry::TelemetryReport>,
    /// Every device's summary, in device order.
    pub per_device: Vec<DeviceSummary>,
}

/// FNV-1a (64-bit) over a canonical encoding: `u64`s little-endian,
/// `f64`s via `to_bits`. Not cryptographic — a regression tripwire.
/// `pub(crate)` so the slab engine can fold the identical per-device
/// encoding while streaming ([`crate::slab`]).
pub(crate) struct Digest(pub(crate) u64);

impl Digest {
    pub(crate) fn new() -> Self {
        Digest(0xCBF2_9CE4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn confusion(&mut self, c: &ConfusionMatrix) {
        self.usize(c.tp);
        self.usize(c.fp);
        self.usize(c.tn);
        self.usize(c.fn_);
    }

    fn channel(&mut self, s: &ChannelStats) {
        self.u64(s.sent);
        self.u64(s.lost);
        self.u64(s.duplicated);
        self.u64(s.reordered);
        self.u64(s.corrupted);
    }

    fn transport(&mut self, t: &Option<TransportStats>) {
        match t {
            None => self.u64(0),
            Some(t) => {
                self.u64(1);
                self.u64(t.data_sent);
                self.u64(t.retransmits);
                self.u64(t.nacks_sent);
                self.u64(t.gap_recoveries);
                self.u64(t.give_ups);
                self.u64(t.duplicates_discarded);
                self.u64(t.buffer_evictions);
            }
        }
    }

    fn usage(&mut self, u: &UsageSnapshot) {
        self.u64(u.devices);
        self.f64(u.active_cycles);
        self.f64(u.consumed_mah);
        self.f64(u.min_battery_left);
        self.f64(u.battery_left_sum);
        self.u64(u.dispatched);
    }
}

/// Fold one device summary into `d` — the per-device portion of the
/// canonical digest encoding, shared between [`FleetReport::digest`],
/// [`FleetReport::slab_digest`] and the slab engine's streaming fold.
pub(crate) fn digest_device(d: &mut Digest, s: &DeviceSummary) {
    d.usize(s.device);
    d.usize(s.victim);
    d.u64(s.seed);
    d.confusion(&s.confusion);
    d.usize(s.ambiguous_windows);
    d.usize(s.dropped_windows);
    d.usize(s.salvaged_windows);
    d.f64(s.window_recovery_rate);
    match s.detection_latency_ms {
        None => d.u64(0),
        Some(ms) => {
            d.u64(1);
            d.u64(ms);
        }
    }
    d.channel(&s.channel);
    d.transport(&s.transport);
    d.usize(s.stall_alerts);
    d.usize(s.alerts);
    d.usage(&s.usage);
    d.usize(s.windows_scored);
    d.usize(s.sink_flagged);
    d.f64(s.margin_min);
    d.f64(s.margin_sum);
}

impl FleetReport {
    /// Fold the aggregate (non-per-device) portion of the report into
    /// `d`, in the frozen canonical order.
    pub(crate) fn digest_aggregates_into(&self, d: &mut Digest) {
        d.usize(self.devices);
        d.u64(self.seed);
        d.f64(self.simulated_device_s);
        d.confusion(&self.confusion);
        d.usize(self.ambiguous_windows);
        d.usize(self.dropped_windows);
        d.usize(self.salvaged_windows);
        d.f64(self.mean_window_recovery);
        d.usize(self.detections);
        match self.mean_detection_latency_ms {
            None => d.u64(0),
            Some(ms) => {
                d.u64(1);
                d.f64(ms);
            }
        }
        d.channel(&self.channel);
        d.transport(&self.transport);
        d.usage(&self.usage);
        d.usize(self.windows_scored);
        d.usize(self.sink_flagged);
        d.f64(self.margin_min);
        d.f64(self.margin_mean);
        d.usize(self.stall_alerts);
        d.usize(self.outliers.len());
        for o in &self.outliers {
            d.usize(o.device);
            d.usize(o.victim);
            d.u64(o.reason as u64);
            d.f64(o.value);
        }
    }

    /// A 64-bit digest of the entire report (every aggregate and every
    /// per-device summary). Two runs of the same [`FleetSpec`] at any
    /// thread count produce the same digest; the deterministic test
    /// harness pins this value in golden traces.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        self.digest_aggregates_into(&mut d);
        d.usize(self.per_device.len());
        for s in &self.per_device {
            digest_device(&mut d, s);
        }
        d.0
    }

    /// The streaming-order digest: per-device entries first (index
    /// order), then the device count, then the aggregates. This is the
    /// ordering a bounded-memory engine can compute without ever
    /// holding `per_device` — the slab engine folds each summary as it
    /// retires and appends the aggregates at the end
    /// ([`crate::slab::run_fleet_streamed`]). On a resident report this
    /// method produces the identical value from the stored summaries,
    /// which is how the equivalence tests compare the two engines.
    pub fn slab_digest(&self) -> u64 {
        let mut d = Digest::new();
        for s in &self.per_device {
            digest_device(&mut d, s);
        }
        d.usize(self.devices);
        self.digest_aggregates_into(&mut d);
        d.0
    }
}

/// Everything one device needs to run, decided by a
/// [`FleetProvisioner`]: the fully resolved scenario (victim and seed
/// set) plus the models to inject and, for campaign populations, the
/// subject the device wears.
pub struct DeviceProvision<'a> {
    /// The device's concrete scenario.
    pub scenario: Scenario,
    /// Subject override ([`DeviceOptions::subject`]); `None` wears
    /// `bank()[scenario.victim]` as always.
    pub subject: Option<&'a Subject>,
    /// Gold SVM model for sink-side comparison, when one exists.
    pub model: Option<&'a SiftModel>,
    /// Deployed detector backend for the device.
    pub deployed: &'a DetectorModel,
}

/// Decides, per device index, what that device runs. The engine calls
/// [`FleetProvisioner::provision`] from worker threads (hence `Sync`);
/// implementations must be pure functions of `(spec, device)` or the
/// determinism guarantee breaks. The legacy bank round-robin is
/// [`run_fleet_with_bank`]; the campaign engine provisions
/// population-scale victims and per-wave attacks through the same seam.
pub trait FleetProvisioner: Sync {
    /// Build the provision for `device`.
    ///
    /// # Errors
    ///
    /// Implementations return [`WiotError::InvalidScenario`] when the
    /// device cannot be provisioned (e.g. no model for its victim).
    fn provision(&self, spec: &FleetSpec, device: usize)
        -> Result<DeviceProvision<'_>, WiotError>;
}

/// The legacy provisioning policy: victims round-robin over the
/// subject bank, models shared from a pre-trained [`ModelBank`].
/// `pub(crate)` so the slab engine's bank entry point reuses it
/// ([`crate::slab::run_fleet_streamed`]).
pub(crate) struct BankProvisioner<'b> {
    pub(crate) models: &'b ModelBank,
    pub(crate) subjects_len: usize,
}

impl FleetProvisioner for BankProvisioner<'_> {
    fn provision(
        &self,
        spec: &FleetSpec,
        device: usize,
    ) -> Result<DeviceProvision<'_>, WiotError> {
        let mut scenario = spec.template.clone();
        scenario.victim = device % self.subjects_len;
        scenario.seed = device_seed(spec.seed, device);
        let deployed = self
            .models
            .deployed(scenario.victim)
            .ok_or(WiotError::InvalidScenario {
                reason: "model bank does not cover the device's victim",
            })?;
        let model = self.models.get(scenario.victim).map(|m| m.as_ref());
        Ok(DeviceProvision {
            scenario,
            subject: None,
            model,
            deployed: deployed.as_ref(),
        })
    }
}

/// Simulate one device of the fleet: provision it, run it, and
/// batch-score its uplinked features at the sink.
fn simulate_device(
    spec: &FleetSpec,
    prov: &dyn FleetProvisioner,
    device: usize,
) -> Result<DeviceSummary, WiotError> {
    let DeviceProvision {
        scenario,
        subject,
        model,
        deployed,
    } = prov.provision(spec, device)?;
    simulate_provisioned(spec.telemetry, device, scenario, subject, model, deployed)
}

/// Run one already-provisioned device end-to-end and batch-score its
/// uplinked features at the sink. Shared between [`simulate_device`]
/// and the slab engine, which calls it with the detector model it just
/// round-tripped through the checkpoint codec rather than the
/// provisioner's reference ([`crate::slab`]).
pub(crate) fn simulate_provisioned(
    telemetry: bool,
    device: usize,
    scenario: Scenario,
    subject: Option<&Subject>,
    model: Option<&SiftModel>,
    deployed: &DetectorModel,
) -> Result<DeviceSummary, WiotError> {
    let mut sim = DeviceSim::with_options(
        &scenario,
        DeviceOptions {
            model,
            deployed: Some(deployed),
            feature_uplink: true,
            telemetry,
            subject,
        },
    )?;
    sim.run_to_completion()?;

    // Sink-side batched inference: one margin computation over the
    // device's whole window batch instead of per-window calls.
    let features = sim.take_uplinked_features();
    let mut flat = Vec::with_capacity(features.len() * deployed.dim());
    for (_, f) in &features {
        flat.extend_from_slice(f);
    }
    let margins = deployed.score_batch_f32(&flat)?;
    let sink_flagged = margins
        .iter()
        .filter(|&&m| Label::from_sign(f64::from(m)) == Label::Positive)
        .count();
    let margin_min = margins
        .iter()
        .fold(f64::INFINITY, |acc, &m| acc.min(f64::from(m)));
    let margin_sum: f64 = margins.iter().map(|&m| f64::from(m)).sum();

    let usage = sim.station().os().usage_snapshot();
    let victim = scenario.victim;
    let seed = scenario.seed;
    let mut report = sim.into_report()?;
    let telemetry = report.telemetry.take();
    Ok(DeviceSummary {
        device,
        victim,
        seed,
        confusion: report.confusion,
        ambiguous_windows: report.ambiguous_windows,
        dropped_windows: report.dropped_windows,
        salvaged_windows: report.salvaged_windows,
        window_recovery_rate: report.window_recovery_rate,
        detection_latency_ms: report.detection_latency_ms,
        channel: report.channel,
        transport: report.transport,
        stall_alerts: report.stall_alerts,
        faults: report.faults,
        alerts: report.sink.alerts().len(),
        usage,
        windows_scored: margins.len(),
        sink_flagged,
        margin_min,
        margin_sum,
        telemetry,
    })
}

/// Incremental fleet reduction: push per-device summaries **in
/// device-index order**, then [`Reducer::finish`]. The fold is the
/// exact sequential accumulation the fleet digest was frozen over —
/// f64 accumulation order never depends on how many threads produced
/// the summaries — and because it is incremental the slab engine can
/// retire each summary right after folding it instead of keeping the
/// whole fleet resident ([`crate::slab`]).
#[derive(Default)]
pub(crate) struct Reducer {
    count: usize,
    confusion: ConfusionMatrix,
    ambiguous: usize,
    dropped: usize,
    salvaged: usize,
    recovery_sum: f64,
    detections: usize,
    latency_sum: f64,
    channel: ChannelStats,
    transport: Option<TransportStats>,
    usage: UsageSnapshot,
    windows_scored: usize,
    sink_flagged: usize,
    margin_min: f64,
    margin_sum: f64,
    stall_alerts: usize,
    faults: FaultSummary,
    telemetry: Option<telemetry::TelemetryReport>,
    outliers: Vec<FleetOutlier>,
}

impl Reducer {
    pub(crate) fn new() -> Self {
        Self {
            margin_min: f64::INFINITY,
            ..Self::default()
        }
    }

    /// Fold one device into the aggregate. Summaries must arrive in
    /// device-index order.
    pub(crate) fn push(&mut self, s: &DeviceSummary) {
        self.count += 1;
        self.confusion.tp += s.confusion.tp;
        self.confusion.fp += s.confusion.fp;
        self.confusion.tn += s.confusion.tn;
        self.confusion.fn_ += s.confusion.fn_;
        self.ambiguous += s.ambiguous_windows;
        self.dropped += s.dropped_windows;
        self.salvaged += s.salvaged_windows;
        self.recovery_sum += s.window_recovery_rate;
        if let Some(ms) = s.detection_latency_ms {
            self.detections += 1;
            self.latency_sum += ms as f64;
        }
        self.channel = crate::scenario::add_channel_stats(self.channel, s.channel);
        self.transport = match (self.transport, s.transport) {
            (Some(a), Some(b)) => Some(crate::scenario::add_transport_stats(a, b)),
            (None, b) => b,
            (a, None) => a,
        };
        self.usage.merge(&s.usage);
        self.windows_scored += s.windows_scored;
        self.sink_flagged += s.sink_flagged;
        self.margin_min = self.margin_min.min(s.margin_min);
        self.margin_sum += s.margin_sum;
        self.stall_alerts += s.stall_alerts;
        self.faults = self.faults.merged(s.faults);
        if let Some(t) = &s.telemetry {
            match self.telemetry.as_mut() {
                Some(m) => m.merge(t),
                None => {
                    // The aggregate carries counters, not any single
                    // device's event trace.
                    let mut first = t.clone();
                    first.events.clear();
                    self.telemetry = Some(first);
                }
            }
        }

        if s.window_recovery_rate < 0.8 {
            self.outliers.push(FleetOutlier {
                device: s.device,
                victim: s.victim,
                reason: OutlierReason::LowRecovery,
                value: s.window_recovery_rate,
            });
        }
        let genuine = s.confusion.fp + s.confusion.tn;
        if genuine >= 5 {
            let fp_rate = s.confusion.fp as f64 / genuine as f64;
            if fp_rate > 0.3 {
                self.outliers.push(FleetOutlier {
                    device: s.device,
                    victim: s.victim,
                    reason: OutlierReason::HighFalsePositiveRate,
                    value: fp_rate,
                });
            }
        }
        let battery = s.usage.mean_battery_left();
        if battery < 0.5 {
            self.outliers.push(FleetOutlier {
                device: s.device,
                victim: s.victim,
                reason: OutlierReason::LowBattery,
                value: battery,
            });
        }
    }

    /// Close the fold into a [`FleetReport`]. `per_device` is whatever
    /// the caller kept resident — the full vector for the legacy
    /// engine, empty for the slab engine (the aggregates always cover
    /// every pushed device either way).
    pub(crate) fn finish(
        self,
        seed: u64,
        duration_s: f64,
        per_device: Vec<DeviceSummary>,
    ) -> FleetReport {
        let devices = self.count;
        FleetReport {
            devices,
            seed,
            simulated_device_s: devices as f64 * duration_s,
            confusion: self.confusion,
            ambiguous_windows: self.ambiguous,
            dropped_windows: self.dropped,
            salvaged_windows: self.salvaged,
            mean_window_recovery: if devices == 0 {
                0.0
            } else {
                self.recovery_sum / devices as f64
            },
            detections: self.detections,
            mean_detection_latency_ms: if self.detections == 0 {
                None
            } else {
                Some(self.latency_sum / self.detections as f64)
            },
            channel: self.channel,
            transport: self.transport,
            usage: self.usage,
            windows_scored: self.windows_scored,
            sink_flagged: self.sink_flagged,
            margin_min: self.margin_min,
            margin_mean: if self.windows_scored == 0 {
                0.0
            } else {
                self.margin_sum / self.windows_scored as f64
            },
            stall_alerts: self.stall_alerts,
            faults: self.faults,
            telemetry: self.telemetry,
            outliers: self.outliers,
            per_device,
        }
    }
}

/// Fold per-device summaries (already in device-index order) into the
/// fleet aggregate. Pure and sequential: f64 accumulation order is
/// fixed regardless of how many threads produced the summaries.
fn reduce(spec: &FleetSpec, summaries: Vec<DeviceSummary>) -> FleetReport {
    let mut r = Reducer::new();
    for s in &summaries {
        r.push(s);
    }
    r.finish(spec.seed, spec.template.duration_s, summaries)
}

/// Run a fleet with a pre-trained [`ModelBank`] (callers comparing
/// thread counts or sweeping seeds train once and reuse it).
///
/// # Errors
///
/// Returns [`WiotError::InvalidScenario`] for an empty fleet or a bank
/// whose detector version does not match the template, and propagates
/// the lowest-device-index simulation error (deterministic regardless
/// of which worker hit it first).
pub fn run_fleet_with_bank(spec: &FleetSpec, models: &ModelBank) -> Result<FleetReport, WiotError> {
    if models.version() != spec.template.version {
        return Err(WiotError::InvalidScenario {
            reason: "model bank version does not match the fleet template",
        });
    }
    if models.kind() != spec.template.backend {
        return Err(WiotError::InvalidScenario {
            reason: "model bank backend does not match the fleet template",
        });
    }
    let prov = BankProvisioner {
        models,
        subjects_len: bank().len(),
    };
    run_fleet_provisioned(spec, &prov)
}

/// Run a fleet through an arbitrary [`FleetProvisioner`] — the engine
/// core. Owns the worker pool, the static device sharding, and the
/// index-ordered reduction; everything device-specific comes from the
/// provisioner. The thread-count-invariance guarantee holds for any
/// provisioner that is a pure function of `(spec, device)`.
///
/// # Errors
///
/// Returns [`WiotError::InvalidScenario`] for an empty fleet,
/// propagates the lowest-device-index provisioning or simulation error
/// (deterministic regardless of which worker hit it first).
pub fn run_fleet_provisioned(
    spec: &FleetSpec,
    prov: &dyn FleetProvisioner,
) -> Result<FleetReport, WiotError> {
    if spec.devices == 0 {
        return Err(WiotError::InvalidScenario {
            reason: "fleet must have at least one device",
        });
    }
    let threads = spec.threads.clamp(1, spec.devices);

    let mut slots: Vec<Option<Result<DeviceSummary, WiotError>>> =
        (0..spec.devices).map(|_| None).collect();
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for worker in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || {
                // Static sharding: worker w owns devices w, w+T, w+2T, …
                // Any partition works — determinism comes from the
                // index-ordered reduction, not the schedule.
                for device in (worker..spec.devices).step_by(threads) {
                    let result = simulate_device(spec, prov, device);
                    if tx.send((device, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for (device, result) in rx {
            slots[device] = Some(result);
        }
    });

    let mut summaries = Vec::with_capacity(spec.devices);
    for (device, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(summary)) => summaries.push(summary),
            Some(Err(e)) => return Err(e),
            None => {
                debug_assert!(false, "worker for device {device} vanished without reporting");
                return Err(WiotError::InvalidScenario {
                    reason: "fleet worker terminated without reporting",
                });
            }
        }
    }
    Ok(reduce(spec, summaries))
}

/// Train the model bank for `spec` (one model per subject, shared
/// across devices) and run the fleet.
///
/// # Errors
///
/// As [`run_fleet_with_bank`], plus training errors.
pub fn run_fleet(spec: &FleetSpec) -> Result<FleetReport, WiotError> {
    let models = ModelBank::train_backend(
        &bank(),
        spec.template.version,
        spec.template.backend,
        &spec.template.config,
        spec.seed,
    )?;
    run_fleet_with_bank(spec, &models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn device_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..256).map(|i| device_seed(42, i)).collect();
        let unique: HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len(), "colliding device seeds");
        // Stable across calls (pure function of fleet seed + index).
        assert_eq!(device_seed(42, 17), seeds[17]);
        // A different fleet seed moves every stream.
        assert!((0..256).all(|i| device_seed(43, i) != seeds[i]));
    }

    #[test]
    fn empty_fleet_rejected() {
        let spec = FleetSpec::new(0, 10.0);
        assert!(matches!(
            run_fleet(&spec),
            Err(WiotError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn mismatched_bank_version_rejected() {
        let spec = FleetSpec::new(1, 10.0);
        let models = ModelBank::train(
            &bank(),
            sift::features::Version::Reduced,
            &spec.template.config,
            spec.seed,
        )
        .unwrap();
        assert!(matches!(
            run_fleet_with_bank(&spec, &models),
            Err(WiotError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let spec = FleetSpec::new(3, 9.0).with_seed(7);
        let models = ModelBank::train(
            &bank(),
            spec.template.version,
            &spec.template.config,
            spec.seed,
        )
        .unwrap();
        let one = run_fleet_with_bank(&spec, &models).unwrap();
        let three = run_fleet_with_bank(&spec.clone().with_threads(3), &models).unwrap();
        assert_eq!(one, three);
        assert_eq!(one.digest(), three.digest());
        assert_eq!(one.devices, 3);
        assert_eq!(one.per_device.len(), 3);
        // Distinct devices really ran distinct streams.
        assert!(one.per_device[0].seed != one.per_device[1].seed);
        assert!(one.usage.devices == 3);
        // Batched sink re-scoring saw the emitted windows.
        assert!(one.windows_scored > 0);
    }

    #[test]
    fn telemetry_never_perturbs_the_fleet_digest() {
        // The frozen digest is the tentpole invariant: enabling the
        // sink must leave it byte-identical, at any thread count, and
        // the merged telemetry itself must be thread-count-stable.
        let spec = FleetSpec::new(3, 9.0).with_seed(11);
        let models = ModelBank::train(
            &bank(),
            spec.template.version,
            &spec.template.config,
            spec.seed,
        )
        .unwrap();
        let off = run_fleet_with_bank(&spec, &models).unwrap();
        let on = run_fleet_with_bank(&spec.clone().with_telemetry(true), &models).unwrap();
        let on_threaded = run_fleet_with_bank(
            &spec.clone().with_telemetry(true).with_threads(3),
            &models,
        )
        .unwrap();
        assert_eq!(off.digest(), on.digest(), "telemetry changed the digest");
        assert_eq!(on.digest(), on_threaded.digest());
        assert!(off.telemetry.is_none());
        let merged = on.telemetry.as_ref().expect("sink was on");
        assert_eq!(on.telemetry, on_threaded.telemetry, "merge not thread-stable");
        assert!(merged.events.is_empty(), "aggregate must not carry a trace");
        assert_eq!(
            merged.counter(telemetry::CounterId::PacketsSent),
            on.channel.sent
        );
        // Per-device snapshots keep their event traces.
        assert!(on.per_device.iter().all(|d| d
            .telemetry
            .as_ref()
            .is_some_and(|t| !t.events.is_empty())));
    }

    #[test]
    fn tsetlin_fleet_is_thread_count_stable() {
        let mut spec = FleetSpec::new(2, 9.0).with_seed(5);
        spec.template.backend = ml::BackendKind::Tsetlin;
        let models = ModelBank::train_backend(
            &bank(),
            spec.template.version,
            ml::BackendKind::Tsetlin,
            &spec.template.config,
            spec.seed,
        )
        .unwrap();
        let one = run_fleet_with_bank(&spec, &models).unwrap();
        let two = run_fleet_with_bank(&spec.clone().with_threads(2), &models).unwrap();
        assert_eq!(one.digest(), two.digest());
        assert!(one.windows_scored > 0, "sink saw no windows");
        // An SVM bank cannot drive a Tsetlin fleet.
        let svm = ModelBank::train(
            &bank(),
            spec.template.version,
            &spec.template.config,
            spec.seed,
        )
        .unwrap();
        assert!(matches!(
            run_fleet_with_bank(&spec, &svm),
            Err(WiotError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn builder_clamps_zero_and_oversized_threads() {
        // A zero request must not smuggle a divide-by-zero or an empty
        // worker pool into the engines.
        let spec = FleetSpec::new(4, 9.0).with_threads(0);
        assert_eq!(spec.threads, 1);
        // More workers than devices collapses to one per device.
        let spec = FleetSpec::new(4, 9.0).with_threads(64);
        assert_eq!(spec.threads, 4);
        // Degenerate empty fleet still stores a sane count; the engines
        // reject the empty fleet itself.
        let spec = FleetSpec::new(0, 9.0).with_threads(8);
        assert_eq!(spec.threads, 1);
    }

    #[test]
    fn oversized_thread_count_is_clamped() {
        let spec = FleetSpec::new(2, 9.0).with_threads(64);
        let models = ModelBank::train(
            &bank(),
            spec.template.version,
            &spec.template.config,
            spec.seed,
        )
        .unwrap();
        let r = run_fleet_with_bank(&spec, &models).unwrap();
        assert_eq!(r.devices, 2);
    }
}
