//! Sensor-hijacking attacker models.
//!
//! The paper defines sensor-hijacking as "attacks that prevent sensors
//! from accurately collecting or reporting their measurements" and lists
//! four vulnerability classes (§I): the communication channel, the
//! firmware-update process, the unprotected sensory channel, and direct
//! physical compromise. Each attack mode here is the canonical payload of
//! one class, applied as an on-path transformation of the victim's ECG
//! packet stream (the ABP reference is assumed trustworthy, as in the
//! paper's threat model).

use crate::device::{SensorPacket, Stream};
use physio_sim::record::Record;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of attack classes in the campaign taxonomy — the length of
/// the per-class TP/FN arrays in [`crate::faults::FaultSummary`] and of
/// [`ATTACK_CLASS_NAMES`].
pub const ATTACK_CLASS_COUNT: usize = 9;

/// Report names of the attack classes, indexed by
/// [`AttackMode::class_index`] (and `wiot::campaign::AttackClass::index`,
/// which uses the same table).
pub const ATTACK_CLASS_NAMES: [&str; ATTACK_CLASS_COUNT] = [
    "substitute",
    "replay",
    "freeze",
    "noise-inject",
    "mimicry",
    "replay-snr",
    "partial-window",
    "coordinated",
    "adaptive",
];

/// What the adversary does to hijacked ECG packets.
#[derive(Debug, Clone)]
pub enum AttackMode {
    /// Channel compromise: substitute another person's ECG (the paper's
    /// Table II attack).
    Substitute {
        /// The donor recording supplying the fake waveform.
        donor: Record,
    },
    /// Firmware compromise: replay the victim's own ECG from `offset_s`
    /// seconds earlier (reporting *old* measurements).
    Replay {
        /// How far back the replayed data comes from.
        offset_s: f64,
        /// The victim's own recording the replay is cut from.
        source: Record,
    },
    /// Physical compromise: the sensor freezes at its last value.
    Freeze,
    /// Sensory-channel injection: additive interference of the given
    /// amplitude (EMI-style, cf. Ghost Talk).
    NoiseInject {
        /// Amplitude of the injected disturbance, in millivolts.
        amplitude_mv: f64,
    },
    /// Mimicry: blend a morphology-fitted donor's ECG into the victim's
    /// at a fixed mix ratio, keeping part of the genuine waveform to
    /// evade the detector.
    Mimicry {
        /// The donor recording (campaign engines pick the population's
        /// nearest morphology neighbor).
        donor: Record,
        /// Donor share of the blend, 0–1000 (‰). 1000 degenerates to
        /// substitution, 0 to a passthrough that still counts as
        /// tampering.
        blend_permille: u16,
    },
    /// Replay of the victim's own ECG with additive wideband noise at a
    /// parameterized signal-to-noise ratio (a noisy re-recording of the
    /// sensory channel rather than a perfect digital copy).
    ReplaySnr {
        /// How far back the replayed data comes from.
        offset_s: f64,
        /// The victim's own recording the replay is cut from.
        source: Record,
        /// Replay SNR in dB; lower values bury the copy in noise.
        snr_db: f64,
    },
    /// Partial-window injection: substitute the donor only during the
    /// leading `coverage_permille` fraction of each detection window,
    /// leaving the rest genuine — probing the detector's sensitivity to
    /// sub-window tampering.
    PartialWindow {
        /// The donor recording supplying the fake waveform.
        donor: Record,
        /// Detection-window length in ms (the injection duty period).
        window_ms: u64,
        /// Fraction of each window that is tampered, 0–1000 (‰).
        coverage_permille: u16,
    },
    /// Coordinated multi-device substitution: behaviorally identical to
    /// [`AttackMode::Substitute`], but tagged as its own class so
    /// campaign accounting separates wave-synchronized substitution
    /// (riding a Gilbert–Elliott burst-loss channel) from the lone
    /// attacker.
    Coordinated {
        /// The donor recording shared by the attacking wave.
        donor: Record,
    },
    /// Adaptive threshold-probing: blends like mimicry, but bisects its
    /// blend factor against detector feedback ([`Attacker::feedback`])
    /// — alerted probes lower the blend, unnoticed probes raise it —
    /// converging on the detector's decision threshold.
    Adaptive {
        /// The donor recording supplying the fake waveform.
        donor: Record,
    },
}

impl AttackMode {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        ATTACK_CLASS_NAMES[self.class_index()]
    }

    /// Stable index of this mode's attack class in per-class tables
    /// ([`ATTACK_CLASS_NAMES`], `FaultSummary::attack_windows_tp`).
    pub fn class_index(&self) -> usize {
        match self {
            AttackMode::Substitute { .. } => 0,
            AttackMode::Replay { .. } => 1,
            AttackMode::Freeze => 2,
            AttackMode::NoiseInject { .. } => 3,
            AttackMode::Mimicry { .. } => 4,
            AttackMode::ReplaySnr { .. } => 5,
            AttackMode::PartialWindow { .. } => 6,
            AttackMode::Coordinated { .. } => 7,
            AttackMode::Adaptive { .. } => 8,
        }
    }
}

/// Per-instance seed split: mix the caller's seed with the attack
/// window through SplitMix64 (the fleet engine's per-device splitting
/// discipline) so two attackers sharing a campaign seed but staged over
/// different windows draw decorrelated streams instead of replaying the
/// raw seed's stream in lockstep.
fn split_attacker_seed(seed: u64, start_ms: u64, end_ms: u64) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let window = crate::fleet::splitmix64(
        start_ms
            .wrapping_mul(GOLDEN)
            .wrapping_add(end_ms.rotate_left(32)),
    );
    crate::fleet::splitmix64(seed ^ window)
}

/// An adversary active during `[start_ms, end_ms)` on the ECG stream.
#[derive(Debug, Clone)]
pub struct Attacker {
    mode: AttackMode,
    start_ms: u64,
    end_ms: u64,
    rng: StdRng,
    hijacked_packets: u64,
    last_value: f64,
    /// Adaptive bisection bracket (‰ donor blend): the threshold the
    /// attacker is probing lies in `[adapt_lo, adapt_hi]`.
    adapt_lo: u16,
    adapt_hi: u16,
    /// Detector verdicts consumed by [`Attacker::feedback`].
    probes: u64,
}

impl Attacker {
    /// Create an attacker active over the given window.
    ///
    /// The RNG stream is split per instance from `(seed, start_ms,
    /// end_ms)` — see [`split_attacker_seed`] — so campaign waves can
    /// share one seed without correlating their noise draws.
    ///
    /// # Panics
    ///
    /// Panics if `start_ms >= end_ms`.
    pub fn new(mode: AttackMode, start_ms: u64, end_ms: u64, seed: u64) -> Self {
        assert!(start_ms < end_ms, "attack window must be non-empty");
        Self {
            mode,
            start_ms,
            end_ms,
            rng: StdRng::seed_from_u64(split_attacker_seed(seed, start_ms, end_ms)),
            hijacked_packets: 0,
            last_value: 0.0,
            adapt_lo: 0,
            adapt_hi: 1000,
            probes: 0,
        }
    }

    /// Whether the attack is active at `now_ms`.
    pub fn active_at(&self, now_ms: u64) -> bool {
        (self.start_ms..self.end_ms).contains(&now_ms)
    }

    /// The attack window `[start_ms, end_ms)`.
    pub fn window_ms(&self) -> (u64, u64) {
        (self.start_ms, self.end_ms)
    }

    /// The attack mode.
    pub fn mode(&self) -> &AttackMode {
        &self.mode
    }

    /// Packets tampered with so far.
    pub fn hijacked_packets(&self) -> u64 {
        self.hijacked_packets
    }

    /// Whether this attacker adapts to detector verdicts (adaptive
    /// threshold probing). Scenario runners feed resolved window
    /// verdicts back via [`Attacker::feedback`] only when this is set.
    pub fn wants_feedback(&self) -> bool {
        matches!(self.mode, AttackMode::Adaptive { .. })
    }

    /// The adaptive attacker's current donor blend (‰): the midpoint of
    /// its bisection bracket. 500 before any feedback.
    pub fn adaptive_blend(&self) -> u16 {
        (self.adapt_lo + self.adapt_hi) / 2
    }

    /// Adaptive probe state `(lo, hi, probes)`: the bracket the
    /// detector threshold is known to lie in (‰ blend) and how many
    /// verdicts have been consumed. `None` for non-adaptive modes.
    pub fn adaptive_state(&self) -> Option<(u16, u16, u64)> {
        self.wants_feedback()
            .then_some((self.adapt_lo, self.adapt_hi, self.probes))
    }

    /// Consume one detector verdict for an attacked window: `alerted`
    /// probes cap the bracket from above (the current blend was
    /// detectable), silent probes raise it from below. The bracket
    /// halves per verdict, so after `k` probes the attacker knows the
    /// detector's blend threshold to within `1000 / 2^k` ‰. A no-op for
    /// non-adaptive modes.
    pub fn feedback(&mut self, alerted: bool) {
        if !self.wants_feedback() {
            return;
        }
        let blend = self.adaptive_blend();
        if alerted {
            self.adapt_hi = blend;
        } else {
            self.adapt_lo = blend;
        }
        self.probes += 1;
    }

    /// Intercept a packet in flight at `now_ms`. ECG packets inside the
    /// attack window are tampered with; everything else passes through.
    pub fn intercept(&mut self, now_ms: u64, mut packet: SensorPacket, fs: f64) -> SensorPacket {
        if packet.stream != Stream::Ecg || !self.active_at(now_ms) {
            if packet.stream == Stream::Ecg {
                self.last_value = *packet.samples.last().unwrap_or(&0.0);
            }
            return packet;
        }
        self.hijacked_packets += 1;
        let adaptive_blend = self.adaptive_blend();
        match &self.mode {
            AttackMode::Substitute { donor } | AttackMode::Coordinated { donor } => {
                if !substitute_from(&mut packet, donor) {
                    // Not enough donor material for even one chunk: the
                    // attack degrades to a passthrough.
                    self.hijacked_packets -= 1;
                    return packet;
                }
            }
            AttackMode::Replay { offset_s, source } => {
                if !replay_from(&mut packet, source, *offset_s, fs) {
                    self.hijacked_packets -= 1;
                    return packet;
                }
            }
            AttackMode::Freeze => {
                let v = self.last_value;
                packet.samples.fill(v);
                packet.peaks.clear();
            }
            AttackMode::NoiseInject { amplitude_mv } => {
                let a = *amplitude_mv;
                for s in &mut packet.samples {
                    *s += self.rng.gen_range(-a..a);
                }
                // Injected interference corrupts the sensor's local peak
                // detection: spurious peaks appear.
                let extra = self.rng.gen_range(0..3);
                for _ in 0..extra {
                    let idx = self.rng.gen_range(0..packet.samples.len());
                    packet.peaks.push(idx);
                }
                packet.peaks.sort_unstable();
                packet.peaks.dedup();
            }
            AttackMode::Mimicry {
                donor,
                blend_permille,
            } => {
                if !blend_from(&mut packet, donor, *blend_permille) {
                    self.hijacked_packets -= 1;
                    return packet;
                }
            }
            AttackMode::ReplaySnr {
                offset_s,
                source,
                snr_db,
            } => {
                if !replay_from(&mut packet, source, *offset_s, fs) {
                    self.hijacked_packets -= 1;
                    return packet;
                }
                // Bury the copy in wideband noise at the requested SNR:
                // uniform noise in [-a, a) has power a²/3, so matching
                // signal_power / 10^(snr/10) gives a = √(3·p_noise).
                let len = packet.samples.len() as f64;
                let mean = packet.samples.iter().sum::<f64>() / len;
                let power =
                    packet.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / len;
                let a = (3.0 * power / 10f64.powf(snr_db / 10.0)).sqrt();
                if a > 0.0 {
                    for s in &mut packet.samples {
                        *s += self.rng.gen_range(-a..a);
                    }
                }
            }
            AttackMode::PartialWindow {
                donor,
                window_ms,
                coverage_permille,
            } => {
                let w = (*window_ms).max(1);
                let pos = now_ms % w;
                let covered = pos.saturating_mul(1000) < u64::from(*coverage_permille) * w;
                if !covered || !substitute_from(&mut packet, donor) {
                    // Outside the window's injected prefix (or donor too
                    // short): the chunk goes through untouched.
                    self.hijacked_packets -= 1;
                    return packet;
                }
            }
            AttackMode::Adaptive { donor } => {
                if !blend_from(&mut packet, donor, adaptive_blend) {
                    self.hijacked_packets -= 1;
                    return packet;
                }
            }
        }
        packet
    }
}

/// Overwrite the packet with the aligned donor slice (the substitution
/// payload). Returns `false` without touching the packet when the donor
/// recording is shorter than one chunk.
fn substitute_from(packet: &mut SensorPacket, donor: &Record) -> bool {
    let len = packet.samples.len();
    if donor.ecg.len() < len {
        return false;
    }
    let start = packet.start_sample % (donor.ecg.len() - len).max(1);
    packet
        .samples
        .copy_from_slice(&donor.ecg[start..start + len]);
    packet.peaks = donor
        .r_peaks
        .iter()
        .filter(|&&p| p >= start && p < start + len)
        .map(|&p| p - start)
        .collect();
    true
}

/// Overwrite the packet with the source slice from `offset_s` seconds
/// earlier (the replay payload). Returns `false` when the source is
/// shorter than one chunk.
fn replay_from(packet: &mut SensorPacket, source: &Record, offset_s: f64, fs: f64) -> bool {
    let len = packet.samples.len();
    if source.ecg.len() < len {
        return false;
    }
    let shift = (offset_s * fs).round() as usize;
    let start = packet.start_sample.saturating_sub(shift);
    let start = start.min(source.ecg.len() - len);
    packet
        .samples
        .copy_from_slice(&source.ecg[start..start + len]);
    packet.peaks = source
        .r_peaks
        .iter()
        .filter(|&&p| p >= start && p < start + len)
        .map(|&p| p - start)
        .collect();
    true
}

/// Mix the aligned donor slice into the packet at `blend_permille` ‰
/// donor share. Peak annotations follow the majority contributor. Returns
/// `false` when the donor is shorter than one chunk.
fn blend_from(packet: &mut SensorPacket, donor: &Record, blend_permille: u16) -> bool {
    let len = packet.samples.len();
    if donor.ecg.len() < len {
        return false;
    }
    let start = packet.start_sample % (donor.ecg.len() - len).max(1);
    let b = f64::from(blend_permille.min(1000)) / 1000.0;
    for (s, d) in packet.samples.iter_mut().zip(&donor.ecg[start..start + len]) {
        *s = b * d + (1.0 - b) * *s;
    }
    if blend_permille >= 500 {
        packet.peaks = donor
            .r_peaks
            .iter()
            .filter(|&&p| p >= start && p < start + len)
            .map(|&p| p - start)
            .collect();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use physio_sim::subject::bank;

    fn ecg_packet(start_sample: usize, len: usize) -> SensorPacket {
        SensorPacket {
            stream: Stream::Ecg,
            seq: (start_sample / len) as u64,
            start_sample,
            samples: vec![0.5; len],
            peaks: vec![len / 2],
        }
    }

    #[test]
    fn inactive_outside_window() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let mut a = Attacker::new(AttackMode::Substitute { donor }, 1000, 2000, 0);
        let p = ecg_packet(0, 180);
        let out = a.intercept(500, p.clone(), 360.0);
        assert_eq!(out, p);
        assert_eq!(a.hijacked_packets(), 0);
        assert!(a.active_at(1500));
        assert!(!a.active_at(2000), "end is exclusive");
    }

    #[test]
    fn substitute_swaps_waveform() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let mut a = Attacker::new(
            AttackMode::Substitute {
                donor: donor.clone(),
            },
            0,
            10_000,
            0,
        );
        let out = a.intercept(100, ecg_packet(360, 180), 360.0);
        assert_eq!(out.samples[..], donor.ecg[360..540]);
        assert_eq!(a.hijacked_packets(), 1);
    }

    #[test]
    fn abp_packets_pass_untouched() {
        let mut a = Attacker::new(AttackMode::Freeze, 0, 10_000, 0);
        let p = SensorPacket {
            stream: Stream::Abp,
            seq: 0,
            start_sample: 0,
            samples: vec![80.0; 100],
            peaks: vec![50],
        };
        assert_eq!(a.intercept(100, p.clone(), 360.0), p);
    }

    #[test]
    fn freeze_holds_last_seen_value() {
        let mut a = Attacker::new(AttackMode::Freeze, 1000, 2000, 0);
        // Before the window: attacker observes the stream.
        let mut warm = ecg_packet(0, 10);
        warm.samples = vec![0.1, 0.2, 0.9];
        a.intercept(500, warm, 360.0);
        let out = a.intercept(1500, ecg_packet(360, 10), 360.0);
        assert!(out.samples.iter().all(|&v| v == 0.9));
        assert!(out.peaks.is_empty());
    }

    #[test]
    fn replay_shifts_backwards() {
        let source = physio_sim::record::Record::synthesize(&bank()[0], 20.0, 3);
        let mut a = Attacker::new(
            AttackMode::Replay {
                offset_s: 5.0,
                source: source.clone(),
            },
            0,
            60_000,
            0,
        );
        let out = a.intercept(100, ecg_packet(3600, 360), 360.0);
        // 3600 − 5·360 = 1800.
        assert_eq!(out.samples[..], source.ecg[1800..2160]);
    }

    #[test]
    fn noise_injection_perturbs_samples() {
        let mut a = Attacker::new(AttackMode::NoiseInject { amplitude_mv: 0.5 }, 0, 10_000, 9);
        let clean = ecg_packet(0, 360);
        let out = a.intercept(1, clean.clone(), 360.0);
        assert_ne!(out.samples, clean.samples);
        assert!(out
            .samples
            .iter()
            .zip(&clean.samples)
            .all(|(o, c)| (o - c).abs() <= 0.5));
    }

    #[test]
    fn mode_names() {
        assert_eq!(AttackMode::Freeze.name(), "freeze");
        assert_eq!(
            AttackMode::NoiseInject { amplitude_mv: 1.0 }.name(),
            "noise-inject"
        );
    }

    #[test]
    #[should_panic(expected = "attack window")]
    fn empty_window_rejected() {
        let _ = Attacker::new(AttackMode::Freeze, 5, 5, 0);
    }

    #[test]
    fn same_seed_different_windows_decorrelate() {
        let noise = || AttackMode::NoiseInject { amplitude_mv: 0.5 };
        let mut a = Attacker::new(noise(), 0, 10_000, 42);
        let mut b = Attacker::new(noise(), 0, 20_000, 42);
        let mut c = Attacker::new(noise(), 0, 10_000, 42);
        let p = ecg_packet(0, 360);
        let pa = a.intercept(1, p.clone(), 360.0);
        let pb = b.intercept(1, p.clone(), 360.0);
        let pc = c.intercept(1, p.clone(), 360.0);
        assert_ne!(pa.samples, pb.samples, "windows must split the stream");
        assert_eq!(pa.samples, pc.samples, "same (seed, window) must replay");
    }

    #[test]
    fn mimicry_interpolates_between_victim_and_donor() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let full = |b| AttackMode::Mimicry {
            donor: donor.clone(),
            blend_permille: b,
        };
        let p = ecg_packet(360, 180);
        let mut sub = Attacker::new(
            AttackMode::Substitute {
                donor: donor.clone(),
            },
            0,
            10_000,
            0,
        );
        let subbed = sub.intercept(100, p.clone(), 360.0);
        let mut hi = Attacker::new(full(1000), 0, 10_000, 0);
        let hi_out = hi.intercept(100, p.clone(), 360.0);
        assert_eq!(hi_out.samples, subbed.samples, "‰1000 degenerates to substitution");
        assert_eq!(hi_out.peaks, subbed.peaks);
        let mut lo = Attacker::new(full(0), 0, 10_000, 0);
        let lo_out = lo.intercept(100, p.clone(), 360.0);
        assert_eq!(lo_out.samples, p.samples, "‰0 leaves the waveform");
        assert_eq!(lo.hijacked_packets(), 1, "but still counts as tampering");
        let mut mid = Attacker::new(full(500), 0, 10_000, 0);
        let mid_out = mid.intercept(100, p.clone(), 360.0);
        for ((m, v), d) in mid_out.samples.iter().zip(&p.samples).zip(&subbed.samples) {
            assert!((m - 0.5 * (v + d)).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_window_tampering_respects_coverage() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let mut a = Attacker::new(
            AttackMode::PartialWindow {
                donor: donor.clone(),
                window_ms: 8000,
                coverage_permille: 250,
            },
            0,
            60_000,
            0,
        );
        let early = a.intercept(500, ecg_packet(180, 180), 360.0);
        assert_eq!(early.samples[..], donor.ecg[180..360], "prefix is injected");
        let late = a.intercept(4000, ecg_packet(1440, 180), 360.0);
        assert_eq!(late.samples, vec![0.5; 180], "tail stays genuine");
        assert_eq!(a.hijacked_packets(), 1);
        // Second window's prefix is injected again.
        let wrap = a.intercept(8100, ecg_packet(2880, 180), 360.0);
        assert_ne!(wrap.samples, vec![0.5; 180]);
    }

    #[test]
    fn replay_snr_is_a_noisy_replay() {
        let source = physio_sim::record::Record::synthesize(&bank()[0], 20.0, 3);
        let clean = |p: SensorPacket| {
            let mut a = Attacker::new(
                AttackMode::Replay {
                    offset_s: 5.0,
                    source: source.clone(),
                },
                0,
                60_000,
                0,
            );
            a.intercept(100, p, 360.0)
        };
        let mut noisy = Attacker::new(
            AttackMode::ReplaySnr {
                offset_s: 5.0,
                source: source.clone(),
                snr_db: 10.0,
            },
            0,
            60_000,
            0,
        );
        let p = ecg_packet(3600, 360);
        let r_clean = clean(p.clone());
        let r_noisy = noisy.intercept(100, p, 360.0);
        assert_ne!(r_noisy.samples, r_clean.samples);
        // Residual power sits near the requested −10 dB of signal power.
        let len = r_clean.samples.len() as f64;
        let mean = r_clean.samples.iter().sum::<f64>() / len;
        let sig: f64 =
            r_clean.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / len;
        let noise: f64 = r_noisy
            .samples
            .iter()
            .zip(&r_clean.samples)
            .map(|(n, c)| (n - c).powi(2))
            .sum::<f64>()
            / len;
        let snr = 10.0 * (sig / noise).log10();
        assert!((5.0..15.0).contains(&snr), "snr {snr} dB");
    }

    #[test]
    fn adaptive_bisection_converges_on_the_threshold() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let mut a = Attacker::new(
            AttackMode::Adaptive {
                donor: donor.clone(),
            },
            0,
            60_000,
            0,
        );
        assert!(a.wants_feedback());
        assert_eq!(a.adaptive_blend(), 500);
        // Hidden detector threshold: alerts iff blend ≥ 333 ‰.
        let theta = 333u16;
        for k in 1..=10u32 {
            let blend = a.adaptive_blend();
            a.feedback(blend >= theta);
            let (lo, hi, probes) = a.adaptive_state().unwrap();
            assert!(lo < theta && theta <= hi, "bracket lost θ: [{lo}, {hi}]");
            // Integer midpoints can leave the bracket one wider than
            // the ideal 1000/2^k halving.
            assert!(
                u32::from(hi - lo) <= (1000 >> k.min(9)) + 1,
                "bracket not halving: width {} after {k} probes",
                hi - lo
            );
            assert_eq!(probes, u64::from(k));
        }
        let blend = a.adaptive_blend();
        assert!(blend.abs_diff(theta) <= 2, "converged blend {blend} vs θ {theta}");
        // Non-adaptive attackers ignore feedback.
        let mut f = Attacker::new(AttackMode::Freeze, 0, 1000, 0);
        assert!(!f.wants_feedback());
        assert_eq!(f.adaptive_state(), None);
        f.feedback(true);
        assert_eq!(f.adaptive_state(), None);
    }

    #[test]
    fn class_indexes_and_names_are_consistent() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 2.0, 1);
        let modes = [
            AttackMode::Substitute {
                donor: donor.clone(),
            },
            AttackMode::Replay {
                offset_s: 1.0,
                source: donor.clone(),
            },
            AttackMode::Freeze,
            AttackMode::NoiseInject { amplitude_mv: 0.5 },
            AttackMode::Mimicry {
                donor: donor.clone(),
                blend_permille: 700,
            },
            AttackMode::ReplaySnr {
                offset_s: 1.0,
                source: donor.clone(),
                snr_db: 10.0,
            },
            AttackMode::PartialWindow {
                donor: donor.clone(),
                window_ms: 8000,
                coverage_permille: 250,
            },
            AttackMode::Coordinated {
                donor: donor.clone(),
            },
            AttackMode::Adaptive { donor },
        ];
        assert_eq!(modes.len(), ATTACK_CLASS_COUNT);
        for (i, m) in modes.iter().enumerate() {
            assert_eq!(m.class_index(), i);
            assert_eq!(m.name(), ATTACK_CLASS_NAMES[i]);
        }
    }

    #[test]
    fn coordinated_is_substitution_with_its_own_tag() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let mut s = Attacker::new(
            AttackMode::Substitute {
                donor: donor.clone(),
            },
            0,
            10_000,
            0,
        );
        let mut c = Attacker::new(AttackMode::Coordinated { donor }, 0, 10_000, 0);
        let p = ecg_packet(360, 180);
        assert_eq!(
            s.intercept(100, p.clone(), 360.0).samples,
            c.intercept(100, p, 360.0).samples
        );
        assert_ne!(s.mode().class_index(), c.mode().class_index());
    }
}

#[cfg(test)]
mod short_source_tests {
    use super::*;
    use crate::device::{SensorPacket, Stream};
    use physio_sim::record::Record;
    use physio_sim::subject::bank;

    fn big_packet() -> SensorPacket {
        SensorPacket {
            stream: Stream::Ecg,
            seq: 0,
            start_sample: 0,
            samples: vec![0.3; 720],
            peaks: vec![],
        }
    }

    #[test]
    fn substitute_with_short_donor_passes_through() {
        let donor = Record::synthesize(&bank()[1], 1.0, 1); // 360 samples < 720
        let mut a = Attacker::new(AttackMode::Substitute { donor }, 0, 10_000, 0);
        let p = big_packet();
        let out = a.intercept(5, p.clone(), 360.0);
        assert_eq!(out, p, "short donor cannot tamper");
        assert_eq!(a.hijacked_packets(), 0);
    }

    #[test]
    fn replay_with_short_source_passes_through() {
        let source = Record::synthesize(&bank()[0], 1.0, 2);
        let mut a = Attacker::new(
            AttackMode::Replay {
                offset_s: 5.0,
                source,
            },
            0,
            10_000,
            0,
        );
        let p = big_packet();
        let out = a.intercept(5, p.clone(), 360.0);
        assert_eq!(out, p);
        assert_eq!(a.hijacked_packets(), 0);
    }
}
