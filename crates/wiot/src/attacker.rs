//! Sensor-hijacking attacker models.
//!
//! The paper defines sensor-hijacking as "attacks that prevent sensors
//! from accurately collecting or reporting their measurements" and lists
//! four vulnerability classes (§I): the communication channel, the
//! firmware-update process, the unprotected sensory channel, and direct
//! physical compromise. Each attack mode here is the canonical payload of
//! one class, applied as an on-path transformation of the victim's ECG
//! packet stream (the ABP reference is assumed trustworthy, as in the
//! paper's threat model).

use crate::device::{SensorPacket, Stream};
use physio_sim::record::Record;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the adversary does to hijacked ECG packets.
#[derive(Debug, Clone)]
pub enum AttackMode {
    /// Channel compromise: substitute another person's ECG (the paper's
    /// Table II attack).
    Substitute {
        /// The donor recording supplying the fake waveform.
        donor: Record,
    },
    /// Firmware compromise: replay the victim's own ECG from `offset_s`
    /// seconds earlier (reporting *old* measurements).
    Replay {
        /// How far back the replayed data comes from.
        offset_s: f64,
        /// The victim's own recording the replay is cut from.
        source: Record,
    },
    /// Physical compromise: the sensor freezes at its last value.
    Freeze,
    /// Sensory-channel injection: additive interference of the given
    /// amplitude (EMI-style, cf. Ghost Talk).
    NoiseInject {
        /// Amplitude of the injected disturbance, in millivolts.
        amplitude_mv: f64,
    },
}

impl AttackMode {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AttackMode::Substitute { .. } => "substitute",
            AttackMode::Replay { .. } => "replay",
            AttackMode::Freeze => "freeze",
            AttackMode::NoiseInject { .. } => "noise-inject",
        }
    }
}

/// An adversary active during `[start_ms, end_ms)` on the ECG stream.
#[derive(Debug, Clone)]
pub struct Attacker {
    mode: AttackMode,
    start_ms: u64,
    end_ms: u64,
    rng: StdRng,
    hijacked_packets: u64,
    last_value: f64,
}

impl Attacker {
    /// Create an attacker active over the given window.
    ///
    /// # Panics
    ///
    /// Panics if `start_ms >= end_ms`.
    pub fn new(mode: AttackMode, start_ms: u64, end_ms: u64, seed: u64) -> Self {
        assert!(start_ms < end_ms, "attack window must be non-empty");
        Self {
            mode,
            start_ms,
            end_ms,
            rng: StdRng::seed_from_u64(seed),
            hijacked_packets: 0,
            last_value: 0.0,
        }
    }

    /// Whether the attack is active at `now_ms`.
    pub fn active_at(&self, now_ms: u64) -> bool {
        (self.start_ms..self.end_ms).contains(&now_ms)
    }

    /// The attack window `[start_ms, end_ms)`.
    pub fn window_ms(&self) -> (u64, u64) {
        (self.start_ms, self.end_ms)
    }

    /// The attack mode.
    pub fn mode(&self) -> &AttackMode {
        &self.mode
    }

    /// Packets tampered with so far.
    pub fn hijacked_packets(&self) -> u64 {
        self.hijacked_packets
    }

    /// Intercept a packet in flight at `now_ms`. ECG packets inside the
    /// attack window are tampered with; everything else passes through.
    pub fn intercept(&mut self, now_ms: u64, mut packet: SensorPacket, fs: f64) -> SensorPacket {
        if packet.stream != Stream::Ecg || !self.active_at(now_ms) {
            if packet.stream == Stream::Ecg {
                self.last_value = *packet.samples.last().unwrap_or(&0.0);
            }
            return packet;
        }
        self.hijacked_packets += 1;
        match &self.mode {
            AttackMode::Substitute { donor } => {
                let len = packet.samples.len();
                if donor.ecg.len() < len {
                    // Not enough donor material for even one chunk: the
                    // attack degrades to a passthrough.
                    self.hijacked_packets -= 1;
                    return packet;
                }
                let start = packet.start_sample % (donor.ecg.len() - len).max(1);
                packet
                    .samples
                    .copy_from_slice(&donor.ecg[start..start + len]);
                packet.peaks = donor
                    .r_peaks
                    .iter()
                    .filter(|&&p| p >= start && p < start + len)
                    .map(|&p| p - start)
                    .collect();
            }
            AttackMode::Replay { offset_s, source } => {
                let len = packet.samples.len();
                if source.ecg.len() < len {
                    self.hijacked_packets -= 1;
                    return packet;
                }
                let shift = (offset_s * fs).round() as usize;
                let start = packet.start_sample.saturating_sub(shift);
                let start = start.min(source.ecg.len() - len);
                packet
                    .samples
                    .copy_from_slice(&source.ecg[start..start + len]);
                packet.peaks = source
                    .r_peaks
                    .iter()
                    .filter(|&&p| p >= start && p < start + len)
                    .map(|&p| p - start)
                    .collect();
            }
            AttackMode::Freeze => {
                let v = self.last_value;
                packet.samples.fill(v);
                packet.peaks.clear();
            }
            AttackMode::NoiseInject { amplitude_mv } => {
                let a = *amplitude_mv;
                for s in &mut packet.samples {
                    *s += self.rng.gen_range(-a..a);
                }
                // Injected interference corrupts the sensor's local peak
                // detection: spurious peaks appear.
                let extra = self.rng.gen_range(0..3);
                for _ in 0..extra {
                    let idx = self.rng.gen_range(0..packet.samples.len());
                    packet.peaks.push(idx);
                }
                packet.peaks.sort_unstable();
                packet.peaks.dedup();
            }
        }
        packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use physio_sim::subject::bank;

    fn ecg_packet(start_sample: usize, len: usize) -> SensorPacket {
        SensorPacket {
            stream: Stream::Ecg,
            seq: (start_sample / len) as u64,
            start_sample,
            samples: vec![0.5; len],
            peaks: vec![len / 2],
        }
    }

    #[test]
    fn inactive_outside_window() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let mut a = Attacker::new(AttackMode::Substitute { donor }, 1000, 2000, 0);
        let p = ecg_packet(0, 180);
        let out = a.intercept(500, p.clone(), 360.0);
        assert_eq!(out, p);
        assert_eq!(a.hijacked_packets(), 0);
        assert!(a.active_at(1500));
        assert!(!a.active_at(2000), "end is exclusive");
    }

    #[test]
    fn substitute_swaps_waveform() {
        let donor = physio_sim::record::Record::synthesize(&bank()[1], 10.0, 1);
        let mut a = Attacker::new(
            AttackMode::Substitute {
                donor: donor.clone(),
            },
            0,
            10_000,
            0,
        );
        let out = a.intercept(100, ecg_packet(360, 180), 360.0);
        assert_eq!(out.samples[..], donor.ecg[360..540]);
        assert_eq!(a.hijacked_packets(), 1);
    }

    #[test]
    fn abp_packets_pass_untouched() {
        let mut a = Attacker::new(AttackMode::Freeze, 0, 10_000, 0);
        let p = SensorPacket {
            stream: Stream::Abp,
            seq: 0,
            start_sample: 0,
            samples: vec![80.0; 100],
            peaks: vec![50],
        };
        assert_eq!(a.intercept(100, p.clone(), 360.0), p);
    }

    #[test]
    fn freeze_holds_last_seen_value() {
        let mut a = Attacker::new(AttackMode::Freeze, 1000, 2000, 0);
        // Before the window: attacker observes the stream.
        let mut warm = ecg_packet(0, 10);
        warm.samples = vec![0.1, 0.2, 0.9];
        a.intercept(500, warm, 360.0);
        let out = a.intercept(1500, ecg_packet(360, 10), 360.0);
        assert!(out.samples.iter().all(|&v| v == 0.9));
        assert!(out.peaks.is_empty());
    }

    #[test]
    fn replay_shifts_backwards() {
        let source = physio_sim::record::Record::synthesize(&bank()[0], 20.0, 3);
        let mut a = Attacker::new(
            AttackMode::Replay {
                offset_s: 5.0,
                source: source.clone(),
            },
            0,
            60_000,
            0,
        );
        let out = a.intercept(100, ecg_packet(3600, 360), 360.0);
        // 3600 − 5·360 = 1800.
        assert_eq!(out.samples[..], source.ecg[1800..2160]);
    }

    #[test]
    fn noise_injection_perturbs_samples() {
        let mut a = Attacker::new(AttackMode::NoiseInject { amplitude_mv: 0.5 }, 0, 10_000, 9);
        let clean = ecg_packet(0, 360);
        let out = a.intercept(1, clean.clone(), 360.0);
        assert_ne!(out.samples, clean.samples);
        assert!(out
            .samples
            .iter()
            .zip(&clean.samples)
            .all(|(o, c)| (o - c).abs() <= 0.5));
    }

    #[test]
    fn mode_names() {
        assert_eq!(AttackMode::Freeze.name(), "freeze");
        assert_eq!(
            AttackMode::NoiseInject { amplitude_mv: 1.0 }.name(),
            "noise-inject"
        );
    }

    #[test]
    #[should_panic(expected = "attack window")]
    fn empty_window_rejected() {
        let _ = Attacker::new(AttackMode::Freeze, 5, 5, 0);
    }
}

#[cfg(test)]
mod short_source_tests {
    use super::*;
    use crate::device::{SensorPacket, Stream};
    use physio_sim::record::Record;
    use physio_sim::subject::bank;

    fn big_packet() -> SensorPacket {
        SensorPacket {
            stream: Stream::Ecg,
            seq: 0,
            start_sample: 0,
            samples: vec![0.3; 720],
            peaks: vec![],
        }
    }

    #[test]
    fn substitute_with_short_donor_passes_through() {
        let donor = Record::synthesize(&bank()[1], 1.0, 1); // 360 samples < 720
        let mut a = Attacker::new(AttackMode::Substitute { donor }, 0, 10_000, 0);
        let p = big_packet();
        let out = a.intercept(5, p.clone(), 360.0);
        assert_eq!(out, p, "short donor cannot tamper");
        assert_eq!(a.hijacked_packets(), 0);
    }

    #[test]
    fn replay_with_short_source_passes_through() {
        let source = Record::synthesize(&bank()[0], 1.0, 2);
        let mut a = Attacker::new(
            AttackMode::Replay {
                offset_s: 5.0,
                source,
            },
            0,
            10_000,
            0,
        );
        let p = big_packet();
        let out = a.intercept(5, p.clone(), 360.0);
        assert_eq!(out, p);
        assert_eq!(a.hijacked_packets(), 0);
    }
}
