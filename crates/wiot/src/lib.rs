//! The wearable-IoT environment around the Amulet base station
//! (paper Fig. 1, realized as an executable system).
//!
//! A WIoT environment is "various types of low-cost medical devices
//! (i.e., sensors) that form a distributed wireless network around the
//! user", forwarding measurements to an always-present, safety-critical
//! **base station**, which in turn forwards data to a resource-rich
//! **sink**. This crate builds that whole loop:
//!
//! * [`device`] — the ECG and ABP body sensors, packetizing their
//!   measurements,
//! * [`channel`] — the lossy, jittery wireless hop between sensor and
//!   base station, with Bernoulli and Gilbert–Elliott burst-loss
//!   models, duplication, reordering, and payload corruption,
//! * [`transport`] — a lightweight ARQ (gap NACKs, bounded retransmit
//!   buffer, retry budget with exponential backoff) recovering most
//!   losses before the detector sees them,
//! * [`faults`] — a timed fault-injection plan (link degradation,
//!   sensor dropout/stuck-at, device reboot, clock drift) for
//!   robustness testing,
//! * [`attacker`] — sensor-hijacking adversaries covering the paper's
//!   four vulnerability classes (§I): channel compromise, firmware
//!   compromise (replay), sensory-channel injection (noise), and
//!   physical compromise (freeze),
//! * [`campaign`] — the adversary campaign engine: population-scale
//!   victim cohorts, multi-wave attack schedules over the extended
//!   attack-class taxonomy (mimicry, replay-at-SNR, partial-window,
//!   coordinated, adaptive), and per-class detection matrices with
//!   integer Wilson confidence bounds,
//! * [`basestation`] — the Amulet running the SIFT detector app on the
//!   reassembled sensor streams,
//! * [`sink`] — history storage and alert collection,
//! * [`adaptive`] — the paper's Insight #4: a decision engine that picks
//!   the detector version from static and dynamic resource constraints,
//! * [`persist`] — crash-consistent checkpointing of the detector and
//!   adaptive state to the simulated FRAM, so a brownout reboot resumes
//!   detection without re-enrollment,
//! * [`survival`] — the battery- and channel-aware graceful-degradation
//!   policy: a closed loop that walks detector version, sampling duty
//!   cycle, and transport retry budget down (and back up) with
//!   hysteresis as charge drains and the link degrades,
//! * [`scenario`] — a deterministic scenario runner gluing everything
//!   together and scoring detection performance end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod attacker;
pub mod basestation;
pub mod campaign;
pub mod channel;
pub mod device;
pub mod faults;
pub mod fleet;
pub mod persist;
pub mod scenario;
pub mod sink;
pub mod slab;
pub mod survival;
pub mod transport;

mod error;

pub use error::WiotError;
