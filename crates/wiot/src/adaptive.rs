//! Adaptive security: the paper's Insight #4, implemented.
//!
//! "We envision an adaptive security model with the ability to
//! automatically adjust the security level by switching between different
//! versions of one security app based on the available resources. …
//! The core of this model is a *decision engine*, which can automatically
//! detect any types of constraints during compile time and runtime, and
//! decide which version of security app to run."
//!
//! [`DecisionEngine`] consumes a [`ResourceSnapshot`] (the dynamic
//! constraints) plus the per-version footprints (the static constraints)
//! and picks the strongest detector version the device can currently
//! afford, with hysteresis and a minimum dwell time so the system does
//! not thrash at a threshold.

use sift::features::Version;

/// Dynamic resource constraints sampled at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSnapshot {
    /// Battery state of charge, `[0, 1]`.
    pub battery_fraction: f64,
    /// FRAM still available for app installation, bytes.
    pub fram_free_bytes: usize,
    /// Fraction of CPU time not yet committed, `[0, 1]`.
    pub cpu_headroom: f64,
}

/// Static per-version requirements the engine checks installability
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionRequirements {
    /// Version described.
    pub version: Version,
    /// FRAM the version needs (app + extra libraries), bytes.
    pub fram_bytes: usize,
    /// CPU duty cycle the version needs, `[0, 1]`.
    pub duty_cycle: f64,
}

/// Observed quality of the sensor → base-station links, as reported by
/// the channel and ARQ layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Fraction of offered packets the channel lost, `[0, 1]`.
    pub loss_rate: f64,
    /// ARQ retransmissions per first-time data packet.
    pub retransmit_rate: f64,
}

impl LinkQuality {
    /// Scalar badness of the link in `[0, 1]`: loss plus the energy
    /// drag of retransmissions (each retransmit costs roughly one
    /// packet's airtime, so it weighs like loss, capped).
    fn badness(&self) -> f64 {
        (self.loss_rate + 0.5 * self.retransmit_rate).clamp(0.0, 1.0)
    }

    /// The same scalar badness as integer permille in `[0, 1000]` —
    /// the fixed-point form the device-side survival policy
    /// ([`crate::survival`]) consumes. Non-finite inputs saturate to
    /// fully bad (a link whose statistics are broken should not be
    /// trusted).
    pub fn badness_permille(&self) -> u16 {
        let b = self.badness();
        if b.is_finite() {
            (b * 1000.0).round() as u16
        } else {
            1000
        }
    }
}

/// Decision-engine policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// Battery fraction above which the full detector runs.
    pub original_above: f64,
    /// Battery fraction above which at least the simplified detector
    /// runs (below it, reduced).
    pub simplified_above: f64,
    /// Hysteresis margin applied when *upgrading* (the battery must
    /// exceed the threshold by this much).
    pub hysteresis: f64,
    /// Minimum time between switches, ms.
    pub min_dwell_ms: u64,
    /// Smoothed link badness (loss + retransmission drag) above which
    /// the engine refuses to run the full detector: on a degraded link
    /// the radio is already eating the energy budget and windows arrive
    /// sparse, so the heavyweight version buys little.
    pub degrade_loss_above: f64,
    /// EWMA smoothing factor for link-quality observations, `(0, 1]`.
    pub link_ewma_alpha: f64,
}

impl Default for Policy {
    fn default() -> Self {
        Self {
            original_above: 0.5,
            simplified_above: 0.2,
            hysteresis: 0.05,
            min_dwell_ms: 60_000,
            degrade_loss_above: 0.15,
            link_ewma_alpha: 0.3,
        }
    }
}

/// The persistable core of a [`DecisionEngine`]: everything needed to
/// resume adaptive decisions after a reboot. The switch history is
/// telemetry, not state, and is deliberately not part of the snapshot;
/// `crate::persist` provides a fixed-size byte codec for this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSnapshot {
    /// Version currently deployed.
    pub current: Version,
    /// When the engine last switched, ms (`None` before any switch).
    pub last_switch_ms: Option<u64>,
    /// Smoothed link badness (`None` before any observation).
    pub link_badness_ewma: Option<f64>,
}

/// A recorded version switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Switch {
    /// When it happened, ms.
    pub at_ms: u64,
    /// Version switched away from.
    pub from: Version,
    /// Version switched to.
    pub to: Version,
}

/// The adaptive-security decision engine.
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    policy: Policy,
    requirements: Vec<VersionRequirements>,
    current: Version,
    last_switch_ms: Option<u64>,
    history: Vec<Switch>,
    /// Smoothed link badness; `None` until the first observation, so a
    /// deployment that never reports link quality behaves exactly as
    /// before.
    link_badness_ewma: Option<f64>,
}

impl DecisionEngine {
    /// Create an engine currently running `initial`, with the static
    /// requirements of every available version.
    pub fn new(initial: Version, requirements: Vec<VersionRequirements>, policy: Policy) -> Self {
        Self {
            policy,
            requirements,
            current: initial,
            last_switch_ms: None,
            history: Vec::new(),
            link_badness_ewma: None,
        }
    }

    /// Feed one link-quality observation into the engine's smoothed
    /// view — the hook the base station / scenario runner calls with
    /// the channel and transport counters.
    pub fn observe_link(&mut self, quality: &LinkQuality) {
        let alpha = self.policy.link_ewma_alpha.clamp(0.0, 1.0);
        let b = quality.badness();
        self.link_badness_ewma = Some(match self.link_badness_ewma {
            Some(prev) => prev + alpha * (b - prev),
            None => b,
        });
    }

    /// The engine's current smoothed link badness, if any observation
    /// arrived yet.
    pub fn link_badness(&self) -> Option<f64> {
        self.link_badness_ewma
    }

    /// The version currently deployed.
    pub fn current(&self) -> Version {
        self.current
    }

    /// The engine's persistable state (checkpointed alongside the
    /// detector by `crate::persist`).
    pub fn snapshot(&self) -> AdaptiveSnapshot {
        AdaptiveSnapshot {
            current: self.current,
            last_switch_ms: self.last_switch_ms,
            link_badness_ewma: self.link_badness_ewma,
        }
    }

    /// Resume from a snapshot taken by [`DecisionEngine::snapshot`]:
    /// the deployed version, dwell clock, and smoothed link view pick
    /// up where the pre-reboot engine left off. The switch history
    /// restarts empty (it is a per-boot log).
    pub fn restore(&mut self, snapshot: &AdaptiveSnapshot) {
        self.current = snapshot.current;
        self.last_switch_ms = snapshot.last_switch_ms;
        self.link_badness_ewma = snapshot.link_badness_ewma;
    }

    /// All switches performed.
    pub fn history(&self) -> &[Switch] {
        &self.history
    }

    /// Whether `version` satisfies the static constraints under `snap`.
    fn installable(&self, version: Version, snap: &ResourceSnapshot) -> bool {
        self.requirements
            .iter()
            .find(|r| r.version == version)
            .is_some_and(|r| {
                r.fram_bytes <= snap.fram_free_bytes && r.duty_cycle <= snap.cpu_headroom
            })
    }

    /// The version the dynamic (battery) policy asks for, ignoring
    /// static constraints.
    fn desired_by_battery(&self, battery: f64) -> Version {
        let p = &self.policy;
        // Hysteresis: upgrading requires clearing the threshold by the
        // margin; downgrading happens at the bare threshold.
        let (orig_cut, simp_cut) = match self.current {
            Version::Original => (p.original_above, p.simplified_above),
            Version::Simplified => (p.original_above + p.hysteresis, p.simplified_above),
            Version::Reduced => (
                p.original_above + p.hysteresis,
                p.simplified_above + p.hysteresis,
            ),
        };
        if battery >= orig_cut {
            Version::Original
        } else if battery >= simp_cut {
            Version::Simplified
        } else {
            Version::Reduced
        }
    }

    /// Evaluate the constraints at `now_ms`; returns `Some(new_version)`
    /// when the engine decides to switch (and records it).
    pub fn decide(&mut self, now_ms: u64, snap: &ResourceSnapshot) -> Option<Version> {
        if let Some(last) = self.last_switch_ms {
            if now_ms.saturating_sub(last) < self.policy.min_dwell_ms {
                return None;
            }
        }
        let mut target = self.desired_by_battery(snap.battery_fraction);
        // A persistently bad link caps the deployment at simplified:
        // windows arrive sparse and the radio dominates the budget.
        if self
            .link_badness_ewma
            .is_some_and(|b| b > self.policy.degrade_loss_above)
            && target == Version::Original
        {
            target = Version::Simplified;
        }
        // Degrade until the static constraints are satisfiable; if
        // nothing fits, hold the current version.
        let order = [Version::Original, Version::Simplified, Version::Reduced];
        target = order
            .iter()
            .copied()
            .skip_while(|&v| v != target)
            .find(|&v| self.installable(v, snap))?;
        if target == self.current {
            return None;
        }
        self.history.push(Switch {
            at_ms: now_ms,
            from: self.current,
            to: target,
        });
        self.current = target;
        self.last_switch_ms = Some(now_ms);
        Some(target)
    }

    /// [`DecisionEngine::observe_link`] followed by
    /// [`DecisionEngine::decide`]: the one-call form for runners that
    /// sample link quality and constraints at the same cadence.
    pub fn decide_with_link(
        &mut self,
        now_ms: u64,
        snap: &ResourceSnapshot,
        quality: &LinkQuality,
    ) -> Option<Version> {
        self.observe_link(quality);
        self.decide(now_ms, snap)
    }
}

/// Requirements derived from the platform's own profiler — the
/// "compile time" half of the engine's inputs.
pub fn requirements_from_profiler(config: &sift::config::SiftConfig) -> Vec<VersionRequirements> {
    Version::ALL
        .iter()
        .map(|&v| {
            let model_bytes = ml::embedded::encoded_len(v.feature_count());
            let spec = amulet_sim::profiler::sift_app_spec(v, config, model_bytes);
            let libs: usize = spec.libs.iter().map(|l| l.fram_bytes()).sum();
            VersionRequirements {
                version: v,
                fram_bytes: spec.fram_total_bytes() + libs,
                duty_cycle: spec.duty_cycle(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roomy(battery: f64) -> ResourceSnapshot {
        ResourceSnapshot {
            battery_fraction: battery,
            fram_free_bytes: 60_000,
            cpu_headroom: 1.0,
        }
    }

    fn engine() -> DecisionEngine {
        DecisionEngine::new(
            Version::Original,
            requirements_from_profiler(&sift::config::SiftConfig::default()),
            Policy {
                min_dwell_ms: 0,
                ..Policy::default()
            },
        )
    }

    #[test]
    fn battery_drain_degrades_versions_in_order() {
        let mut e = engine();
        assert_eq!(e.decide(0, &roomy(0.9)), None, "already original");
        assert_eq!(e.decide(1, &roomy(0.45)), Some(Version::Simplified));
        assert_eq!(e.decide(2, &roomy(0.15)), Some(Version::Reduced));
        assert_eq!(e.history().len(), 2);
    }

    #[test]
    fn recharge_upgrades_with_hysteresis() {
        let mut e = engine();
        e.decide(0, &roomy(0.1)); // → reduced
                                  // At exactly the simplified threshold the upgrade is held back by
                                  // the hysteresis margin…
        assert_eq!(e.decide(1, &roomy(0.21)), None);
        // …but clears it with margin.
        assert_eq!(e.decide(2, &roomy(0.30)), Some(Version::Simplified));
        assert_eq!(e.decide(3, &roomy(0.56)), Some(Version::Original));
    }

    #[test]
    fn static_constraint_overrides_battery() {
        let mut e = engine();
        e.decide(0, &roomy(0.1)); // reduced
                                  // Full battery but almost no free FRAM: the float versions need
                                  // their libraries, which don't fit — stay reduced.
        let tight = ResourceSnapshot {
            battery_fraction: 1.0,
            fram_free_bytes: 4_000,
            cpu_headroom: 1.0,
        };
        assert_eq!(e.decide(1, &tight), None);
        assert_eq!(e.current(), Version::Reduced);
    }

    #[test]
    fn cpu_headroom_is_a_constraint() {
        let mut e = engine();
        e.decide(0, &roomy(0.1)); // reduced
        let busy = ResourceSnapshot {
            battery_fraction: 1.0,
            fram_free_bytes: 60_000,
            cpu_headroom: 0.01,
        };
        // Original needs ~5–8 % duty; with 1 % headroom only reduced fits.
        assert_eq!(e.decide(1, &busy), None);
        assert_eq!(e.current(), Version::Reduced);
    }

    #[test]
    fn dwell_time_prevents_thrashing() {
        let mut e = DecisionEngine::new(
            Version::Original,
            requirements_from_profiler(&sift::config::SiftConfig::default()),
            Policy {
                min_dwell_ms: 10_000,
                ..Policy::default()
            },
        );
        assert_eq!(e.decide(0, &roomy(0.1)), Some(Version::Reduced));
        // Battery recovers immediately, but the dwell gate holds.
        assert_eq!(e.decide(5_000, &roomy(0.9)), None);
        assert_eq!(e.decide(10_000, &roomy(0.9)), Some(Version::Original));
    }

    #[test]
    fn bad_link_caps_deployment_at_simplified() {
        let mut e = engine();
        // Plenty of battery, but the link is terrible.
        for _ in 0..10 {
            e.observe_link(&LinkQuality {
                loss_rate: 0.35,
                retransmit_rate: 0.5,
            });
        }
        assert_eq!(e.decide(0, &roomy(0.9)), Some(Version::Simplified));
        // Link recovers: the EWMA decays and the full version returns.
        for _ in 0..20 {
            e.observe_link(&LinkQuality {
                loss_rate: 0.0,
                retransmit_rate: 0.0,
            });
        }
        assert!(e.link_badness().unwrap() < 0.01);
        assert_eq!(e.decide(1, &roomy(0.9)), Some(Version::Original));
    }

    #[test]
    fn decide_with_link_is_one_call() {
        let mut e = engine();
        let q = LinkQuality {
            loss_rate: 0.5,
            retransmit_rate: 1.0,
        };
        assert_eq!(
            e.decide_with_link(0, &roomy(0.9), &q),
            Some(Version::Simplified)
        );
        assert!(e.link_badness().is_some());
    }

    #[test]
    fn clean_link_changes_nothing() {
        let mut e = engine();
        e.observe_link(&LinkQuality {
            loss_rate: 0.01,
            retransmit_rate: 0.02,
        });
        assert_eq!(e.decide(0, &roomy(0.9)), None);
        assert_eq!(e.current(), Version::Original);
    }

    #[test]
    fn nothing_fits_holds_current() {
        let mut e = engine();
        let hopeless = ResourceSnapshot {
            battery_fraction: 0.9,
            fram_free_bytes: 0,
            cpu_headroom: 0.0,
        };
        assert_eq!(e.decide(0, &hopeless), None);
        assert_eq!(e.current(), Version::Original);
    }

    #[test]
    fn snapshot_restore_resumes_dwell_and_link_state() {
        let mut e = DecisionEngine::new(
            Version::Original,
            requirements_from_profiler(&sift::config::SiftConfig::default()),
            Policy {
                min_dwell_ms: 10_000,
                ..Policy::default()
            },
        );
        e.observe_link(&LinkQuality {
            loss_rate: 0.2,
            retransmit_rate: 0.1,
        });
        assert_eq!(e.decide(5_000, &roomy(0.1)), Some(Version::Reduced));
        let snap = e.snapshot();
        // A rebooted engine restored from the snapshot behaves like the
        // original: the dwell gate still holds at 10 s, opens at 15 s.
        let mut fresh = DecisionEngine::new(
            Version::Original,
            requirements_from_profiler(&sift::config::SiftConfig::default()),
            Policy {
                min_dwell_ms: 10_000,
                ..Policy::default()
            },
        );
        fresh.restore(&snap);
        assert_eq!(fresh.current(), Version::Reduced);
        assert_eq!(fresh.link_badness(), e.link_badness());
        assert_eq!(fresh.decide(10_000, &roomy(0.9)), None);
        // The restored link view (badness 0.25 > 0.15) still caps the
        // upgrade at simplified, exactly as the pre-reboot engine would.
        assert_eq!(fresh.decide(15_000, &roomy(0.9)), Some(Version::Simplified));
    }

    #[test]
    fn requirements_cover_all_versions_and_order_by_weight() {
        let reqs = requirements_from_profiler(&sift::config::SiftConfig::default());
        assert_eq!(reqs.len(), 3);
        let get = |v: Version| reqs.iter().find(|r| r.version == v).unwrap();
        assert!(get(Version::Original).fram_bytes > get(Version::Simplified).fram_bytes);
        assert!(get(Version::Simplified).fram_bytes > get(Version::Reduced).fram_bytes);
        assert!(get(Version::Original).duty_cycle > get(Version::Reduced).duty_cycle);
    }
}

/// Outcome of one phase of an adaptive deployment (the stretch between
/// two version switches).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePhase {
    /// Version deployed during the phase.
    pub version: Version,
    /// Phase start, simulated hours.
    pub from_hour: f64,
    /// Phase end, simulated hours.
    pub to_hour: f64,
}

/// Result of [`simulate_adaptive_deployment`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// The deployment phases, in order.
    pub phases: Vec<AdaptivePhase>,
    /// Total lifetime achieved, days.
    pub lifetime_days: f64,
    /// Lifetime of the strongest static deployment (original), days.
    pub static_original_days: f64,
}

/// Fast-forward a whole-battery adaptive deployment: each simulated hour
/// drains the battery by the deployed version's average current; the
/// engine reevaluates and switches as thresholds are crossed. This is
/// the quantified version of the paper's Insight-#4 vision.
pub fn simulate_adaptive_deployment(
    config: &sift::config::SiftConfig,
    policy: Policy,
) -> AdaptiveReport {
    use amulet_sim::energy::EnergyModel;
    use amulet_sim::profiler::{sift_app_spec, ResourceProfiler};

    let energy = EnergyModel::default();
    let profiler = ResourceProfiler::default();
    let reqs = requirements_from_profiler(config);
    let mut engine = DecisionEngine::new(Version::Original, reqs, policy);

    let avg_current = |v: Version| {
        let model_bytes = ml::embedded::encoded_len(v.feature_count());
        let spec = sift_app_spec(v, config, model_bytes);
        profiler.profile(&[&spec]).avg_current_ua
    };
    let static_original_days = energy.lifetime_days(avg_current(Version::Original));

    let mut phases = Vec::new();
    let mut phase_start = 0.0f64;
    let mut battery_mah = energy.battery_mah;
    let mut hour = 0u64;
    while battery_mah > 0.0 && hour < 24 * 365 {
        let version = engine.current();
        battery_mah -= avg_current(version) / 1000.0;
        hour += 1;
        let snap = ResourceSnapshot {
            battery_fraction: (battery_mah / energy.battery_mah).max(0.0),
            fram_free_bytes: 60_000,
            cpu_headroom: 0.9,
        };
        if let Some(_next) = engine.decide(hour * 3_600_000, &snap) {
            phases.push(AdaptivePhase {
                version,
                from_hour: phase_start,
                to_hour: hour as f64,
            });
            phase_start = hour as f64;
        }
    }
    phases.push(AdaptivePhase {
        version: engine.current(),
        from_hour: phase_start,
        to_hour: hour as f64,
    });
    AdaptiveReport {
        phases,
        lifetime_days: hour as f64 / 24.0,
        static_original_days,
    }
}

#[cfg(test)]
mod deployment_tests {
    use super::*;

    #[test]
    fn adaptive_deployment_outlives_static_original() {
        let report =
            simulate_adaptive_deployment(&sift::config::SiftConfig::default(), Policy::default());
        assert!(
            report.lifetime_days > report.static_original_days * 1.2,
            "adaptive {:.1} d vs static {:.1} d",
            report.lifetime_days,
            report.static_original_days
        );
        // Three phases in version order, covering the whole deployment.
        let versions: Vec<Version> = report.phases.iter().map(|p| p.version).collect();
        assert_eq!(
            versions,
            vec![Version::Original, Version::Simplified, Version::Reduced]
        );
        assert_eq!(report.phases[0].from_hour, 0.0);
        for w in report.phases.windows(2) {
            assert_eq!(w[0].to_hour, w[1].from_hour, "phases must tile");
        }
    }

    #[test]
    fn dwell_policy_limits_switch_cadence() {
        let report = simulate_adaptive_deployment(
            &sift::config::SiftConfig::default(),
            Policy {
                min_dwell_ms: 24 * 3_600_000, // at most one switch a day
                ..Policy::default()
            },
        );
        for w in report.phases.windows(2) {
            assert!(w[1].from_hour - w[0].from_hour >= 24.0 - 1e-9);
        }
    }
}
