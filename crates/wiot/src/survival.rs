//! Battery- and channel-aware graceful degradation (the survival
//! policy).
//!
//! A [`SurvivalPolicy`] is the device-side closed control loop that
//! keeps detection alive all the way to battery cutoff instead of
//! dying mid-campaign. Once per simulated second the scenario runner
//! feeds it a [`SurvivalInputs`] sample — battery state of charge,
//! smoothed link badness, and detector backlog, all as integer
//! permille/counts — and the policy actuates three knobs, each with
//! hysteresis so an oscillating input cannot make it flap:
//!
//! * **detector version** (Original ↔ Simplified ↔ Reduced): the
//!   paper's Table III lever — the Reduced build roughly doubles
//!   lifetime over Original, so the policy walks down the version
//!   ladder as charge drains (and back up only with a hysteresis
//!   margin and a minimum dwell time),
//! * **sampling duty cycle** (skip N of M windows at the source):
//!   below half charge the sensors skip one window in four, below a
//!   quarter one in two, trading window coverage for radio and CPU
//!   energy,
//! * **transport retry budget**: under low battery the ARQ spends
//!   less on retransmissions (a smaller per-packet retry budget with
//!   a wider backoff), accepting salvage/drop instead of burning the
//!   radio on a bad link.
//!
//! Everything here is **fixed-point integer arithmetic** on `Copy`
//! types: the module is pinned to the analyzer's embedded profile
//! (`survival-embedded-profile`) because the decision logic is meant
//! to run on the Amulet's MSP430 where there is no FPU and a panic is
//! a bricked wearable. Floating point stays host-side (the scenario
//! runner converts its `f64` link statistics to permille before
//! calling in). The policy is a pure state machine — same input
//! sequence, same decisions — which is what makes fleet digests
//! byte-identical at any thread count with the policy enabled.
//!
//! Policy state round-trips through a 16-byte [`SurvivalSnapshot`]
//! appended to the FRAM detector checkpoint, so a brownout reboot
//! resumes the same version / duty / retry posture instead of
//! snapping back to full-power defaults.

use sift::features::Version;

/// Full scale of the fixed-point state-of-charge and link-badness
/// values: 1000 ‰ = full battery / fully bad link.
pub const PERMILLE_FULL: u16 = 1000;

/// Sentinel for [`SurvivalSnapshot::last_switch_tick`] meaning "never
/// switched yet" (no dwell restriction applies).
pub const NEVER_SWITCHED: u32 = u32::MAX;

/// Tuning knobs of the survival policy. All thresholds are integer
/// permille of battery state of charge (or link badness); all times
/// are policy ticks (the scenario steps the policy once per simulated
/// second, so ticks ≈ seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivalConfig {
    /// State of charge (‰) strictly above which the Original detector
    /// runs.
    pub original_above_permille: u16,
    /// State of charge (‰) strictly above which at least the
    /// Simplified detector runs; at or below, Reduced.
    pub simplified_above_permille: u16,
    /// Hysteresis margin (‰) added to a threshold when crossing it
    /// would *upgrade* (version, duty, or retry posture), so small
    /// oscillations around a threshold cannot flap the knobs.
    pub hysteresis_permille: u16,
    /// Minimum ticks between two version switches. Duty and retry
    /// changes are cheap and not dwell-gated; a version switch
    /// reflashes the detector app and is.
    pub min_dwell_ticks: u32,
    /// Smoothed link badness (‰) at or above which the policy caps the
    /// version at Simplified (Original's extra accuracy is wasted on a
    /// link that drops the evidence anyway).
    pub link_bad_permille: u16,
    /// Smoothed link badness (‰) at or below which the link cap is
    /// released. Must be below [`Self::link_bad_permille`] for the
    /// latch to have a dead band.
    pub link_clear_permille: u16,
    /// State of charge (‰) below-or-equal which the sensors skip one
    /// window in four.
    pub duty_quarter_below_permille: u16,
    /// State of charge (‰) below-or-equal which the sensors skip one
    /// window in two (the heavier tier wins).
    pub duty_half_below_permille: u16,
    /// State of charge (‰) below-or-equal which the transport runs on
    /// the tight retry budget.
    pub retry_tight_below_permille: u16,
    /// ARQ per-packet retry budget at normal charge.
    pub retry_normal_max: u8,
    /// ARQ per-packet retry budget under low battery.
    pub retry_tight_max: u8,
    /// Extra backoff doublings applied to every retransmission under
    /// low battery (backoff widening).
    pub retry_extra_shift: u8,
    /// Detector backlog (assembled-but-unresolved windows) strictly
    /// above which the desired version is degraded one extra step
    /// until the backlog clears.
    pub backlog_windows_above: u16,
    /// Initial battery state of charge (‰) the scenario seeds its
    /// [`amulet_sim::energy::BatteryState`] with.
    pub initial_soc_permille: u16,
    /// Multiplier on the simulated drain current, so a short scenario
    /// can traverse the whole discharge curve (1 = real time).
    pub drain_scale: u32,
    /// State of charge (‰) at or below which the device is considered
    /// dead (fleet lifetime benches stop the clock here).
    pub cutoff_permille: u16,
}

impl Default for SurvivalConfig {
    fn default() -> Self {
        Self {
            original_above_permille: 600,
            simplified_above_permille: 350,
            hysteresis_permille: 50,
            min_dwell_ticks: 60,
            link_bad_permille: 150,
            link_clear_permille: 100,
            duty_quarter_below_permille: 500,
            duty_half_below_permille: 250,
            retry_tight_below_permille: 250,
            retry_normal_max: 5,
            retry_tight_max: 2,
            retry_extra_shift: 2,
            backlog_windows_above: 8,
            initial_soc_permille: PERMILLE_FULL,
            drain_scale: 1,
            cutoff_permille: 5,
        }
    }
}

/// One per-second sensor sample fed to [`SurvivalPolicy::step`]. All
/// fields are integers: the host converts its float statistics before
/// crossing into the device-side policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SurvivalInputs {
    /// Battery state of charge, permille of capacity.
    pub soc_permille: u16,
    /// Instantaneous link badness (loss plus retransmission drag),
    /// permille; the policy smooths it internally.
    pub link_badness_permille: u16,
    /// Windows the base station has started assembling but not yet
    /// resolved (emitted, salvaged, or dropped).
    pub backlog_windows: u16,
}

/// One actuation the policy decided on, stamped with the tick it was
/// taken at. Recorded in the scenario's `SimReport` and counted in
/// telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurvivalAction {
    /// Switch the detector build (actuated via a firmware reflash on
    /// the base station).
    SetVersion {
        /// Policy tick the switch was decided at.
        at_tick: u32,
        /// Version running before the switch.
        from: Version,
        /// Version to run from now on.
        to: Version,
    },
    /// Change the sampling duty cycle: skip `skip` windows out of
    /// every `of` at the sensor source.
    SetDuty {
        /// Policy tick the change was decided at.
        at_tick: u32,
        /// Windows to skip per group.
        skip: u8,
        /// Group size (`0 < skip < of`, or `skip == 0, of == 1` for
        /// full duty).
        of: u8,
    },
    /// Change the transport retry posture on both sensor links.
    SetRetry {
        /// Policy tick the change was decided at.
        at_tick: u32,
        /// New per-packet retry budget.
        max_retries: u8,
        /// Extra backoff doublings per retransmission.
        backoff_extra_shift: u8,
    },
}

/// The outcome of one policy step: at most one action per knob.
/// `None` everywhere means the step was quiescent (the common case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SurvivalVerdict {
    /// Version switch decided this step, if any.
    pub version: Option<SurvivalAction>,
    /// Duty-cycle change decided this step, if any.
    pub duty: Option<SurvivalAction>,
    /// Retry-posture change decided this step, if any.
    pub retry: Option<SurvivalAction>,
}

impl SurvivalVerdict {
    /// Whether this step changed anything.
    pub fn is_quiescent(&self) -> bool {
        self.version.is_none() && self.duty.is_none() && self.retry.is_none()
    }
}

/// The complete persistent state of a [`SurvivalPolicy`], as stored in
/// (and restored from) the FRAM checkpoint next to the detector state.
/// 16 bytes on the wire (see `wiot::persist`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivalSnapshot {
    /// Detector version in force.
    pub version: Version,
    /// Windows skipped per duty group.
    pub duty_skip: u8,
    /// Duty group size.
    pub duty_of: u8,
    /// ARQ per-packet retry budget in force.
    pub retry_max: u8,
    /// Extra backoff doublings in force.
    pub retry_shift: u8,
    /// Whether the link-badness latch currently caps the version.
    pub link_capped: bool,
    /// Policy ticks elapsed.
    pub tick: u32,
    /// Tick of the last version switch, or [`NEVER_SWITCHED`].
    pub last_switch_tick: u32,
    /// Smoothed link badness, permille.
    pub link_ewma_permille: u16,
}

/// Rank a version on the degradation ladder: higher = more capable =
/// more expensive.
fn rank(v: Version) -> u8 {
    match v {
        Version::Reduced => 0,
        Version::Simplified => 1,
        Version::Original => 2,
    }
}

/// The version at a ladder rank (saturating at the ends).
fn at_rank(r: u8) -> Version {
    match r {
        0 => Version::Reduced,
        1 => Version::Simplified,
        _ => Version::Original,
    }
}

/// Whether window `index` is suppressed under a skip-`skip`-of-`of`
/// duty cycle. The *first* `skip` windows of every group of `of` are
/// skipped, so consecutive kept windows are never more than `skip`
/// windows apart and the base-station watchdog (3 windows) stays fed
/// at every tier the default policy uses.
pub fn window_is_skipped(index: u64, skip: u8, of: u8) -> bool {
    of > 1 && index % u64::from(of) < u64::from(skip)
}

/// The closed-loop survival policy: a pure integer state machine
/// stepped once per simulated second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivalPolicy {
    cfg: SurvivalConfig,
    /// The version the device was provisioned with; the policy never
    /// upgrades past it, so at full battery on a clean link it is
    /// exactly as quiescent as no policy at all.
    ceiling: Version,
    version: Version,
    duty_skip: u8,
    duty_of: u8,
    retry_max: u8,
    retry_shift: u8,
    tick: u32,
    last_switch_tick: u32,
    link_ewma_permille: u16,
    link_capped: bool,
    switches: u32,
}

impl SurvivalPolicy {
    /// A fresh policy for a device provisioned with `ceiling`: full
    /// duty, normal retry budget, no link cap, no history.
    pub fn new(cfg: SurvivalConfig, ceiling: Version) -> Self {
        Self {
            cfg,
            ceiling,
            version: ceiling,
            duty_skip: 0,
            duty_of: 1,
            retry_max: cfg.retry_normal_max,
            retry_shift: 0,
            tick: 0,
            last_switch_tick: NEVER_SWITCHED,
            link_ewma_permille: 0,
            link_capped: false,
            switches: 0,
        }
    }

    /// The policy's tuning knobs.
    pub fn config(&self) -> SurvivalConfig {
        self.cfg
    }

    /// Detector version currently in force.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Duty cycle currently in force as `(skip, of)`.
    pub fn duty(&self) -> (u8, u8) {
        (self.duty_skip, self.duty_of)
    }

    /// Retry posture currently in force as `(max_retries, extra_shift)`.
    pub fn retry(&self) -> (u8, u8) {
        (self.retry_max, self.retry_shift)
    }

    /// Policy ticks elapsed.
    pub fn tick(&self) -> u32 {
        self.tick
    }

    /// Version switches performed over the policy's lifetime (not
    /// persisted: telemetry, not decision state).
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Smoothed link badness, permille.
    pub fn link_ewma_permille(&self) -> u16 {
        self.link_ewma_permille
    }

    /// Whether the link-badness latch currently caps the version.
    pub fn link_capped(&self) -> bool {
        self.link_capped
    }

    /// Whether `soc_permille` is at or below the configured cutoff
    /// (the device is considered dead).
    pub fn is_cutoff(&self, soc_permille: u16) -> bool {
        soc_permille <= self.cfg.cutoff_permille
    }

    /// The persistent decision state, for checkpointing.
    pub fn snapshot(&self) -> SurvivalSnapshot {
        SurvivalSnapshot {
            version: self.version,
            duty_skip: self.duty_skip,
            duty_of: self.duty_of,
            retry_max: self.retry_max,
            retry_shift: self.retry_shift,
            link_capped: self.link_capped,
            tick: self.tick,
            last_switch_tick: self.last_switch_tick,
            link_ewma_permille: self.link_ewma_permille,
        }
    }

    /// Adopt a checkpointed decision state (after a brownout reboot),
    /// keeping the config and ceiling the policy was built with.
    pub fn restore(&mut self, s: SurvivalSnapshot) {
        self.version = s.version;
        self.duty_skip = s.duty_skip;
        self.duty_of = s.duty_of;
        self.retry_max = s.retry_max;
        self.retry_shift = s.retry_shift;
        self.link_capped = s.link_capped;
        self.tick = s.tick;
        self.last_switch_tick = s.last_switch_tick;
        self.link_ewma_permille = s.link_ewma_permille;
    }

    /// Advance the control loop one tick and decide the knob settings.
    /// Pure: the same state and input sequence always produces the
    /// same verdicts.
    pub fn step(&mut self, inputs: SurvivalInputs) -> SurvivalVerdict {
        self.tick = self.tick.saturating_add(1);
        let soc = inputs.soc_permille.min(PERMILLE_FULL);
        self.observe_link(inputs.link_badness_permille);

        SurvivalVerdict {
            version: self.step_version(soc, inputs.backlog_windows),
            duty: self.step_duty(soc),
            retry: self.step_retry(soc),
        }
    }

    /// Fold the instantaneous badness into the integer EWMA
    /// (alpha = 1/4) and run the cap latch.
    fn observe_link(&mut self, badness_permille: u16) {
        let cur = i32::from(self.link_ewma_permille);
        let obs = i32::from(badness_permille.min(PERMILLE_FULL));
        // Truncating integer EWMA: converges within 3 ‰ of the input,
        // far inside the latch dead band.
        let next = cur + (obs - cur) / 4;
        self.link_ewma_permille = next.clamp(0, i32::from(PERMILLE_FULL)) as u16;
        if self.link_capped {
            if self.link_ewma_permille <= self.cfg.link_clear_permille {
                self.link_capped = false;
            }
        } else if self.link_ewma_permille >= self.cfg.link_bad_permille {
            self.link_capped = true;
        }
    }

    /// Decide the detector version: battery ladder with upgrade
    /// hysteresis, capped by the link latch, the backlog, and the
    /// provisioned ceiling, all gated by the minimum dwell.
    fn step_version(&mut self, soc: u16, backlog: u16) -> Option<SurvivalAction> {
        let hyst = self.cfg.hysteresis_permille;
        let cur = rank(self.version);
        // Upgrading into a tier costs an extra hysteresis margin;
        // holding a tier does not.
        let orig_thr = if cur >= 2 {
            self.cfg.original_above_permille
        } else {
            self.cfg.original_above_permille.saturating_add(hyst)
        };
        let simp_thr = if cur >= 1 {
            self.cfg.simplified_above_permille
        } else {
            self.cfg.simplified_above_permille.saturating_add(hyst)
        };
        let mut target: u8 = if soc > orig_thr {
            2
        } else if soc > simp_thr {
            1
        } else {
            0
        };
        if self.link_capped {
            target = target.min(1);
        }
        if backlog > self.cfg.backlog_windows_above {
            target = target.saturating_sub(1);
        }
        target = target.min(rank(self.ceiling));
        let to = at_rank(target);
        if to == self.version {
            return None;
        }
        let dwell_ok = self.last_switch_tick == NEVER_SWITCHED
            || self.tick.saturating_sub(self.last_switch_tick) >= self.cfg.min_dwell_ticks;
        if !dwell_ok {
            return None;
        }
        let from = self.version;
        self.version = to;
        self.last_switch_tick = self.tick;
        self.switches = self.switches.saturating_add(1);
        Some(SurvivalAction::SetVersion {
            at_tick: self.tick,
            from,
            to,
        })
    }

    /// Decide the duty tier (0 = full, 1 = skip 1 of 4, 2 = skip 1 of
    /// 2), lightening only with a hysteresis margin.
    fn step_duty(&mut self, soc: u16) -> Option<SurvivalAction> {
        let hyst = self.cfg.hysteresis_permille;
        let cur_tier: u8 = match (self.duty_skip, self.duty_of) {
            (0, _) => 0,
            (_, 4) => 1,
            _ => 2,
        };
        let q_thr = if cur_tier > 0 {
            self.cfg.duty_quarter_below_permille.saturating_add(hyst)
        } else {
            self.cfg.duty_quarter_below_permille
        };
        let h_thr = if cur_tier > 1 {
            self.cfg.duty_half_below_permille.saturating_add(hyst)
        } else {
            self.cfg.duty_half_below_permille
        };
        let target: u8 = if soc > q_thr {
            0
        } else if soc > h_thr {
            1
        } else {
            2
        };
        if target == cur_tier {
            return None;
        }
        let (skip, of) = match target {
            0 => (0, 1),
            1 => (1, 4),
            _ => (1, 2),
        };
        self.duty_skip = skip;
        self.duty_of = of;
        Some(SurvivalAction::SetDuty {
            at_tick: self.tick,
            skip,
            of,
        })
    }

    /// Decide the retry posture, returning to the normal budget only
    /// with a hysteresis margin.
    fn step_retry(&mut self, soc: u16) -> Option<SurvivalAction> {
        let thr = if self.retry_shift > 0 {
            self.cfg
                .retry_tight_below_permille
                .saturating_add(self.cfg.hysteresis_permille)
        } else {
            self.cfg.retry_tight_below_permille
        };
        let (max_retries, shift) = if soc <= thr {
            (self.cfg.retry_tight_max, self.cfg.retry_extra_shift)
        } else {
            (self.cfg.retry_normal_max, 0)
        };
        if (max_retries, shift) == (self.retry_max, self.retry_shift) {
            return None;
        }
        self.retry_max = max_retries;
        self.retry_shift = shift;
        Some(SurvivalAction::SetRetry {
            at_tick: self.tick,
            max_retries,
            backoff_extra_shift: shift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(soc: u16) -> SurvivalInputs {
        SurvivalInputs {
            soc_permille: soc,
            link_badness_permille: 0,
            backlog_windows: 0,
        }
    }

    fn fast_cfg() -> SurvivalConfig {
        SurvivalConfig {
            min_dwell_ticks: 2,
            ..SurvivalConfig::default()
        }
    }

    #[test]
    fn quiescent_at_full_battery() {
        let mut p = SurvivalPolicy::new(SurvivalConfig::default(), Version::Original);
        for _ in 0..600 {
            assert!(p.step(inputs(1000)).is_quiescent());
        }
        assert_eq!(p.version(), Version::Original);
        assert_eq!(p.duty(), (0, 1));
        assert_eq!(p.retry(), (5, 0));
        assert_eq!(p.switches(), 0);
    }

    #[test]
    fn degrades_down_the_ladder_as_battery_drains() {
        let mut p = SurvivalPolicy::new(fast_cfg(), Version::Original);
        let mut seen = vec![p.version()];
        for soc in (0..=1000).rev() {
            p.step(inputs(soc));
            if *seen.last().unwrap() != p.version() {
                seen.push(p.version());
            }
        }
        assert_eq!(
            seen,
            vec![Version::Original, Version::Simplified, Version::Reduced]
        );
        assert_eq!(p.duty(), (1, 2));
        assert_eq!(p.retry(), (2, 2));
    }

    #[test]
    fn upgrade_needs_hysteresis_margin() {
        let cfg = fast_cfg();
        let mut p = SurvivalPolicy::new(cfg, Version::Original);
        // Drain to Simplified territory.
        for _ in 0..4 {
            p.step(inputs(500));
        }
        assert_eq!(p.version(), Version::Simplified);
        // Hovering just above the Original threshold is not enough...
        for _ in 0..10 {
            p.step(inputs(cfg.original_above_permille + 1));
        }
        assert_eq!(p.version(), Version::Simplified);
        // ...but clearing threshold + hysteresis upgrades.
        for _ in 0..10 {
            p.step(inputs(cfg.original_above_permille + cfg.hysteresis_permille + 1));
        }
        assert_eq!(p.version(), Version::Original);
    }

    #[test]
    fn dwell_gates_version_switches() {
        let cfg = SurvivalConfig {
            min_dwell_ticks: 100,
            ..SurvivalConfig::default()
        };
        let mut p = SurvivalPolicy::new(cfg, Version::Original);
        // Oscillate hard across both thresholds every tick.
        let mut switches_seen = 0;
        for t in 0..1000u32 {
            let soc = if t % 2 == 0 { 1000 } else { 100 };
            if p.step(inputs(soc)).version.is_some() {
                switches_seen += 1;
            }
        }
        // 1000 ticks / 100-tick dwell = at most 11 switches (first one
        // is free of the dwell gate).
        assert!(switches_seen <= 11, "{switches_seen} switches");
        assert_eq!(p.switches(), switches_seen);
    }

    #[test]
    fn link_latch_caps_at_simplified_and_releases() {
        let cfg = fast_cfg();
        let mut p = SurvivalPolicy::new(cfg, Version::Original);
        let bad = SurvivalInputs {
            soc_permille: 1000,
            link_badness_permille: 600,
            backlog_windows: 0,
        };
        for _ in 0..20 {
            p.step(bad);
        }
        assert!(p.link_capped());
        assert_eq!(p.version(), Version::Simplified);
        for _ in 0..60 {
            p.step(inputs(1000));
        }
        assert!(!p.link_capped());
        assert_eq!(p.version(), Version::Original);
    }

    #[test]
    fn backlog_degrades_one_extra_step() {
        let cfg = fast_cfg();
        let mut p = SurvivalPolicy::new(cfg, Version::Original);
        let swamped = SurvivalInputs {
            soc_permille: 1000,
            link_badness_permille: 0,
            backlog_windows: 50,
        };
        for _ in 0..5 {
            p.step(swamped);
        }
        assert_eq!(p.version(), Version::Simplified);
        for _ in 0..5 {
            p.step(inputs(1000));
        }
        assert_eq!(p.version(), Version::Original);
    }

    #[test]
    fn ceiling_is_never_exceeded() {
        let mut p = SurvivalPolicy::new(fast_cfg(), Version::Reduced);
        for _ in 0..100 {
            p.step(inputs(1000));
        }
        assert_eq!(p.version(), Version::Reduced);
        assert_eq!(p.switches(), 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_behavior() {
        let cfg = fast_cfg();
        let mut a = SurvivalPolicy::new(cfg, Version::Original);
        for soc in (300..=1000).rev().step_by(7) {
            a.step(inputs(soc as u16));
        }
        let snap = a.snapshot();
        let mut b = SurvivalPolicy::new(cfg, Version::Original);
        b.restore(snap);
        assert_eq!(b.snapshot(), snap);
        for soc in (0..=300u16).rev().step_by(3) {
            assert_eq!(a.step(inputs(soc)), b.step(inputs(soc)));
            assert_eq!(a.snapshot(), b.snapshot());
        }
    }

    #[test]
    fn duty_window_skipping_pattern() {
        assert!(!window_is_skipped(0, 0, 1));
        assert!(!window_is_skipped(5, 0, 1));
        // Skip 1 of 4: first window of each group of four.
        let skipped: Vec<u64> = (0..8).filter(|&i| window_is_skipped(i, 1, 4)).collect();
        assert_eq!(skipped, vec![0, 4]);
        // Skip 1 of 2: never two consecutive skips.
        let pattern: Vec<bool> = (0..6).map(|i| window_is_skipped(i, 1, 2)).collect();
        assert_eq!(pattern, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn ewma_converges_and_latch_has_dead_band() {
        let cfg = SurvivalConfig::default();
        let mut p = SurvivalPolicy::new(cfg, Version::Original);
        for _ in 0..40 {
            p.step(SurvivalInputs {
                soc_permille: 1000,
                link_badness_permille: 400,
                backlog_windows: 0,
            });
        }
        assert!(p.link_ewma_permille() >= 395);
        assert!(p.link_capped());
        // Drop to between clear and bad: latch holds.
        for _ in 0..40 {
            p.step(SurvivalInputs {
                soc_permille: 1000,
                link_badness_permille: 120,
                backlog_windows: 0,
            });
        }
        assert!(p.link_capped());
        for _ in 0..60 {
            p.step(inputs(1000));
        }
        assert!(!p.link_capped());
    }
}
