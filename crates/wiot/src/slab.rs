//! Slab-based streaming fleet engine: bounded-memory multiplexing of
//! arbitrarily many devices over a small worker pool.
//!
//! The resident engine ([`crate::fleet::run_fleet_provisioned`]) keeps
//! one [`DeviceSummary`] per device until the final reduction, so a
//! million-device fleet holds a million summaries (plus their telemetry
//! snapshots) in memory at once. This module runs the **same** per-device
//! simulation through a different harness: a fixed pool of workers pulls
//! device indices from a shared cursor, each worker materializes one
//! device at a time into its own reusable slab slot, and a single folder
//! thread retires summaries in device-index order the moment they are
//! contiguous. Resident state is O(workers), not O(devices):
//!
//! * **Claim window.** A worker may only claim device `i` once
//!   `i < next_fold + window_cap` (`window_cap = workers × 4`), so the
//!   reorder buffer between the unordered workers and the in-order
//!   folder never holds more than `window_cap` summaries. The
//!   [`SlabReport::pending_high_water`] counter proves the bound held.
//! * **Checkpoint swap.** Each claim round-trips the provisioned
//!   detector through the [`sift::checkpoint::DetectorCheckpoint`]
//!   codec in the worker's reusable slot buffer — exactly the bytes a
//!   real swap in/out of NVRAM-backed slab storage would move — and the
//!   device runs on the *decoded* model, so every simulated device
//!   exercises the codec's losslessness. On retirement the final
//!   detector state (stream position, alerts) is encoded back out and
//!   only [`SlabReport::retired_checkpoint_bytes`] remains.
//! * **In-order fold.** The folder drives the same incremental
//!   [`Reducer`](crate::fleet) fold and the same per-device digest
//!   encoding as the resident engine, strictly in index order, so
//!   aggregates are bit-identical to the resident engine's at any
//!   worker count — the equivalence tests compare both engines through
//!   [`FleetReport::slab_digest`].
//!
//! Error semantics match the resident engine: the lowest-device-index
//! provisioning or simulation error wins, deterministically. Workers
//! holding lower indices keep running after an error is recorded (a
//! lower-index error may still surface); workers claiming indices at or
//! above the recorded error skip out.

use crate::fleet::{
    digest_device, DeviceProvision, DeviceSummary, Digest, FleetProvisioner, FleetReport,
    FleetSpec, Reducer,
};
use crate::WiotError;
use physio_sim::subject::bank;
use sift::checkpoint::DetectorCheckpoint;
use sift::trainer::ModelBank;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;

/// Result of a streamed fleet run: the familiar aggregates (with
/// `per_device` deliberately empty) plus the slab engine's own
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SlabReport {
    /// Fleet aggregates, identical to the resident engine's fold. The
    /// `per_device` vector is **empty** — per-device summaries were
    /// folded and retired, never accumulated.
    pub report: FleetReport,
    /// Streaming digest over every retired summary then the aggregates
    /// (see [`FleetReport::slab_digest`] for the resident-side
    /// counterpart).
    pub slab_digest: u64,
    /// Worker threads actually used (spec value clamped).
    pub workers: usize,
    /// Maximum summaries the reorder window may hold (`workers × 4`).
    pub window_cap: usize,
    /// Most summaries that were ever pending at once — the measured
    /// residency, always `≤ window_cap`.
    pub pending_high_water: usize,
    /// Total bytes of final detector checkpoints encoded at device
    /// retirement (the swap-out traffic of a real slab store).
    pub retired_checkpoint_bytes: u64,
}

/// Reorder buffer between unordered workers and the in-order folder.
struct FoldState {
    /// Finished summaries waiting to become contiguous, plus each
    /// device's retired-checkpoint byte count.
    pending: BTreeMap<usize, (DeviceSummary, u64)>,
    /// Next device index the folder will retire.
    next_fold: usize,
    /// Lowest-index error seen so far.
    error: Option<(usize, WiotError)>,
    /// Largest `pending.len()` ever observed.
    high_water: usize,
}

/// Everything the workers and the folder share.
struct Shared {
    /// Monotone device-claim cursor.
    cursor: AtomicUsize,
    fold: Mutex<FoldState>,
    /// Workers wait here for the claim window to reach their index (or
    /// for an error at or below it).
    can_claim: Condvar,
    /// The folder waits here for the next contiguous summary (or an
    /// error at exactly `next_fold`).
    ready: Condvar,
    window_cap: usize,
}

/// What a worker learned while waiting for its claim window.
enum Claim {
    /// The window reached this index: simulate the device.
    Proceed,
    /// An error at or below this index makes the result irrelevant.
    Skip,
}

impl Shared {
    /// Block until device `i` is inside the claim window. Bounds the
    /// reorder buffer: `i < next_fold + window_cap` at proceed time,
    /// and `next_fold` only grows, so every pending index stays within
    /// `window_cap` of the fold frontier.
    fn wait_for_window(&self, i: usize) -> Claim {
        let mut st = self.fold.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some((e, _)) = &st.error {
                if *e <= i {
                    return Claim::Skip;
                }
            }
            if i < st.next_fold + self.window_cap {
                return Claim::Proceed;
            }
            st = self.can_claim.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Deliver device `i`'s summary to the folder.
    fn deliver(&self, i: usize, summary: DeviceSummary, retired_bytes: u64) {
        let mut st = self.fold.lock().unwrap_or_else(PoisonError::into_inner);
        // A result at or above a recorded error will never be folded.
        let dead = st.error.as_ref().is_some_and(|(e, _)| *e <= i);
        if !dead {
            st.pending.insert(i, (summary, retired_bytes));
            st.high_water = st.high_water.max(st.pending.len());
        }
        self.ready.notify_all();
    }

    /// Record device `i`'s error; the lowest index wins.
    fn fail(&self, i: usize, err: WiotError) {
        let mut st = self.fold.lock().unwrap_or_else(PoisonError::into_inner);
        let lower = st.error.as_ref().is_none_or(|(e, _)| i < *e);
        if lower {
            st.error = Some((i, err));
            // Results above the error are dead weight; drop them now.
            st.pending.split_off(&i);
        }
        // Wake everyone: waiting claimants may now skip, and the folder
        // may now be looking at the erroring index.
        self.can_claim.notify_all();
        self.ready.notify_all();
    }
}

/// Simulate one claimed device inside the worker's slab slot: swap the
/// provisioned detector **in** through the checkpoint codec, run the
/// device on the decoded model, then encode the final detector state
/// back **out**, returning the summary and the swap-out byte count.
fn run_one(
    spec: &FleetSpec,
    prov: &dyn FleetProvisioner,
    device: usize,
    slot: &mut Vec<u8>,
) -> Result<(DeviceSummary, u64), WiotError> {
    let DeviceProvision {
        scenario,
        subject,
        model,
        deployed,
    } = prov.provision(spec, device)?;

    // Swap-in: the provisioned model enters the slot as checkpoint
    // bytes and the device runs on what decodes back out, so a codec
    // regression breaks the slab digest, not just a unit test.
    let swap_in = DetectorCheckpoint::new(scenario.version, deployed.clone())?;
    if slot.len() < swap_in.encoded_len() {
        slot.resize(swap_in.encoded_len(), 0);
    }
    let n = swap_in.encode_into(slot)?;
    let mut resident = DetectorCheckpoint::decode(&slot[..n])?;

    let summary =
        crate::fleet::simulate_provisioned(spec.telemetry, device, scenario, subject, model, &resident.model)?;

    // Swap-out: persist the final stream position and alert count the
    // way a real slab store would before reusing the slot.
    let windows = summary.confusion.tp
        + summary.confusion.fp
        + summary.confusion.tn
        + summary.confusion.fn_;
    resident.windows_seen = u32::try_from(windows).unwrap_or(u32::MAX);
    resident.alerts_raised = u32::try_from(summary.alerts).unwrap_or(u32::MAX);
    let out = resident.encode_into(slot)?;
    Ok((summary, out as u64))
}

/// Worker loop: claim the next device index, wait for the window,
/// simulate, deliver. Exits when the cursor passes the fleet or an
/// error makes its remaining claims irrelevant.
fn worker(spec: &FleetSpec, prov: &dyn FleetProvisioner, shared: &Shared) {
    let mut slot = Vec::new();
    loop {
        let device = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if device >= spec.devices {
            return;
        }
        match shared.wait_for_window(device) {
            Claim::Skip => return,
            Claim::Proceed => {}
        }
        match run_one(spec, prov, device, &mut slot) {
            Ok((summary, bytes)) => shared.deliver(device, summary, bytes),
            Err(e) => {
                shared.fail(device, e);
                return;
            }
        }
    }
}

/// Run a fleet through the streaming slab engine with an arbitrary
/// [`FleetProvisioner`]. Aggregates (and [`SlabReport::slab_digest`])
/// are bit-identical to the resident engine's at any worker count; the
/// per-device vector is never materialized.
///
/// # Errors
///
/// Returns [`WiotError::InvalidScenario`] for an empty fleet and
/// propagates the lowest-device-index provisioning or simulation error,
/// exactly like [`crate::fleet::run_fleet_provisioned`].
pub fn run_fleet_streamed_provisioned(
    spec: &FleetSpec,
    prov: &dyn FleetProvisioner,
) -> Result<SlabReport, WiotError> {
    if spec.devices == 0 {
        return Err(WiotError::InvalidScenario {
            reason: "fleet must have at least one device",
        });
    }
    let workers = spec.threads.clamp(1, spec.devices);
    let window_cap = workers * 4;
    let shared = Shared {
        cursor: AtomicUsize::new(0),
        fold: Mutex::new(FoldState {
            pending: BTreeMap::new(),
            next_fold: 0,
            error: None,
            high_water: 0,
        }),
        can_claim: Condvar::new(),
        ready: Condvar::new(),
        window_cap,
    };

    let mut digest = Digest::new();
    let mut reducer = Reducer::new();
    let mut retired_checkpoint_bytes = 0u64;
    let mut failure: Option<WiotError> = None;

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker(spec, prov, &shared));
        }
        // The scope's own thread is the folder: retire summaries in
        // strict index order, folding digest and aggregates, keeping
        // nothing after the fold.
        let mut next = 0usize;
        while next < spec.devices {
            let entry = {
                let mut st = shared.fold.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if st.error.as_ref().is_some_and(|(e, _)| *e == next) {
                        break None;
                    }
                    if let Some(entry) = st.pending.remove(&next) {
                        st.next_fold = next + 1;
                        // The claim window just moved: wake waiters.
                        shared.can_claim.notify_all();
                        break Some(entry);
                    }
                    st = shared.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            match entry {
                Some((summary, bytes)) => {
                    // Outside the lock: fold and retire.
                    digest_device(&mut digest, &summary);
                    reducer.push(&summary);
                    retired_checkpoint_bytes += bytes;
                    next += 1;
                }
                None => {
                    let st = shared.fold.lock().unwrap_or_else(PoisonError::into_inner);
                    failure = st.error.as_ref().map(|(_, e)| e.clone());
                    break;
                }
            }
        }
    });

    if let Some(e) = failure {
        return Err(e);
    }
    let high_water = shared
        .fold
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .high_water;
    let report = reducer.finish(spec.seed, spec.template.duration_s, Vec::new());
    digest.usize(report.devices);
    report.digest_aggregates_into(&mut digest);
    Ok(SlabReport {
        slab_digest: digest.0,
        workers,
        window_cap,
        pending_high_water: high_water,
        retired_checkpoint_bytes,
        report,
    })
}

/// Run a streamed fleet with a pre-trained [`ModelBank`] — the slab
/// counterpart of [`crate::fleet::run_fleet_with_bank`], sharing its
/// round-robin provisioning policy.
///
/// # Errors
///
/// As [`run_fleet_streamed_provisioned`], plus
/// [`WiotError::InvalidScenario`] when the bank's detector version or
/// backend does not match the template.
pub fn run_fleet_streamed(spec: &FleetSpec, models: &ModelBank) -> Result<SlabReport, WiotError> {
    if models.version() != spec.template.version {
        return Err(WiotError::InvalidScenario {
            reason: "model bank version does not match the fleet template",
        });
    }
    if models.kind() != spec.template.backend {
        return Err(WiotError::InvalidScenario {
            reason: "model bank backend does not match the fleet template",
        });
    }
    let prov = crate::fleet::BankProvisioner {
        models,
        subjects_len: bank().len(),
    };
    run_fleet_streamed_provisioned(spec, &prov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{run_fleet_with_bank, FleetSpec};

    fn trained_bank(spec: &FleetSpec) -> ModelBank {
        ModelBank::train(
            &bank(),
            spec.template.version,
            &spec.template.config,
            spec.seed,
        )
        .unwrap()
    }

    #[test]
    fn streamed_matches_resident_engine() {
        let spec = FleetSpec::new(3, 9.0).with_seed(7);
        let models = trained_bank(&spec);
        let resident = run_fleet_with_bank(&spec, &models).unwrap();
        let streamed = run_fleet_streamed(&spec, &models).unwrap();
        // Aggregates are bit-identical once the resident per-device
        // vector (which the slab never materializes) is set aside.
        let mut resident_cmp = resident.clone();
        resident_cmp.per_device = Vec::new();
        assert_eq!(streamed.report, resident_cmp);
        // And the streaming digest equals the resident recomputation.
        assert_eq!(streamed.slab_digest, resident.slab_digest());
        assert!(streamed.report.per_device.is_empty());
        assert!(streamed.retired_checkpoint_bytes > 0, "no swap-out traffic");
    }

    #[test]
    fn streamed_digest_is_worker_count_stable() {
        let spec = FleetSpec::new(4, 9.0).with_seed(13);
        let models = trained_bank(&spec);
        let one = run_fleet_streamed(&spec, &models).unwrap();
        let two = run_fleet_streamed(&spec.clone().with_threads(2), &models).unwrap();
        let four = run_fleet_streamed(&spec.clone().with_threads(4), &models).unwrap();
        assert_eq!(one.slab_digest, two.slab_digest);
        assert_eq!(two.slab_digest, four.slab_digest);
        assert_eq!(one.report, two.report);
        assert_eq!(two.report, four.report);
        assert_eq!(two.workers, 2);
        assert_eq!(four.workers, 4);
    }

    #[test]
    fn reorder_window_bounds_resident_summaries() {
        // Far more devices than the window can hold: the high-water
        // mark must stay inside the O(workers) bound.
        let spec = FleetSpec::new(24, 9.0).with_seed(3).with_threads(2);
        let models = trained_bank(&spec);
        let r = run_fleet_streamed(&spec, &models).unwrap();
        assert_eq!(r.window_cap, 2 * 4);
        assert!(
            r.pending_high_water <= r.window_cap,
            "pending {} exceeded cap {}",
            r.pending_high_water,
            r.window_cap
        );
        assert!(r.pending_high_water >= 1);
        assert_eq!(r.report.devices, 24);
    }

    #[test]
    fn mismatched_bank_is_rejected() {
        let spec = FleetSpec::new(1, 9.0);
        let models = ModelBank::train(
            &bank(),
            sift::features::Version::Reduced,
            &spec.template.config,
            spec.seed,
        )
        .unwrap();
        assert!(matches!(
            run_fleet_streamed(&spec, &models),
            Err(WiotError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn lowest_index_error_wins_and_terminates() {
        // A provisioner that fails a specific device: the engine must
        // return that error (not hang, not return a partial report),
        // and the failing index must win over later successes.
        struct FailAt {
            inner: crate::fleet::BankProvisioner<'static>,
            fail_device: usize,
        }
        impl FleetProvisioner for FailAt {
            fn provision(
                &self,
                spec: &FleetSpec,
                device: usize,
            ) -> Result<DeviceProvision<'_>, WiotError> {
                if device == self.fail_device {
                    return Err(WiotError::InvalidScenario {
                        reason: "injected provisioning failure",
                    });
                }
                self.inner.provision(spec, device)
            }
        }
        let spec = FleetSpec::new(6, 9.0).with_seed(5).with_threads(2);
        let models = Box::leak(Box::new(trained_bank(&spec)));
        let prov = FailAt {
            inner: crate::fleet::BankProvisioner {
                models,
                subjects_len: bank().len(),
            },
            fail_device: 4,
        };
        let err = run_fleet_streamed_provisioned(&spec, &prov).unwrap_err();
        assert_eq!(
            err,
            WiotError::InvalidScenario {
                reason: "injected provisioning failure",
            }
        );
    }
}
