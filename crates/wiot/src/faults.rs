//! Timed fault injection against a scenario.
//!
//! A [`FaultPlan`] schedules environment misbehavior along the session
//! timeline: link-degradation episodes, sensor dropouts, stuck-at
//! sensors, base-station brownout reboots, and clock drift between the
//! two sensor devices. The scenario runner consults the plan each tick
//! and perturbs the simulation accordingly; every perturbation is
//! counted in a [`FaultSummary`] so a report can prove each injected
//! fault actually happened. Fault plans are pure data — all randomness
//! stays in the (seeded) channel — so a faulted scenario replays
//! byte-identically.

use crate::attacker::ATTACK_CLASS_COUNT;
use crate::channel::LossModel;
use crate::device::Stream;
use crate::WiotError;

/// What kind of misbehavior a fault event injects.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The wireless link degrades for the episode: the given loss
    /// process replaces the configured one. `stream: None` degrades
    /// both links (e.g. body shadowing hits the shared band).
    LinkDegrade {
        /// Affected stream, or both when `None`.
        stream: Option<Stream>,
        /// Loss process in force during the episode.
        loss: LossModel,
    },
    /// The sensor stops transmitting entirely (radio brownout, strap
    /// came loose). Samples produced during the episode are lost.
    SensorDropout {
        /// Affected stream.
        stream: Stream,
    },
    /// The sensor keeps transmitting but its ADC is stuck at the last
    /// value it read (frozen front-end). Packets arrive on time with
    /// flat payloads and no peak annotations.
    SensorStuck {
        /// Affected stream.
        stream: Stream,
    },
    /// The base station browns out and reboots at the event start,
    /// losing all in-flight window-assembly state. Instantaneous: the
    /// episode end is ignored.
    DeviceReboot,
    /// The device's crystal runs fast relative to the base station by
    /// `ppm` parts per million for the duration of the episode,
    /// skewing its packets' arrival timestamps.
    ClockDrift {
        /// Affected stream.
        stream: Stream,
        /// Drift rate, parts per million (positive = running late).
        ppm: f64,
    },
    /// Power fails mid-checkpoint-commit: the FRAM write sequence is
    /// cut after `cut_bytes` bytes and the station reboots.
    /// Instantaneous: the episode end is ignored.
    TornCheckpoint {
        /// Bytes of the commit sequence that land before the cut.
        cut_bytes: usize,
    },
    /// A single bit in the NVRAM checkpoint region flips (FRAM
    /// disturb / radiation upset). Instantaneous.
    CheckpointBitRot {
        /// Absolute byte offset within the NVRAM region.
        byte: usize,
        /// Bit index within that byte (0–7).
        bit: u8,
    },
}

/// One scheduled fault episode `[start_s, end_s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Episode start, seconds into the session.
    pub start_s: f64,
    /// Episode end, seconds into the session (equal to `start_s` for
    /// instantaneous faults like [`FaultKind::DeviceReboot`]).
    pub end_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    fn start_ms(&self) -> u64 {
        (self.start_s * 1000.0) as u64
    }

    fn end_ms(&self) -> u64 {
        (self.end_s * 1000.0) as u64
    }

    fn active(&self, now_ms: u64) -> bool {
        (self.start_ms()..self.end_ms().max(self.start_ms() + 1)).contains(&now_ms)
    }
}

/// A schedule of fault events for one scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: add one event.
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Add one event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check every event fits inside a session of `duration_s` seconds
    /// and is internally consistent.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] for events outside the
    /// session, inverted intervals, or invalid loss models.
    pub fn validate(&self, duration_s: f64) -> Result<(), WiotError> {
        for e in &self.events {
            if !(e.start_s.is_finite() && e.end_s.is_finite()) || e.start_s < 0.0 {
                return Err(WiotError::InvalidScenario {
                    reason: "fault event times must be finite and non-negative",
                });
            }
            if e.end_s < e.start_s {
                return Err(WiotError::InvalidScenario {
                    reason: "fault event must not end before it starts",
                });
            }
            if e.start_s > duration_s {
                return Err(WiotError::InvalidScenario {
                    reason: "fault event starts after the session ends",
                });
            }
            match &e.kind {
                FaultKind::LinkDegrade { loss, .. } => loss.validate()?,
                FaultKind::ClockDrift { ppm, .. } if !ppm.is_finite() => {
                    return Err(WiotError::InvalidScenario {
                        reason: "clock-drift rate must be finite",
                    });
                }
                FaultKind::CheckpointBitRot { byte, bit }
                    if *bit > 7 || *byte >= amulet_sim::nvram::NVRAM_BYTES =>
                {
                    return Err(WiotError::InvalidScenario {
                        reason: "checkpoint bit-rot target outside the NVRAM region",
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Whether `stream` is in a dropout episode at `now_ms`.
    pub fn is_dropout(&self, stream: Stream, now_ms: u64) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::SensorDropout { stream: s } if s == stream)
                && e.active(now_ms)
        })
    }

    /// Whether `stream` is stuck at `now_ms`.
    pub fn is_stuck(&self, stream: Stream, now_ms: u64) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::SensorStuck { stream: s } if s == stream)
                && e.active(now_ms)
        })
    }

    /// The loss override in force for `stream` at `now_ms`, if any
    /// (the most recently scheduled episode wins on overlap).
    pub fn degrade(&self, stream: Stream, now_ms: u64) -> Option<&LossModel> {
        self.events
            .iter()
            .rev()
            .find(|e| {
                e.active(now_ms)
                    && matches!(&e.kind,
                        FaultKind::LinkDegrade { stream: s, .. }
                            if s.is_none() || *s == Some(stream))
            })
            .and_then(|e| match &e.kind {
                FaultKind::LinkDegrade { loss, .. } => Some(loss),
                _ => None,
            })
    }

    /// Accumulated clock-skew (ms) of `stream`'s device at `now_ms`:
    /// the integral of every drift episode's rate over its elapsed
    /// portion.
    pub fn clock_skew_ms(&self, stream: Stream, now_ms: u64) -> u64 {
        let mut skew = 0.0f64;
        for e in &self.events {
            if let FaultKind::ClockDrift { stream: s, ppm } = &e.kind {
                if *s != stream {
                    continue;
                }
                let from = e.start_ms();
                let until = now_ms.min(e.end_ms());
                if until > from {
                    skew += ppm.max(0.0) * 1e-6 * (until - from) as f64;
                }
            }
        }
        skew.round() as u64
    }

    /// Reboot events scheduled in `(prev_ms, now_ms]`.
    pub fn reboots_between(&self, prev_ms: u64, now_ms: u64) -> u64 {
        self.events
            .iter()
            .filter(|e| {
                matches!(e.kind, FaultKind::DeviceReboot)
                    && e.start_ms() > prev_ms
                    && e.start_ms() <= now_ms
            })
            .count() as u64
    }

    /// Torn-checkpoint events scheduled in `(prev_ms, now_ms]`, as the
    /// cut offsets (bytes of the commit sequence written before power
    /// failed), in schedule order.
    pub fn torn_checkpoints_between(&self, prev_ms: u64, now_ms: u64) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.start_ms() > prev_ms && e.start_ms() <= now_ms)
            .filter_map(|e| match e.kind {
                FaultKind::TornCheckpoint { cut_bytes } => Some(cut_bytes),
                _ => None,
            })
            .collect()
    }

    /// Checkpoint bit-rot events scheduled in `(prev_ms, now_ms]`, as
    /// `(byte, bit)` targets, in schedule order.
    pub fn bitrot_between(&self, prev_ms: u64, now_ms: u64) -> Vec<(usize, u8)> {
        self.events
            .iter()
            .filter(|e| e.start_ms() > prev_ms && e.start_ms() <= now_ms)
            .filter_map(|e| match e.kind {
                FaultKind::CheckpointBitRot { byte, bit } => Some((byte, bit)),
                _ => None,
            })
            .collect()
    }
}

/// Everything the fault plan actually did to a run — the evidence
/// section of a [`crate::scenario::SimReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSummary {
    /// Chunks suppressed by sensor-dropout episodes.
    pub dropout_chunks: u64,
    /// Chunks flattened by stuck-sensor episodes.
    pub stuck_chunks: u64,
    /// Base-station brownout reboots performed.
    pub reboots: u64,
    /// Milliseconds during which at least one link ran under a
    /// degrade override.
    pub degraded_link_ms: u64,
    /// Maximum clock skew applied to any stream, ms.
    pub max_clock_skew_ms: u64,
    /// Checkpoint commits cut short by injected power failures.
    pub torn_commits: u64,
    /// Single-bit flips injected into the NVRAM checkpoint region.
    pub bitrot_flips: u64,
    /// Reboots after which the detector resumed from a valid
    /// checkpoint (no re-enrollment).
    pub recoveries: u64,
    /// Recoveries that had to fall back to the previous generation
    /// because the newest slot was torn or rotted.
    pub rollbacks: u64,
    /// Reboots after which no checkpoint could be restored (the
    /// station kept running with its freshly-reset detector).
    pub recovery_failures: u64,
    /// Sensor chunks never offered to the link because the survival
    /// policy's duty cycle skipped their window at the source.
    pub duty_skipped_chunks: u64,
    /// Policy ticks spent at or below the survival policy's low-battery
    /// (retry-tightening) threshold.
    pub low_battery_ticks: u64,
    /// Attacked (truth-positive) windows the detector alerted on, per
    /// attack class — indexed by
    /// [`crate::attacker::AttackMode::class_index`]. Campaign-engine
    /// accounting; rides FaultSummary → DeviceSummary → FleetReport
    /// outside the frozen fleet digest.
    pub attack_windows_tp: [u64; ATTACK_CLASS_COUNT],
    /// Attacked windows the detector let pass, per attack class (same
    /// indexing as [`FaultSummary::attack_windows_tp`]).
    pub attack_windows_fn: [u64; ATTACK_CLASS_COUNT],
}

impl FaultSummary {
    /// Element-wise sum of two summaries, except `max_clock_skew_ms`
    /// which takes the maximum. Used to aggregate per-device summaries
    /// into a fleet view.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        let mut attack_windows_tp = self.attack_windows_tp;
        let mut attack_windows_fn = self.attack_windows_fn;
        for (a, b) in attack_windows_tp.iter_mut().zip(other.attack_windows_tp) {
            *a += b;
        }
        for (a, b) in attack_windows_fn.iter_mut().zip(other.attack_windows_fn) {
            *a += b;
        }
        Self {
            attack_windows_tp,
            attack_windows_fn,
            dropout_chunks: self.dropout_chunks + other.dropout_chunks,
            stuck_chunks: self.stuck_chunks + other.stuck_chunks,
            reboots: self.reboots + other.reboots,
            degraded_link_ms: self.degraded_link_ms + other.degraded_link_ms,
            max_clock_skew_ms: self.max_clock_skew_ms.max(other.max_clock_skew_ms),
            torn_commits: self.torn_commits + other.torn_commits,
            bitrot_flips: self.bitrot_flips + other.bitrot_flips,
            recoveries: self.recoveries + other.recoveries,
            rollbacks: self.rollbacks + other.rollbacks,
            recovery_failures: self.recovery_failures + other.recovery_failures,
            duty_skipped_chunks: self.duty_skipped_chunks + other.duty_skipped_chunks,
            low_battery_ticks: self.low_battery_ticks + other.low_battery_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrade_event(start: f64, end: f64) -> FaultEvent {
        FaultEvent {
            start_s: start,
            end_s: end,
            kind: FaultKind::LinkDegrade {
                stream: None,
                loss: LossModel::Bernoulli { p: 0.5 },
            },
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(!p.is_dropout(Stream::Ecg, 0));
        assert!(!p.is_stuck(Stream::Abp, 0));
        assert!(p.degrade(Stream::Ecg, 0).is_none());
        assert_eq!(p.clock_skew_ms(Stream::Ecg, 60_000), 0);
        assert_eq!(p.reboots_between(0, 60_000), 0);
        assert!(p.validate(10.0).is_ok());
    }

    #[test]
    fn episode_activation_respects_interval() {
        let p = FaultPlan::new().with(FaultEvent {
            start_s: 5.0,
            end_s: 8.0,
            kind: FaultKind::SensorDropout {
                stream: Stream::Abp,
            },
        });
        assert!(!p.is_dropout(Stream::Abp, 4_999));
        assert!(p.is_dropout(Stream::Abp, 5_000));
        assert!(p.is_dropout(Stream::Abp, 7_999));
        assert!(!p.is_dropout(Stream::Abp, 8_000));
        assert!(!p.is_dropout(Stream::Ecg, 6_000));
    }

    #[test]
    fn degrade_targets_the_right_stream() {
        let p = FaultPlan::new().with(FaultEvent {
            start_s: 0.0,
            end_s: 10.0,
            kind: FaultKind::LinkDegrade {
                stream: Some(Stream::Ecg),
                loss: LossModel::Bernoulli { p: 0.9 },
            },
        });
        assert!(p.degrade(Stream::Ecg, 1_000).is_some());
        assert!(p.degrade(Stream::Abp, 1_000).is_none());
        // A both-streams episode covers everything.
        let p = FaultPlan::new().with(degrade_event(0.0, 10.0));
        assert!(p.degrade(Stream::Abp, 1_000).is_some());
    }

    #[test]
    fn clock_skew_integrates_episodes() {
        let p = FaultPlan::new().with(FaultEvent {
            start_s: 10.0,
            end_s: 20.0,
            kind: FaultKind::ClockDrift {
                stream: Stream::Ecg,
                ppm: 50_000.0, // 5 % fast: 10 s of drift -> 500 ms
            },
        });
        assert_eq!(p.clock_skew_ms(Stream::Ecg, 10_000), 0);
        assert_eq!(p.clock_skew_ms(Stream::Ecg, 15_000), 250);
        assert_eq!(p.clock_skew_ms(Stream::Ecg, 20_000), 500);
        // Skew freezes after the episode (crystal recovered).
        assert_eq!(p.clock_skew_ms(Stream::Ecg, 60_000), 500);
        assert_eq!(p.clock_skew_ms(Stream::Abp, 60_000), 0);
    }

    #[test]
    fn reboot_window_query() {
        let p = FaultPlan::new().with(FaultEvent {
            start_s: 30.0,
            end_s: 30.0,
            kind: FaultKind::DeviceReboot,
        });
        assert_eq!(p.reboots_between(0, 29_999), 0);
        assert_eq!(p.reboots_between(29_999, 30_000), 1);
        assert_eq!(p.reboots_between(30_000, 40_000), 0);
    }

    #[test]
    fn validation_catches_bad_events() {
        let inverted = FaultPlan::new().with(degrade_event(8.0, 5.0));
        assert!(inverted.validate(10.0).is_err());
        let outside = FaultPlan::new().with(degrade_event(12.0, 14.0));
        assert!(outside.validate(10.0).is_err());
        let bad_loss = FaultPlan::new().with(FaultEvent {
            start_s: 0.0,
            end_s: 1.0,
            kind: FaultKind::LinkDegrade {
                stream: None,
                loss: LossModel::Bernoulli { p: 7.0 },
            },
        });
        assert!(bad_loss.validate(10.0).is_err());
        let bad_drift = FaultPlan::new().with(FaultEvent {
            start_s: 0.0,
            end_s: 1.0,
            kind: FaultKind::ClockDrift {
                stream: Stream::Ecg,
                ppm: f64::NAN,
            },
        });
        assert!(bad_drift.validate(10.0).is_err());
        let ok = FaultPlan::new().with(degrade_event(0.0, 10.0));
        assert!(ok.validate(10.0).is_ok());
    }

    #[test]
    fn checkpoint_fault_window_queries() {
        let p = FaultPlan::new()
            .with(FaultEvent {
                start_s: 10.0,
                end_s: 10.0,
                kind: FaultKind::TornCheckpoint { cut_bytes: 17 },
            })
            .with(FaultEvent {
                start_s: 20.0,
                end_s: 20.0,
                kind: FaultKind::CheckpointBitRot { byte: 100, bit: 3 },
            });
        assert_eq!(p.torn_checkpoints_between(0, 9_999), Vec::<usize>::new());
        assert_eq!(p.torn_checkpoints_between(9_999, 10_000), vec![17]);
        assert_eq!(p.torn_checkpoints_between(10_000, 60_000), Vec::<usize>::new());
        assert_eq!(p.bitrot_between(0, 19_999), Vec::<(usize, u8)>::new());
        assert_eq!(p.bitrot_between(19_999, 20_000), vec![(100, 3)]);
    }

    #[test]
    fn checkpoint_bitrot_validation() {
        let bad_bit = FaultPlan::new().with(FaultEvent {
            start_s: 0.0,
            end_s: 0.0,
            kind: FaultKind::CheckpointBitRot { byte: 0, bit: 8 },
        });
        assert!(bad_bit.validate(10.0).is_err());
        let bad_byte = FaultPlan::new().with(FaultEvent {
            start_s: 0.0,
            end_s: 0.0,
            kind: FaultKind::CheckpointBitRot {
                byte: amulet_sim::nvram::NVRAM_BYTES,
                bit: 0,
            },
        });
        assert!(bad_byte.validate(10.0).is_err());
        let ok = FaultPlan::new().with(FaultEvent {
            start_s: 0.0,
            end_s: 0.0,
            kind: FaultKind::CheckpointBitRot { byte: 4095, bit: 7 },
        });
        assert!(ok.validate(10.0).is_ok());
    }

    #[test]
    fn summaries_merge_elementwise() {
        let a = FaultSummary {
            dropout_chunks: 1,
            stuck_chunks: 2,
            reboots: 3,
            degraded_link_ms: 4,
            max_clock_skew_ms: 5,
            torn_commits: 6,
            bitrot_flips: 7,
            recoveries: 8,
            rollbacks: 9,
            recovery_failures: 10,
            duty_skipped_chunks: 11,
            low_battery_ticks: 12,
            attack_windows_tp: [2; ATTACK_CLASS_COUNT],
            attack_windows_fn: [1; ATTACK_CLASS_COUNT],
        };
        let b = FaultSummary {
            max_clock_skew_ms: 2,
            reboots: 1,
            duty_skipped_chunks: 3,
            ..FaultSummary::default()
        };
        let m = a.merged(b);
        assert_eq!(m.reboots, 4);
        assert_eq!(m.attack_windows_tp, [2; ATTACK_CLASS_COUNT]);
        assert_eq!(m.attack_windows_fn, [1; ATTACK_CLASS_COUNT]);
        assert_eq!(m.max_clock_skew_ms, 5);
        assert_eq!(m.recoveries, 8);
        assert_eq!(m.duty_skipped_chunks, 14);
        assert_eq!(m.low_battery_ticks, 12);
        assert_eq!(FaultSummary::default().merged(a), a);
    }
}
