//! The wireless hop between a sensor and the base station.
//!
//! A simple but honest link model: independent packet loss and bounded
//! random delay. Losses matter to the detector because a missing chunk
//! leaves a hole in the 3-second window; the base station must handle
//! incomplete windows (and does — see
//! [`crate::basestation::BaseStation`]).

use crate::device::SensorPacket;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packet annotated with its delivery time.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// When the packet arrives at the base station, in ms.
    pub at_ms: u64,
    /// The packet.
    pub packet: SensorPacket,
}

/// Lossy, jittery wireless channel.
#[derive(Debug, Clone)]
pub struct Channel {
    loss_prob: f64,
    base_delay_ms: u64,
    jitter_ms: u64,
    rng: StdRng,
    sent: u64,
    lost: u64,
}

impl Channel {
    /// Create a channel.
    ///
    /// # Panics
    ///
    /// Panics if `loss_prob` is outside `[0, 1]`.
    pub fn new(loss_prob: f64, base_delay_ms: u64, jitter_ms: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "loss probability must lie in [0, 1]"
        );
        Self {
            loss_prob,
            base_delay_ms,
            jitter_ms,
            rng: StdRng::seed_from_u64(seed),
            sent: 0,
            lost: 0,
        }
    }

    /// A perfect channel (no loss, no delay) for baseline scenarios.
    pub fn perfect() -> Self {
        Self::new(0.0, 0, 0, 0)
    }

    /// Transmit `packet` at `now_ms`; returns the delivery or `None` if
    /// the packet was lost.
    pub fn transmit(&mut self, now_ms: u64, packet: SensorPacket) -> Option<Delivery> {
        self.sent += 1;
        if self.loss_prob > 0.0 && self.rng.gen_range(0.0..1.0) < self.loss_prob {
            self.lost += 1;
            return None;
        }
        let jitter = if self.jitter_ms > 0 {
            self.rng.gen_range(0..=self.jitter_ms)
        } else {
            0
        };
        Some(Delivery {
            at_ms: now_ms + self.base_delay_ms + jitter,
            packet,
        })
    }

    /// Packets offered to the channel so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets lost so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Observed loss rate.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Stream;

    fn packet(seq: u64) -> SensorPacket {
        SensorPacket {
            stream: Stream::Ecg,
            seq,
            start_sample: 0,
            samples: vec![0.0; 8],
            peaks: vec![],
        }
    }

    #[test]
    fn perfect_channel_delivers_everything_instantly() {
        let mut ch = Channel::perfect();
        for i in 0..100 {
            let d = ch.transmit(50, packet(i)).unwrap();
            assert_eq!(d.at_ms, 50);
        }
        assert_eq!(ch.loss_rate(), 0.0);
    }

    #[test]
    fn loss_rate_converges() {
        let mut ch = Channel::new(0.3, 0, 0, 42);
        for i in 0..5000 {
            ch.transmit(0, packet(i));
        }
        assert!((ch.loss_rate() - 0.3).abs() < 0.03, "{}", ch.loss_rate());
    }

    #[test]
    fn delay_within_bounds() {
        let mut ch = Channel::new(0.0, 10, 5, 7);
        for i in 0..200 {
            let d = ch.transmit(100, packet(i)).unwrap();
            assert!((110..=115).contains(&d.at_ms), "{}", d.at_ms);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut ch = Channel::new(0.5, 0, 0, seed);
            (0..50).map(|i| ch.transmit(0, packet(i)).is_some()).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = Channel::new(1.5, 0, 0, 0);
    }
}
