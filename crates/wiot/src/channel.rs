//! The wireless hop between a sensor and the base station.
//!
//! The link model covers the failure modes a body-area network
//! actually exhibits: independent (Bernoulli) or bursty
//! (Gilbert–Elliott) packet loss, bounded random delay, jitter-induced
//! reordering, packet duplication, and payload corruption. Losses
//! matter to the detector because a missing chunk leaves a hole in the
//! 3-second window; the base station must handle incomplete windows
//! (and does — see [`crate::basestation::BaseStation`]), and the ARQ
//! layer ([`crate::transport`]) can recover them before that.
//!
//! Every stochastic decision is drawn from a seeded [`StdRng`], so a
//! scenario replays byte-identically under the same seed.

use crate::device::SensorPacket;
use crate::WiotError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packet annotated with its delivery time.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// When the packet arrives at the base station, in ms.
    pub at_ms: u64,
    /// The packet.
    pub packet: SensorPacket,
}

/// Packet-loss process on the link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent per-packet loss with probability `p`.
    Bernoulli {
        /// Loss probability, `[0, 1]`.
        p: f64,
    },
    /// Two-state burst-loss model: the link alternates between a good
    /// and a bad state with the given transition probabilities
    /// (evaluated per packet), and drops packets with a state-dependent
    /// probability. Captures the fading bursts of a real body-area
    /// radio far better than independent loss.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_good_to_bad: f64,
        /// P(bad → good) per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// A loss-free link.
    pub fn none() -> Self {
        LossModel::Bernoulli { p: 0.0 }
    }

    /// Validate all probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] when any probability is
    /// outside `[0, 1]` or not finite.
    pub fn validate(&self) -> Result<(), WiotError> {
        let probs: &[f64] = match self {
            LossModel::Bernoulli { p } => &[*p],
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => &[*p_good_to_bad, *p_bad_to_good, *loss_good, *loss_bad],
        };
        if probs
            .iter()
            .all(|p| p.is_finite() && (0.0..=1.0).contains(p))
        {
            Ok(())
        } else {
            Err(WiotError::InvalidScenario {
                reason: "loss-model probabilities must lie in [0, 1]",
            })
        }
    }

    /// Long-run mean loss rate of the process.
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the two-state chain.
                let denom = p_good_to_bad + p_bad_to_good;
                if denom <= 0.0 {
                    // Chain never transitions; it stays in the good
                    // state it starts in.
                    *loss_good
                } else {
                    let frac_bad = p_good_to_bad / denom;
                    loss_bad * frac_bad + loss_good * (1.0 - frac_bad)
                }
            }
        }
    }
}

/// How corrupted payloads are mangled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorruptionMode {
    /// A bit-flip in the float payload surfaces as NaN (the detector
    /// must treat the window as degenerate, not classify it).
    BitFlipNan,
    /// Samples clip to the ADC rail.
    Clip {
        /// Rail magnitude the samples clip to.
        rail: f64,
    },
}

/// Full link configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// The loss process.
    pub loss: LossModel,
    /// Base one-way delay, ms.
    pub base_delay_ms: u64,
    /// Uniform jitter bound, ms.
    pub jitter_ms: u64,
    /// Probability a delivered packet is duplicated by a retransmitting
    /// radio MAC (both copies arrive).
    pub dup_prob: f64,
    /// Probability a delivered packet takes a late path (adds
    /// `reorder_extra_ms`), letting later packets overtake it.
    pub reorder_prob: f64,
    /// Extra delay of a reordered packet, ms.
    pub reorder_extra_ms: u64,
    /// Probability a delivered packet's payload is corrupted.
    pub corrupt_prob: f64,
    /// How corruption mangles the payload.
    pub corruption: CorruptionMode,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            loss: LossModel::none(),
            base_delay_ms: 0,
            jitter_ms: 0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_extra_ms: 0,
            corrupt_prob: 0.0,
            corruption: CorruptionMode::BitFlipNan,
        }
    }
}

impl ChannelConfig {
    fn validate(&self) -> Result<(), WiotError> {
        self.loss.validate()?;
        for p in [self.dup_prob, self.reorder_prob, self.corrupt_prob] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(WiotError::InvalidScenario {
                    reason: "channel probabilities must lie in [0, 1]",
                });
            }
        }
        Ok(())
    }
}

/// Counters of everything the channel did to the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Packets offered to the channel.
    pub sent: u64,
    /// Packets dropped by the loss process.
    pub lost: u64,
    /// Extra copies emitted by duplication.
    pub duplicated: u64,
    /// Packets given the late (reordering) path.
    pub reordered: u64,
    /// Packets whose payload was corrupted.
    pub corrupted: u64,
}

/// Internal loss-process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    Good,
    Bad,
}

/// Lossy, jittery, burst-prone wireless channel.
#[derive(Debug, Clone)]
pub struct Channel {
    config: ChannelConfig,
    /// Temporary loss override installed by a fault plan's link-degrade
    /// episode; `None` means the configured process is in force.
    degrade: Option<LossModel>,
    state: LinkState,
    rng: StdRng,
    stats: ChannelStats,
}

impl Channel {
    /// Create a channel with independent (Bernoulli) loss — the classic
    /// four-argument constructor.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] if `loss_prob` is outside
    /// `[0, 1]`.
    pub fn new(
        loss_prob: f64,
        base_delay_ms: u64,
        jitter_ms: u64,
        seed: u64,
    ) -> Result<Self, WiotError> {
        Self::with_config(
            ChannelConfig {
                loss: LossModel::Bernoulli { p: loss_prob },
                base_delay_ms,
                jitter_ms,
                ..ChannelConfig::default()
            },
            seed,
        )
    }

    /// Create a channel from a full configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] for any probability
    /// outside `[0, 1]`.
    pub fn with_config(config: ChannelConfig, seed: u64) -> Result<Self, WiotError> {
        config.validate()?;
        Ok(Self {
            config,
            degrade: None,
            state: LinkState::Good,
            rng: StdRng::seed_from_u64(seed),
            stats: ChannelStats::default(),
        })
    }

    /// A perfect channel (no loss, no delay) for baseline scenarios.
    /// Built directly rather than through the validating constructor so
    /// it is infallible by construction.
    pub fn perfect() -> Self {
        Self {
            config: ChannelConfig::default(),
            degrade: None,
            state: LinkState::Good,
            rng: StdRng::seed_from_u64(0),
            stats: ChannelStats::default(),
        }
    }

    /// Install (or, with `None`, clear) a temporary loss override — the
    /// mechanism a [`crate::faults::FaultPlan`] link-degrade episode
    /// uses. The override must be valid.
    ///
    /// # Errors
    ///
    /// Returns [`WiotError::InvalidScenario`] for invalid probabilities.
    pub fn set_degrade(&mut self, loss: Option<LossModel>) -> Result<(), WiotError> {
        if let Some(l) = &loss {
            l.validate()?;
        }
        self.degrade = loss;
        Ok(())
    }

    /// Whether a degrade override is currently installed.
    pub fn is_degraded(&self) -> bool {
        self.degrade.is_some()
    }

    /// Roll the loss process for one packet.
    fn roll_loss(&mut self) -> bool {
        let model = self.degrade.unwrap_or(self.config.loss);
        match model {
            LossModel::Bernoulli { p } => p > 0.0 && self.rng.gen_range(0.0..1.0) < p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                let p_loss = match self.state {
                    LinkState::Good => loss_good,
                    LinkState::Bad => loss_bad,
                };
                let lost = p_loss > 0.0 && self.rng.gen_range(0.0..1.0) < p_loss;
                // Transition after the loss decision.
                self.state = match self.state {
                    LinkState::Good if self.rng.gen_range(0.0..1.0) < p_good_to_bad => {
                        LinkState::Bad
                    }
                    LinkState::Bad if self.rng.gen_range(0.0..1.0) < p_bad_to_good => {
                        LinkState::Good
                    }
                    s => s,
                };
                lost
            }
        }
    }

    fn roll_delay(&mut self, now_ms: u64) -> (u64, bool) {
        let jitter = if self.config.jitter_ms > 0 {
            self.rng.gen_range(0..=self.config.jitter_ms)
        } else {
            0
        };
        let mut at = now_ms + self.config.base_delay_ms + jitter;
        let reordered = self.config.reorder_prob > 0.0
            && self.rng.gen_range(0.0..1.0) < self.config.reorder_prob;
        if reordered {
            at += self.config.reorder_extra_ms;
        }
        (at, reordered)
    }

    fn maybe_corrupt(&mut self, packet: &mut SensorPacket) -> bool {
        if self.config.corrupt_prob <= 0.0
            || self.rng.gen_range(0.0..1.0) >= self.config.corrupt_prob
            || packet.samples.is_empty()
        {
            return false;
        }
        let idx = self.rng.gen_range(0..packet.samples.len());
        match self.config.corruption {
            CorruptionMode::BitFlipNan => packet.samples[idx] = f64::NAN,
            CorruptionMode::Clip { rail } => {
                let sign = if packet.samples[idx] < 0.0 { -1.0 } else { 1.0 };
                packet.samples[idx] = sign * rail;
            }
        }
        true
    }

    /// Transmit `packet` at `now_ms`. Returns every copy that will
    /// arrive (empty when lost, two entries when duplicated), each with
    /// its own delivery time — the caller is responsible for presenting
    /// them to the receiver in `at_ms` order.
    pub fn transmit(&mut self, now_ms: u64, packet: SensorPacket) -> Vec<Delivery> {
        self.stats.sent += 1;
        if self.roll_loss() {
            self.stats.lost += 1;
            return Vec::new();
        }
        let mut packet = packet;
        if self.maybe_corrupt(&mut packet) {
            self.stats.corrupted += 1;
        }
        let (at_ms, reordered) = self.roll_delay(now_ms);
        if reordered {
            self.stats.reordered += 1;
        }
        let mut out = vec![Delivery { at_ms, packet }];
        if self.config.dup_prob > 0.0 && self.rng.gen_range(0.0..1.0) < self.config.dup_prob {
            self.stats.duplicated += 1;
            let (dup_at, dup_reordered) = self.roll_delay(now_ms);
            if dup_reordered {
                self.stats.reordered += 1;
            }
            let dup = Delivery {
                at_ms: dup_at,
                packet: out[0].packet.clone(),
            };
            out.push(dup);
        }
        out
    }

    /// Full traffic counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Packets offered to the channel so far.
    pub fn sent(&self) -> u64 {
        self.stats.sent
    }

    /// Packets lost so far.
    pub fn lost(&self) -> u64 {
        self.stats.lost
    }

    /// Observed loss rate.
    pub fn loss_rate(&self) -> f64 {
        if self.stats.sent == 0 {
            0.0
        } else {
            self.stats.lost as f64 / self.stats.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Stream;

    fn packet(seq: u64) -> SensorPacket {
        SensorPacket {
            stream: Stream::Ecg,
            seq,
            start_sample: 0,
            samples: vec![0.0; 8],
            peaks: vec![],
        }
    }

    #[test]
    fn perfect_channel_delivers_everything_instantly() {
        let mut ch = Channel::perfect();
        for i in 0..100 {
            let d = ch.transmit(50, packet(i));
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].at_ms, 50);
        }
        assert_eq!(ch.loss_rate(), 0.0);
    }

    #[test]
    fn loss_rate_converges() {
        let mut ch = Channel::new(0.3, 0, 0, 42).unwrap();
        for i in 0..5000 {
            ch.transmit(0, packet(i));
        }
        assert!((ch.loss_rate() - 0.3).abs() < 0.03, "{}", ch.loss_rate());
    }

    #[test]
    fn delay_within_bounds() {
        let mut ch = Channel::new(0.0, 10, 5, 7).unwrap();
        for i in 0..200 {
            let d = ch.transmit(100, packet(i));
            assert!((110..=115).contains(&d[0].at_ms), "{}", d[0].at_ms);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut ch = Channel::new(0.5, 0, 0, seed).unwrap();
            (0..50)
                .map(|i| !ch.transmit(0, packet(i)).is_empty())
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn invalid_loss_rejected_as_error() {
        assert!(matches!(
            Channel::new(1.5, 0, 0, 0),
            Err(WiotError::InvalidScenario { .. })
        ));
        assert!(matches!(
            Channel::new(f64::NAN, 0, 0, 0),
            Err(WiotError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn gilbert_elliott_mean_loss_matches_stationary_rate() {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.45,
            loss_good: 0.01,
            loss_bad: 0.9,
        };
        let mean = model.mean_loss();
        let mut ch = Channel::with_config(
            ChannelConfig {
                loss: model,
                ..ChannelConfig::default()
            },
            11,
        )
        .unwrap();
        for i in 0..60_000 {
            ch.transmit(0, packet(i));
        }
        assert!(
            (ch.loss_rate() - mean).abs() < 0.02,
            "empirical {} vs stationary {mean}",
            ch.loss_rate()
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same mean loss, very different clustering: measure the
        // probability that a loss is followed by another loss.
        let p_mean = 0.1;
        // frac_bad = 0.025 / 0.225 = 1/9; mean = 0.9 / 9 = 0.1.
        let bursty = LossModel::GilbertElliott {
            p_good_to_bad: 0.025,
            p_bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        assert!((bursty.mean_loss() - p_mean).abs() < 0.02);
        let run = |loss: LossModel| {
            let mut ch = Channel::with_config(
                ChannelConfig {
                    loss,
                    ..ChannelConfig::default()
                },
                5,
            )
            .unwrap();
            let outcomes: Vec<bool> = (0..40_000)
                .map(|i| ch.transmit(0, packet(i)).is_empty())
                .collect();
            let pairs = outcomes.windows(2).filter(|w| w[0]).count();
            let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
            both as f64 / pairs.max(1) as f64
        };
        let p_after_loss_bursty = run(bursty);
        let p_after_loss_bernoulli = run(LossModel::Bernoulli { p: p_mean });
        assert!(
            p_after_loss_bursty > 2.0 * p_after_loss_bernoulli,
            "burst {p_after_loss_bursty:.3} vs independent {p_after_loss_bernoulli:.3}"
        );
    }

    #[test]
    fn duplication_emits_extra_copies() {
        let mut ch = Channel::with_config(
            ChannelConfig {
                dup_prob: 0.5,
                ..ChannelConfig::default()
            },
            3,
        )
        .unwrap();
        let mut total = 0;
        for i in 0..1000 {
            total += ch.transmit(0, packet(i)).len();
        }
        assert_eq!(total as u64, 1000 + ch.stats().duplicated);
        assert!((300..700).contains(&(total - 1000)), "{total}");
    }

    #[test]
    fn reordering_adds_late_path_delay() {
        let mut ch = Channel::with_config(
            ChannelConfig {
                base_delay_ms: 5,
                reorder_prob: 0.3,
                reorder_extra_ms: 40,
                ..ChannelConfig::default()
            },
            4,
        )
        .unwrap();
        let mut late = 0u64;
        for i in 0..2000 {
            for d in ch.transmit(100, packet(i)) {
                if d.at_ms >= 145 {
                    late += 1;
                }
            }
        }
        assert_eq!(late, ch.stats().reordered);
        assert!(late > 0);
    }

    #[test]
    fn corruption_bitflip_yields_nan() {
        let mut ch = Channel::with_config(
            ChannelConfig {
                corrupt_prob: 1.0,
                ..ChannelConfig::default()
            },
            6,
        )
        .unwrap();
        let d = ch.transmit(0, packet(0));
        assert!(d[0].packet.samples.iter().any(|s| s.is_nan()));
        assert_eq!(ch.stats().corrupted, 1);
    }

    #[test]
    fn corruption_clip_respects_rail() {
        let mut ch = Channel::with_config(
            ChannelConfig {
                corrupt_prob: 1.0,
                corruption: CorruptionMode::Clip { rail: 3.3 },
                ..ChannelConfig::default()
            },
            6,
        )
        .unwrap();
        let mut p = packet(0);
        p.samples = vec![0.5; 8];
        let d = ch.transmit(0, p);
        assert!(d[0].packet.samples.contains(&3.3));
    }

    #[test]
    fn degrade_override_applies_and_clears() {
        let mut ch = Channel::new(0.0, 0, 0, 9).unwrap();
        ch.set_degrade(Some(LossModel::Bernoulli { p: 1.0 }))
            .unwrap();
        assert!(ch.is_degraded());
        assert!(ch.transmit(0, packet(0)).is_empty());
        ch.set_degrade(None).unwrap();
        assert_eq!(ch.transmit(0, packet(1)).len(), 1);
        assert!(ch
            .set_degrade(Some(LossModel::Bernoulli { p: 2.0 }))
            .is_err());
    }
}
