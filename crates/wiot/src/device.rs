//! Body-area sensor devices.
//!
//! Each medical device samples one physiological channel and transmits
//! fixed-size packets toward the base station. Packets carry the peak
//! annotations the device's firmware computed locally — the paper notes
//! on-sensor feature computation as one way to shrink the data stream
//! (Insight #1, citing Mercury).

use physio_sim::record::Record;

/// Which physiological stream a packet belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Electrocardiogram.
    Ecg,
    /// Arterial blood pressure.
    Abp,
}

impl std::fmt::Display for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stream::Ecg => write!(f, "ecg"),
            Stream::Abp => write!(f, "abp"),
        }
    }
}

/// One radio packet: a contiguous chunk of samples plus the peak indices
/// (relative to the chunk) the sensor annotated.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorPacket {
    /// Source stream.
    pub stream: Stream,
    /// Sequence number (chunk index from the start of the session).
    pub seq: u64,
    /// Index of the first sample in the session timeline.
    pub start_sample: usize,
    /// The samples.
    pub samples: Vec<f64>,
    /// Peak indices relative to `samples`.
    pub peaks: Vec<usize>,
}

/// A sensor device streaming a pre-recorded (synthesized) channel in
/// fixed-duration chunks.
#[derive(Debug, Clone)]
pub struct SensorDevice {
    stream: Stream,
    samples: Vec<f64>,
    peaks: Vec<usize>,
    fs: f64,
    chunk_len: usize,
    next_chunk: u64,
}

impl SensorDevice {
    /// An ECG sensor streaming `record`'s ECG channel in `chunk_s`-second
    /// packets.
    pub fn ecg(record: &Record, chunk_s: f64) -> Self {
        Self::new(
            Stream::Ecg,
            record.ecg.clone(),
            record.r_peaks.clone(),
            record.fs,
            chunk_s,
        )
    }

    /// An ABP sensor streaming `record`'s ABP channel.
    pub fn abp(record: &Record, chunk_s: f64) -> Self {
        Self::new(
            Stream::Abp,
            record.abp.clone(),
            record.sys_peaks.clone(),
            record.fs,
            chunk_s,
        )
    }

    fn new(stream: Stream, samples: Vec<f64>, peaks: Vec<usize>, fs: f64, chunk_s: f64) -> Self {
        let chunk_len = ((chunk_s * fs).round() as usize).max(1);
        Self {
            stream,
            samples,
            peaks,
            fs,
            chunk_len,
            next_chunk: 0,
        }
    }

    /// Sample rate in Hz.
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Emit the next packet, or `None` when the recording is exhausted.
    pub fn poll(&mut self) -> Option<SensorPacket> {
        let start = self.next_chunk as usize * self.chunk_len;
        if start + self.chunk_len > self.samples.len() {
            return None;
        }
        let end = start + self.chunk_len;
        let peaks = self
            .peaks
            .iter()
            .filter(|&&p| p >= start && p < end)
            .map(|&p| p - start)
            .collect();
        let packet = SensorPacket {
            stream: self.stream,
            seq: self.next_chunk,
            start_sample: start,
            samples: self.samples[start..end].to_vec(),
            peaks,
        };
        self.next_chunk += 1;
        Some(packet)
    }

    /// Number of whole packets this device will emit in total.
    pub fn total_packets(&self) -> u64 {
        (self.samples.len() / self.chunk_len) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use physio_sim::subject::bank;

    fn record() -> Record {
        Record::synthesize(&bank()[0], 12.0, 5)
    }

    #[test]
    fn chunks_cover_stream_in_order() {
        let r = record();
        let mut dev = SensorDevice::ecg(&r, 0.5);
        let mut collected = Vec::new();
        let mut seq = 0;
        while let Some(p) = dev.poll() {
            assert_eq!(p.seq, seq);
            assert_eq!(p.stream, Stream::Ecg);
            assert_eq!(p.start_sample, collected.len());
            collected.extend(p.samples);
            seq += 1;
        }
        assert_eq!(seq, dev.total_packets());
        assert_eq!(collected[..], r.ecg[..collected.len()]);
        // 12 s in 0.5 s chunks = 24 packets.
        assert_eq!(dev.total_packets(), 24);
    }

    #[test]
    fn peaks_relative_and_complete() {
        let r = record();
        let mut dev = SensorDevice::abp(&r, 1.0);
        let mut reassembled = Vec::new();
        while let Some(p) = dev.poll() {
            for &rel in &p.peaks {
                assert!(rel < p.samples.len());
                reassembled.push(p.start_sample + rel);
            }
        }
        let expected: Vec<usize> = r
            .sys_peaks
            .iter()
            .copied()
            .filter(|&p| p < dev.total_packets() as usize * ((1.0 * r.fs) as usize))
            .collect();
        assert_eq!(reassembled, expected);
    }

    #[test]
    fn stream_display() {
        assert_eq!(Stream::Ecg.to_string(), "ecg");
        assert_eq!(Stream::Abp.to_string(), "abp");
    }
}
