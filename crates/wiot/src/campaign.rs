//! Adversary campaign engine: population-scale, multi-wave attack
//! evaluation with per-attack-class detection matrices.
//!
//! The paper's Table II evaluates one adversary (ECG substitution)
//! against twelve subjects. This module generalizes that experiment in
//! both directions at once:
//!
//! * **Population scale** — victims come from the seeded
//!   population generator (`physio_sim::population`), so a campaign
//!   can wear thousands of distinct subjects instead of the legacy
//!   twelve, and
//! * **Attack breadth** — a [`CampaignPlan`] schedules waves of
//!   [`AttackClass`]es (the four legacy vulnerability classes plus
//!   mimicry, replay-at-SNR, partial-window injection, coordinated
//!   substitution, and an adaptive threshold-probing adversary) across
//!   a device fleet, and the per-class hit/miss ledger
//!   ([`crate::faults::FaultSummary::attack_windows_tp`]) rolls up
//!   into a detection matrix with Wilson confidence bounds.
//!
//! Everything runs through the fleet engine's provisioning seam
//! ([`crate::fleet::FleetProvisioner`]), so the determinism guarantee
//! is inherited: one campaign seed produces a byte-identical
//! [`CampaignReport`] (same [`CampaignReport::digest`]) at any worker
//! thread count. The per-class counters ride **outside** the frozen
//! fleet digest, which therefore stays compatible with every golden
//! trace.
//!
//! Confidence bounds are computed in pure integer arithmetic
//! ([`wilson_permille`]) — the same fixed-point discipline as the
//! on-device policy code, and digest-safe by construction.

use crate::attacker::{AttackMode, ATTACK_CLASS_COUNT, ATTACK_CLASS_NAMES};
use crate::channel::LossModel;
use crate::fleet::{
    device_seed, run_fleet_provisioned, DeviceProvision, FleetProvisioner, FleetReport, FleetSpec,
};
use crate::scenario::{AttackSpec, Scenario};
use crate::WiotError;
use ml::BackendKind;
use ml::DetectorModel;
use physio_sim::population::{nearest_neighbor, population};
use physio_sim::record::Record;
use physio_sim::subject::Subject;
use sift::features::Version;
use sift::zoo::train_backend;

/// One attack class the campaign engine can stage. The first four are
/// the paper's legacy vulnerability classes (§I), folded in from
/// [`AttackMode`] behind the compatibility constructors below; the
/// rest are campaign-only adversaries.
///
/// A class is a *template*: it carries the class parameters but no
/// recordings. [`AttackClass::materialize`] binds it to a concrete
/// victim session and donor recording, yielding the [`AttackMode`] the
/// device's attacker runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackClass {
    /// Channel compromise: wholesale ECG substitution (Table II).
    Substitution,
    /// Firmware compromise: replay the victim's own ECG from
    /// `offset_s` seconds earlier.
    Replay {
        /// How far back the replayed data comes from, seconds.
        offset_s: f64,
    },
    /// Physical compromise: the sensor freezes at its last value.
    Freeze,
    /// Sensory-channel injection: additive EMI-style interference.
    NoiseInject {
        /// Injected amplitude, millivolts.
        amplitude_mv: f64,
    },
    /// Mimicry: blend a morphology-fitted donor into the victim's ECG
    /// at a fixed ratio (the campaign picks the population's nearest
    /// morphology neighbor as donor).
    Mimicry {
        /// Donor share of the blend, ‰.
        blend_permille: u16,
    },
    /// Replay through a noisy analog capture at a parameterized SNR.
    ReplaySnr {
        /// How far back the replayed data comes from, seconds.
        offset_s: f64,
        /// Replay signal-to-noise ratio, dB.
        snr_db: f64,
    },
    /// Substitution over only the leading fraction of each detection
    /// window.
    PartialWindow {
        /// Tampered fraction of each window, ‰.
        coverage_permille: u16,
    },
    /// Wave-synchronized substitution: every device in the wave
    /// injects the *same* donor while the wave rides a Gilbert–Elliott
    /// burst-loss channel with the reliability stack on.
    Coordinated,
    /// Adaptive threshold probe: bisects its blend factor against
    /// alert feedback, converging on the detector's decision boundary.
    Adaptive,
}

impl AttackClass {
    /// Compatibility constructor for [`AttackMode::Substitute`].
    pub fn substitution() -> Self {
        AttackClass::Substitution
    }

    /// Compatibility constructor for [`AttackMode::Replay`].
    pub fn replay(offset_s: f64) -> Self {
        AttackClass::Replay { offset_s }
    }

    /// Compatibility constructor for [`AttackMode::Freeze`].
    pub fn freeze() -> Self {
        AttackClass::Freeze
    }

    /// Compatibility constructor for [`AttackMode::NoiseInject`].
    pub fn noise_inject(amplitude_mv: f64) -> Self {
        AttackClass::NoiseInject { amplitude_mv }
    }

    /// Stable class index, `0..ATTACK_CLASS_COUNT`. Matches
    /// [`AttackMode::class_index`] of the materialized mode, which is
    /// what the per-class scoring ledger keys on.
    pub fn index(&self) -> usize {
        match self {
            AttackClass::Substitution => 0,
            AttackClass::Replay { .. } => 1,
            AttackClass::Freeze => 2,
            AttackClass::NoiseInject { .. } => 3,
            AttackClass::Mimicry { .. } => 4,
            AttackClass::ReplaySnr { .. } => 5,
            AttackClass::PartialWindow { .. } => 6,
            AttackClass::Coordinated => 7,
            AttackClass::Adaptive => 8,
        }
    }

    /// Short stable name (same table as the attacker's).
    pub fn name(&self) -> &'static str {
        ATTACK_CLASS_NAMES[self.index()]
    }

    /// Whether the class wants a morphology-fitted donor (the
    /// population's nearest neighbor) rather than an arbitrary one.
    fn wants_fitted_donor(&self) -> bool {
        matches!(
            self,
            AttackClass::Mimicry { .. } | AttackClass::Adaptive
        )
    }

    /// Bind the class template to a concrete session: `victim_live` is
    /// the victim's own live recording (replay source), `donor` the
    /// foreign recording, `window_ms` the detection-window length.
    ///
    /// The legacy four produce byte-identical [`AttackMode`] values to
    /// direct construction, so golden traces are unaffected by routing
    /// through the taxonomy.
    pub fn materialize(
        &self,
        victim_live: &Record,
        donor: &Record,
        window_ms: u64,
    ) -> AttackMode {
        match *self {
            AttackClass::Substitution => AttackMode::Substitute {
                donor: donor.clone(),
            },
            AttackClass::Replay { offset_s } => AttackMode::Replay {
                offset_s,
                source: victim_live.clone(),
            },
            AttackClass::Freeze => AttackMode::Freeze,
            AttackClass::NoiseInject { amplitude_mv } => AttackMode::NoiseInject { amplitude_mv },
            AttackClass::Mimicry { blend_permille } => AttackMode::Mimicry {
                donor: donor.clone(),
                blend_permille,
            },
            AttackClass::ReplaySnr { offset_s, snr_db } => AttackMode::ReplaySnr {
                offset_s,
                source: victim_live.clone(),
                snr_db,
            },
            AttackClass::PartialWindow { coverage_permille } => AttackMode::PartialWindow {
                donor: donor.clone(),
                window_ms,
                coverage_permille,
            },
            AttackClass::Coordinated => AttackMode::Coordinated {
                donor: donor.clone(),
            },
            AttackClass::Adaptive => AttackMode::Adaptive {
                donor: donor.clone(),
            },
        }
    }
}

/// One wave of a campaign: `devices` devices all running `class`
/// during `[start_s, end_s)` of their sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackWave {
    /// What the wave's adversaries do.
    pub class: AttackClass,
    /// Devices in the wave.
    pub devices: usize,
    /// Attack start, seconds into each session.
    pub start_s: f64,
    /// Attack end, seconds into each session.
    pub end_s: f64,
}

/// A full campaign: a population, a victim pool drawn from it, and a
/// schedule of attack waves across a device fleet.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Subjects sampled by the population generator.
    pub population_size: usize,
    /// Population seed (`physio_sim::population::LEGACY_BANK_SEED`
    /// reproduces the legacy bank for `population_size == 12`).
    pub population_seed: u64,
    /// Distinct victims drawn (evenly spaced) from the population;
    /// devices round-robin over the pool. Each pool victim costs one
    /// model enrollment, so this bounds campaign training time
    /// independently of `population_size`.
    pub victim_pool: usize,
    /// Donor subjects enrolled against each pool victim (the
    /// training counterexamples; the legacy bank uses all 11 others).
    pub donors_per_victim: usize,
    /// Campaign master seed (drives per-device seeds via
    /// [`device_seed`] and all donor selection).
    pub seed: u64,
    /// Worker threads for the fleet engine.
    pub threads: usize,
    /// Detector backend deployed fleet-wide.
    pub backend: BackendKind,
    /// Detector version deployed fleet-wide.
    pub version: Version,
    /// Session length per device, seconds.
    pub duration_s: f64,
    /// The attack schedule. Wave `w` owns the next `waves[w].devices`
    /// device indices after wave `w-1`.
    pub waves: Vec<AttackWave>,
}

impl CampaignPlan {
    /// Total devices across all waves.
    pub fn devices(&self) -> usize {
        self.waves.iter().map(|w| w.devices).sum()
    }

    /// Which wave owns `device`, by the cumulative schedule.
    fn wave_of(&self, device: usize) -> Option<&AttackWave> {
        let mut off = 0usize;
        self.waves.iter().find(|w| {
            let hit = device < off + w.devices;
            off += w.devices;
            hit
        })
    }
}

/// Detection outcome of one attack class over the whole campaign.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassOutcome {
    /// Devices that ran this class.
    pub devices: usize,
    /// Attacked windows the detector flagged (true positives).
    pub windows_tp: u64,
    /// Attacked windows the detector missed (false negatives).
    pub windows_fn: u64,
    /// Genuine windows falsely flagged on this class's devices.
    pub windows_fp: usize,
    /// Genuine windows correctly passed on this class's devices.
    pub windows_tn: usize,
    /// Devices whose attack produced at least one alert.
    pub detected_devices: usize,
    /// Sum of detection latencies over detecting devices, ms.
    pub latency_sum_ms: u64,
    /// Window-level detection rate, ‰ (`tp / (tp + fn)`).
    pub detection_permille: u16,
    /// Wilson 95 % lower bound on the detection rate, ‰.
    pub wilson_lo_permille: u16,
    /// Wilson 95 % upper bound on the detection rate, ‰.
    pub wilson_hi_permille: u16,
}

/// Aggregate result of a campaign: the fleet report plus the
/// per-attack-class detection matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Population the victims were drawn from.
    pub population_size: usize,
    /// Campaign master seed.
    pub seed: u64,
    /// Per-class outcomes, indexed by [`AttackClass::index`]. Classes
    /// the plan never staged are all-zero.
    pub classes: [ClassOutcome; ATTACK_CLASS_COUNT],
    /// The underlying fleet report (its digest is the frozen one).
    pub fleet: FleetReport,
}

impl CampaignReport {
    /// 64-bit digest over the frozen fleet digest **and** the
    /// per-class matrix: FNV-1a over the integer fields in class-index
    /// order. Byte-identical across thread counts; the campaign bench
    /// gate pins it.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(self.fleet.digest());
        fold(self.population_size as u64);
        fold(self.seed);
        for c in &self.classes {
            fold(c.devices as u64);
            fold(c.windows_tp);
            fold(c.windows_fn);
            fold(c.windows_fp as u64);
            fold(c.windows_tn as u64);
            fold(c.detected_devices as u64);
            fold(c.latency_sum_ms);
            fold(u64::from(c.detection_permille));
            fold(u64::from(c.wilson_lo_permille));
            fold(u64::from(c.wilson_hi_permille));
        }
        h
    }
}

/// Integer square root of a `u128` (Newton's method, exact floor).
fn isqrt_u128(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    let mut x = 1u128 << (v.ilog2() / 2 + 1);
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// Wilson 95 % score interval for `successes / trials`, in permille,
/// computed entirely in integer arithmetic (z = 1.96 carried as
/// z²·10⁶ = 3 841 600). Returns `(lo, hi)` with `lo` floored and `hi`
/// ceiled, so the true interval is always contained. `(0, 1000)` for
/// zero trials.
pub fn wilson_permille(successes: u64, trials: u64) -> (u16, u16) {
    if trials == 0 {
        return (0, 1000);
    }
    let s = u128::from(successes.min(trials));
    let n = u128::from(trials);
    // z²·10⁶ for z = 1.96.
    const Z2: u128 = 3_841_600;
    let d = 1_000_000 * n + Z2;
    let c = 1_000_000 * s + Z2 / 2;
    // (10⁶·half·n·d)² = 10¹²·Z2·s·(n−s)·n + Z2²·n²/4, pre-scaled so
    // the ±1000·√(...) below lands directly in permille numerators.
    let rad = 1_000_000_000_000u128 * Z2 * s * (n - s) * n + 250_000 * Z2 * Z2 * n * n;
    let r = isqrt_u128(rad);
    let scale = n * d;
    let center = 1000 * c * n;
    let lo = (center.saturating_sub(r) / scale) as u16;
    let hi = ((center + r).div_ceil(scale)).min(1000) as u16;
    (lo, hi)
}

/// The campaign's provisioning policy: victims from the population
/// pool, per-class donors, per-wave attack specs, and the hostile
/// channel for coordinated waves.
struct CampaignProvisioner<'c> {
    plan: &'c CampaignPlan,
    subjects: &'c [Subject],
    /// Population indices of the victim pool.
    pool: &'c [usize],
    /// One deployed model per pool slot.
    models: &'c [DetectorModel],
}

impl CampaignProvisioner<'_> {
    /// Deterministic donor *population index* for `device`'s victim:
    /// morphology-fitted (nearest neighbor) for classes that want it,
    /// otherwise a seed-split other subject; coordinated waves share
    /// one donor across the wave so the substitution is synchronized.
    fn donor_index(&self, class: &AttackClass, victim: usize, scenario_seed: u64) -> usize {
        let n = self.subjects.len();
        if n == 1 {
            return 0;
        }
        if class.wants_fitted_donor() {
            if let Some(j) = nearest_neighbor(self.subjects, victim) {
                return j;
            }
        }
        let draw = if matches!(class, AttackClass::Coordinated) {
            // Wave-shared: a function of the campaign seed and class
            // only, so every device in the wave injects the same donor.
            crate::fleet::device_seed(self.plan.seed ^ 0xC0_0D, class.index())
        } else {
            crate::fleet::device_seed(scenario_seed ^ 0xD0_40, 0)
        };
        let off = 1 + (draw % (n as u64 - 1)) as usize;
        (victim + off) % n
    }
}

impl FleetProvisioner for CampaignProvisioner<'_> {
    fn provision(
        &self,
        spec: &FleetSpec,
        device: usize,
    ) -> Result<DeviceProvision<'_>, WiotError> {
        let wave = self
            .plan
            .wave_of(device)
            .ok_or(WiotError::InvalidScenario {
                reason: "device index outside the campaign schedule",
            })?;
        let pool_slot = device % self.pool.len();
        let victim = self.pool[pool_slot];

        let mut scenario = spec.template.clone();
        scenario.victim = victim;
        scenario.seed = device_seed(spec.seed, device);

        // The victim's live session — synthesized with the same seed
        // split the device itself uses, so a replay source really is
        // the session under attack.
        let victim_subject = &self.subjects[victim];
        let victim_live =
            Record::synthesize(victim_subject, scenario.duration_s, scenario.seed ^ 0x11FE);
        let donor_idx = self.donor_index(&wave.class, victim, scenario.seed);
        let donor = Record::synthesize(
            &self.subjects[donor_idx],
            scenario.duration_s,
            scenario.seed ^ 0xD00D,
        );
        let window_ms = (scenario.config.window_s * 1000.0) as u64;
        scenario.attack = Some(AttackSpec {
            mode: wave.class.materialize(&victim_live, &donor, window_ms),
            start_s: wave.start_s,
            end_s: wave.end_s,
        });
        if matches!(wave.class, AttackClass::Coordinated) {
            // Coordinated waves ride a bursty channel with the
            // reliability stack on — the multi-device substitution is
            // timed to hide inside burst-loss recovery traffic.
            scenario.link.loss = Some(LossModel::GilbertElliott {
                p_good_to_bad: 0.025,
                p_bad_to_good: 0.2,
                loss_good: 0.01,
                loss_bad: 0.8,
            });
            scenario = scenario.with_reliability();
        }

        Ok(DeviceProvision {
            scenario,
            subject: Some(victim_subject),
            model: None,
            deployed: &self.models[pool_slot],
        })
    }
}

/// Run a campaign end to end: sample the population, enroll the victim
/// pool, drive the fleet through the provisioning seam, and roll the
/// per-class ledger up into the detection matrix.
///
/// # Errors
///
/// Returns [`WiotError::InvalidScenario`] for an inconsistent plan and
/// propagates training and simulation errors.
pub fn run_campaign(plan: &CampaignPlan) -> Result<CampaignReport, WiotError> {
    if plan.population_size == 0 {
        return Err(WiotError::InvalidScenario {
            reason: "campaign population must be non-empty",
        });
    }
    if plan.victim_pool == 0 || plan.victim_pool > plan.population_size {
        return Err(WiotError::InvalidScenario {
            reason: "victim pool must be 1..=population size",
        });
    }
    if plan.donors_per_victim == 0 || plan.donors_per_victim >= plan.population_size {
        return Err(WiotError::InvalidScenario {
            reason: "donors per victim must be 1..population size",
        });
    }
    if plan.waves.is_empty() || plan.waves.iter().any(|w| w.devices == 0) {
        return Err(WiotError::InvalidScenario {
            reason: "campaign needs at least one non-empty wave",
        });
    }

    let subjects = population(plan.population_size, plan.population_seed);
    let template = {
        let mut t = Scenario::new(0, plan.version, plan.duration_s);
        t.backend = plan.backend;
        t
    };

    // Victim pool: evenly spaced over the population (distinct because
    // pool ≤ population), then one model enrollment per pool victim
    // against seed-split donor records. Enrollment cost scales with
    // the pool, not the population.
    let pool: Vec<usize> = (0..plan.victim_pool)
        .map(|i| i * plan.population_size / plan.victim_pool)
        .collect();
    let n = plan.population_size;
    let mut models = Vec::with_capacity(pool.len());
    for &victim in &pool {
        let train_seed = device_seed(plan.seed ^ 0x7EA1, victim);
        let victim_rec = Record::synthesize(
            &subjects[victim],
            template.config.train_s,
            train_seed,
        );
        let donor_recs: Vec<Record> = (0..plan.donors_per_victim)
            .map(|j| {
                let d = (victim + 1 + j) % n;
                Record::synthesize(
                    &subjects[d],
                    template.config.train_s,
                    device_seed(train_seed, j + 1),
                )
            })
            .collect();
        let donor_refs: Vec<&Record> = donor_recs.iter().collect();
        let model = train_backend(
            &victim_rec,
            &donor_refs,
            plan.version,
            plan.backend,
            &template.config,
        )?;
        models.push(model);
    }

    let spec = FleetSpec {
        devices: plan.devices(),
        threads: plan.threads,
        seed: plan.seed,
        telemetry: false,
        template,
    };
    let prov = CampaignProvisioner {
        plan,
        subjects: &subjects,
        pool: &pool,
        models: &models,
    };
    let fleet = run_fleet_provisioned(&spec, &prov)?;

    // Per-class rollup. Window-level TP/FN come straight from the
    // merged fault ledger; the per-device figures (FP/TN, detections,
    // latency) are re-keyed from device index to class via the wave
    // schedule.
    let mut classes = [ClassOutcome::default(); ATTACK_CLASS_COUNT];
    for (ci, c) in classes.iter_mut().enumerate() {
        c.windows_tp = fleet.faults.attack_windows_tp[ci];
        c.windows_fn = fleet.faults.attack_windows_fn[ci];
    }
    for d in &fleet.per_device {
        let Some(wave) = plan.wave_of(d.device) else {
            continue;
        };
        let c = &mut classes[wave.class.index()];
        c.devices += 1;
        c.windows_fp += d.confusion.fp;
        c.windows_tn += d.confusion.tn;
        if let Some(ms) = d.detection_latency_ms {
            c.detected_devices += 1;
            c.latency_sum_ms += ms;
        }
    }
    for c in classes.iter_mut() {
        let total = c.windows_tp + c.windows_fn;
        c.detection_permille = (c.windows_tp * 1000)
            .checked_div(total)
            .unwrap_or(0) as u16;
        let (lo, hi) = if total == 0 {
            (0, 0)
        } else {
            wilson_permille(c.windows_tp, total)
        };
        c.wilson_lo_permille = lo;
        c.wilson_hi_permille = hi;
    }

    Ok(CampaignReport {
        population_size: plan.population_size,
        seed: plan.seed,
        classes,
        fleet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_matches_known_values() {
        // s=50, n=100: Wilson 95 % ≈ [0.404, 0.596].
        let (lo, hi) = wilson_permille(50, 100);
        assert!((400..=405).contains(&lo), "lo {lo}");
        assert!((595..=600).contains(&hi), "hi {hi}");
        // Degenerate cases.
        assert_eq!(wilson_permille(0, 0), (0, 1000));
        let (lo, hi) = wilson_permille(0, 10);
        assert_eq!(lo, 0);
        assert!(hi < 350, "hi {hi}");
        let (lo, hi) = wilson_permille(10, 10);
        assert_eq!(hi, 1000);
        assert!(lo > 650, "lo {lo}");
        // Interval tightens with trials at fixed rate.
        let (a_lo, a_hi) = wilson_permille(80, 100);
        let (b_lo, b_hi) = wilson_permille(800, 1000);
        assert!(b_hi - b_lo < a_hi - a_lo);
        // Bounds always bracket the point estimate.
        for (s, n) in [(1u64, 3u64), (7, 9), (123, 456), (999, 1000)] {
            let (lo, hi) = wilson_permille(s, n);
            let p = (s * 1000 / n) as u16;
            assert!(lo <= p && p <= hi, "({s},{n}) -> ({lo},{hi}) vs {p}");
        }
    }

    #[test]
    fn isqrt_is_exact_floor() {
        for v in [0u128, 1, 2, 3, 4, 15, 16, 17, 1 << 40, (1 << 60) + 123] {
            let r = isqrt_u128(v);
            assert!(r * r <= v);
            assert!((r + 1) * (r + 1) > v);
        }
    }

    #[test]
    fn class_indices_align_with_attack_modes() {
        let donor = Record::synthesize(&physio_sim::subject::bank()[1], 2.0, 9);
        let live = Record::synthesize(&physio_sim::subject::bank()[0], 2.0, 8);
        let all = [
            AttackClass::Substitution,
            AttackClass::Replay { offset_s: 1.0 },
            AttackClass::Freeze,
            AttackClass::NoiseInject { amplitude_mv: 0.5 },
            AttackClass::Mimicry { blend_permille: 500 },
            AttackClass::ReplaySnr {
                offset_s: 1.0,
                snr_db: 6.0,
            },
            AttackClass::PartialWindow {
                coverage_permille: 400,
            },
            AttackClass::Coordinated,
            AttackClass::Adaptive,
        ];
        assert_eq!(all.len(), ATTACK_CLASS_COUNT);
        for (i, class) in all.iter().enumerate() {
            assert_eq!(class.index(), i);
            let mode = class.materialize(&live, &donor, 8000);
            assert_eq!(mode.class_index(), i, "{}", class.name());
            assert_eq!(mode.name(), class.name());
        }
    }

    #[test]
    fn compat_constructors_cover_the_legacy_four() {
        assert_eq!(AttackClass::substitution().index(), 0);
        assert_eq!(AttackClass::replay(20.0).index(), 1);
        assert_eq!(AttackClass::freeze().index(), 2);
        assert_eq!(AttackClass::noise_inject(0.6).index(), 3);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let base = CampaignPlan {
            population_size: 8,
            population_seed: 1,
            victim_pool: 2,
            donors_per_victim: 3,
            seed: 7,
            threads: 1,
            backend: BackendKind::Svm,
            version: Version::Simplified,
            duration_s: 24.0,
            waves: vec![AttackWave {
                class: AttackClass::Substitution,
                devices: 1,
                start_s: 8.0,
                end_s: 16.0,
            }],
        };
        for bad in [
            CampaignPlan {
                population_size: 0,
                ..base.clone()
            },
            CampaignPlan {
                victim_pool: 0,
                ..base.clone()
            },
            CampaignPlan {
                victim_pool: 9,
                ..base.clone()
            },
            CampaignPlan {
                donors_per_victim: 0,
                ..base.clone()
            },
            CampaignPlan {
                donors_per_victim: 8,
                ..base.clone()
            },
            CampaignPlan {
                waves: Vec::new(),
                ..base.clone()
            },
        ] {
            assert!(
                matches!(run_campaign(&bad), Err(WiotError::InvalidScenario { .. })),
                "plan accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn wave_schedule_partitions_devices() {
        let plan = CampaignPlan {
            population_size: 8,
            population_seed: 1,
            victim_pool: 2,
            donors_per_victim: 3,
            seed: 7,
            threads: 1,
            backend: BackendKind::Svm,
            version: Version::Simplified,
            duration_s: 24.0,
            waves: vec![
                AttackWave {
                    class: AttackClass::Substitution,
                    devices: 2,
                    start_s: 8.0,
                    end_s: 16.0,
                },
                AttackWave {
                    class: AttackClass::Freeze,
                    devices: 3,
                    start_s: 8.0,
                    end_s: 16.0,
                },
            ],
        };
        assert_eq!(plan.devices(), 5);
        assert_eq!(plan.wave_of(0).unwrap().class, AttackClass::Substitution);
        assert_eq!(plan.wave_of(1).unwrap().class, AttackClass::Substitution);
        assert_eq!(plan.wave_of(2).unwrap().class, AttackClass::Freeze);
        assert_eq!(plan.wave_of(4).unwrap().class, AttackClass::Freeze);
        assert!(plan.wave_of(5).is_none());
    }

    #[test]
    fn small_campaign_runs_and_scores_per_class() {
        let plan = CampaignPlan {
            population_size: 8,
            population_seed: 0xBEEF,
            victim_pool: 2,
            donors_per_victim: 3,
            seed: 0x5EED,
            threads: 1,
            backend: BackendKind::Svm,
            version: Version::Simplified,
            duration_s: 32.0,
            waves: vec![
                AttackWave {
                    class: AttackClass::Substitution,
                    devices: 2,
                    start_s: 8.0,
                    end_s: 24.0,
                },
                AttackWave {
                    class: AttackClass::Adaptive,
                    devices: 1,
                    start_s: 8.0,
                    end_s: 24.0,
                },
            ],
        };
        let r = run_campaign(&plan).unwrap();
        assert_eq!(r.fleet.devices, 3);
        let sub = &r.classes[AttackClass::Substitution.index()];
        assert_eq!(sub.devices, 2);
        assert!(
            sub.windows_tp + sub.windows_fn > 0,
            "substitution wave scored no attacked windows"
        );
        assert!(sub.wilson_lo_permille <= sub.detection_permille);
        assert!(sub.detection_permille <= sub.wilson_hi_permille);
        let ad = &r.classes[AttackClass::Adaptive.index()];
        assert_eq!(ad.devices, 1);
        assert!(ad.windows_tp + ad.windows_fn > 0);
        // Unstaged classes stay zero.
        assert_eq!(r.classes[AttackClass::Freeze.index()].devices, 0);
        assert_eq!(r.classes[AttackClass::Freeze.index()].windows_tp, 0);
        // Determinism across runs and thread counts.
        let again = run_campaign(&plan).unwrap();
        assert_eq!(r.digest(), again.digest());
        let threaded = run_campaign(&CampaignPlan {
            threads: 3,
            ..plan.clone()
        })
        .unwrap();
        assert_eq!(r.digest(), threaded.digest(), "digest thread-sensitive");
        assert_eq!(r.classes, threaded.classes);
    }
}
